"""Per-shard health tracking and deterministic retry policy.

The sharded scatter-gather engine (:mod:`repro.index.sharded`) isolates
failures per shard instead of failing whole queries.  This module holds the
two pure, independently testable pieces of that machinery:

* :class:`RetryPolicy` — capped exponential backoff with *seeded* jitter.
  The jitter is a pure function of ``(seed, shard, attempt)``, so the retry
  schedule of any failure scenario is reproducible in tests and the property
  "a backoff sleep never exceeds the remaining per-shard deadline slice" can
  be checked exhaustively rather than statistically.
* :class:`ShardHealthBoard` — the ``healthy → suspect → quarantined`` state
  machine, one record per shard, updated from query outcomes and probes.
  Transient failures (timeouts, load races) escalate gradually; persistent
  ones (:class:`~repro.core.errors.CorruptionError`) quarantine immediately
  and mark the shard's engine for a reload-from-disk before readmission.

Neither piece knows about engines, snapshots or HTTP: the board is plain
bookkeeping under one lock, which is what keeps every transition atomic even
when scatter workers, the probe thread and ``/healthz`` race on it.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.core.errors import InvalidParameterError

#: Shard states of the degradation state machine.  A ``healthy`` shard is
#: queried normally; a ``suspect`` shard is still queried (it failed recently
#: but below the quarantine threshold); a ``quarantined`` shard is excluded
#: from the scatter until a probe readmits it.
HEALTHY = "healthy"
SUSPECT = "suspect"
QUARANTINED = "quarantined"

SHARD_STATES = (HEALTHY, SUSPECT, QUARANTINED)


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic capped exponential backoff for per-shard retries.

    ``max_attempts`` bounds how often one query retries one shard before the
    failure is reported to the health board as exhausted.  The backoff before
    retry ``attempt`` (0-based: the sleep after the first failure is
    ``backoff_s(0, ...)``) is

    ``min(backoff_cap_s, backoff_base_s * 2**attempt) * (1 + jitter * u)``

    where ``u ∈ [0, 1)`` comes from a PRNG seeded with ``(seed, shard,
    attempt)`` — the same scenario always sleeps the same amounts, so fault
    tests are reproducible.  The result is clamped to the optional ``limit``
    (the remaining deadline slice), which is what guarantees a retrying
    scatter worker can never sleep past the query's deadline.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.005
    backoff_cap_s: float = 0.1
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if not self.backoff_base_s >= 0:
            raise InvalidParameterError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if not self.backoff_cap_s >= 0:
            raise InvalidParameterError(
                f"backoff_cap_s must be >= 0, got {self.backoff_cap_s}")
        if not 0 <= self.jitter <= 1:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, attempt: int, shard: int = 0,
                  limit: "float | None" = None) -> float:
        """Sleep before retry ``attempt`` of ``shard``; never above ``limit``.

        Deterministic: the jitter PRNG is seeded from ``(seed, shard,
        attempt)`` alone (mixed into one integer — tuple seeding was removed
        from :class:`random.Random`), so equal inputs always produce equal
        delays, and the bound ``backoff_cap_s * (1 + jitter)`` always holds.
        """
        exponential = min(self.backoff_cap_s,
                          self.backoff_base_s * (2.0 ** attempt))
        mixed = (self.seed * 1_000_003 + shard * 8_191 + attempt) & 0xFFFFFFFF
        unit = random.Random(mixed).random()
        delay = exponential * (1.0 + self.jitter * unit)
        if limit is not None:
            delay = min(delay, max(0.0, limit))
        return delay


@dataclass(frozen=True)
class SupervisorPolicy:
    """How a :class:`~repro.cluster.supervisor.ShardSupervisor` restarts.

    Restart delays follow the same deterministic capped-exponential scheme as
    :class:`RetryPolicy` — the delay before restart ``restart`` (0-based) of a
    crashed worker is

    ``min(restart_cap_s, restart_base_s * 2**restart) * (1 + jitter * u)``

    with ``u ∈ [0, 1)`` a pure function of ``(seed, shard, restart)``, so a
    crash scenario replays identically in tests and the bound
    ``restart_cap_s * (1 + jitter)`` always holds.  A successful probe
    readmission resets the ladder to restart 0.

    ``crash_loop_threshold`` / ``crash_loop_window_s`` parameterize the
    :class:`CrashLoopBreaker`: that many crashes inside one sliding window
    trips the breaker, quarantining the shard (no more immediate restarts)
    until ``cooloff_s`` passes and a half-open restart attempt succeeds.

    ``heartbeat_interval_s`` paces liveness probes of a running worker;
    ``heartbeat_timeout_s`` bounds each probe; ``heartbeat_misses`` is how
    many consecutive failed probes declare a *hung* worker (it is then killed
    and treated as crashed — a hang and a crash look the same to callers).
    """

    restart_base_s: float = 0.05
    restart_cap_s: float = 1.0
    jitter: float = 0.5
    seed: int = 0
    crash_loop_threshold: int = 3
    crash_loop_window_s: float = 5.0
    cooloff_s: float = 1.0
    heartbeat_interval_s: float = 0.1
    heartbeat_timeout_s: float = 1.0
    heartbeat_misses: int = 3

    def __post_init__(self) -> None:
        if not self.restart_base_s >= 0:
            raise InvalidParameterError(
                f"restart_base_s must be >= 0, got {self.restart_base_s}")
        if not self.restart_cap_s >= 0:
            raise InvalidParameterError(
                f"restart_cap_s must be >= 0, got {self.restart_cap_s}")
        if not 0 <= self.jitter <= 1:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {self.jitter}")
        if self.crash_loop_threshold < 1:
            raise InvalidParameterError(
                f"crash_loop_threshold must be >= 1, "
                f"got {self.crash_loop_threshold}")
        if not self.crash_loop_window_s > 0:
            raise InvalidParameterError(
                f"crash_loop_window_s must be positive, "
                f"got {self.crash_loop_window_s}")
        if not self.cooloff_s >= 0:
            raise InvalidParameterError(
                f"cooloff_s must be >= 0, got {self.cooloff_s}")
        if not self.heartbeat_interval_s > 0:
            raise InvalidParameterError(
                f"heartbeat_interval_s must be positive, "
                f"got {self.heartbeat_interval_s}")
        if not self.heartbeat_timeout_s > 0:
            raise InvalidParameterError(
                f"heartbeat_timeout_s must be positive, "
                f"got {self.heartbeat_timeout_s}")
        if self.heartbeat_misses < 1:
            raise InvalidParameterError(
                f"heartbeat_misses must be >= 1, got {self.heartbeat_misses}")

    def restart_delay_s(self, restart: int, shard: int = 0) -> float:
        """Delay before restart ``restart`` of ``shard`` — deterministic.

        Same mixing as :meth:`RetryPolicy.backoff_s` (a different prime for
        the attempt term so supervisor and retry schedules never alias).
        """
        exponential = min(self.restart_cap_s,
                          self.restart_base_s * (2.0 ** restart))
        mixed = (self.seed * 1_000_003 + shard * 8_191
                 + restart * 131) & 0xFFFFFFFF
        unit = random.Random(mixed).random()
        return exponential * (1.0 + self.jitter * unit)


class CrashLoopBreaker:
    """Sliding-window crash counter: trips after N crashes within the window.

    Pure and time-injected — callers pass ``now`` (any monotonic clock) to
    :meth:`record_crash`, so the property tests drive it with a virtual
    clock.  Once tripped it stays tripped until :meth:`reset` (the probe
    readmission path); crashes recorded while tripped keep it tripped but
    are not double-counted as new trips.
    """

    def __init__(self, threshold: int = 3, window_s: float = 5.0) -> None:
        if threshold < 1:
            raise InvalidParameterError(
                f"threshold must be >= 1, got {threshold}")
        if not window_s > 0:
            raise InvalidParameterError(
                f"window_s must be positive, got {window_s}")
        self.threshold = int(threshold)
        self.window_s = float(window_s)
        self._crash_times: "list[float]" = []
        self._tripped = False

    @property
    def tripped(self) -> bool:
        return self._tripped

    def record_crash(self, now: float) -> bool:
        """Count one crash at time ``now``; returns ``True`` on the trip edge.

        Only crashes within ``window_s`` of ``now`` are retained, so a slow
        drip of isolated crashes never trips — exactly ``threshold`` crashes
        inside one window do.
        """
        self._crash_times.append(float(now))
        cutoff = float(now) - self.window_s
        self._crash_times = [t for t in self._crash_times if t > cutoff]
        if self._tripped:
            return False
        if len(self._crash_times) >= self.threshold:
            self._tripped = True
            return True
        return False

    def reset(self) -> None:
        """Forget the crash history (a probe readmitted the shard)."""
        self._crash_times.clear()
        self._tripped = False


@dataclass(frozen=True)
class HealthPolicy:
    """When failures escalate and how quarantined shards are probed.

    ``suspect_after`` / ``quarantine_after`` count *consecutive* transient
    failures (any success resets the streak).  Persistent failures skip the
    ladder and quarantine immediately.  ``probe_interval_s`` paces the
    background probe-and-readmit loop; ``auto_probe=False`` disables the
    background thread (probes then only happen via explicit
    ``probe_shard`` calls — what the deterministic fault tests use).
    """

    suspect_after: int = 1
    quarantine_after: int = 3
    probe_interval_s: float = 0.25
    auto_probe: bool = True

    def __post_init__(self) -> None:
        if self.suspect_after < 1:
            raise InvalidParameterError(
                f"suspect_after must be >= 1, got {self.suspect_after}")
        if self.quarantine_after < self.suspect_after:
            raise InvalidParameterError(
                f"quarantine_after ({self.quarantine_after}) must be >= "
                f"suspect_after ({self.suspect_after})")
        if not self.probe_interval_s > 0:
            raise InvalidParameterError(
                f"probe_interval_s must be positive, got {self.probe_interval_s}")


class _ShardHealth:
    """Mutable health record of one shard (guarded by the board's lock)."""

    __slots__ = ("state", "consecutive_failures", "quarantine_trips",
                 "readmits", "last_error", "needs_reload")

    def __init__(self) -> None:
        self.state = HEALTHY
        self.consecutive_failures = 0
        self.quarantine_trips = 0
        self.readmits = 0
        self.last_error: "str | None" = None
        self.needs_reload = False


class ShardHealthBoard:
    """Thread-safe ``healthy → suspect → quarantined`` records, one per shard.

    The scatter workers report outcomes (:meth:`record_success`,
    :meth:`record_transient`, :meth:`record_persistent`), the probe loop asks
    :meth:`quarantined_indices` and calls :meth:`readmit`, and the serving
    layer snapshots everything with :meth:`report`.  All transitions happen
    under one lock, so a success and a failure racing from two queries leave
    the record in one of the two serialized orders — never a torn mix.
    """

    def __init__(self, num_shards: int,
                 policy: "HealthPolicy | None" = None) -> None:
        if num_shards < 1:
            raise InvalidParameterError(
                f"num_shards must be >= 1, got {num_shards}")
        self.policy = policy if policy is not None else HealthPolicy()
        self._lock = threading.Lock()
        self._shards = [_ShardHealth() for _ in range(num_shards)]

    def __len__(self) -> int:
        return len(self._shards)

    # ------------------------------------------------------------- outcomes

    def record_success(self, shard: int) -> str:
        """An answered query (or passed probe): reset the failure streak."""
        with self._lock:
            record = self._shards[shard]
            if record.state == QUARANTINED:
                record.readmits += 1
            record.state = HEALTHY
            record.consecutive_failures = 0
            record.last_error = None
            record.needs_reload = False
            return record.state

    def record_transient(self, shard: int, error: BaseException) -> str:
        """A retryable failure (timeout, load race): escalate the ladder.

        Returns the shard's new state so the caller can react to the
        ``quarantined`` edge (stop retrying, wake the probe loop).
        """
        with self._lock:
            record = self._shards[shard]
            record.consecutive_failures += 1
            record.last_error = f"{type(error).__name__}: {error}"
            if record.state != QUARANTINED:
                if record.consecutive_failures >= self.policy.quarantine_after:
                    record.state = QUARANTINED
                    record.quarantine_trips += 1
                elif record.consecutive_failures >= self.policy.suspect_after:
                    record.state = SUSPECT
            return record.state

    def record_persistent(self, shard: int, error: BaseException) -> str:
        """A non-retryable failure (corruption): quarantine immediately.

        The shard is additionally marked ``needs_reload``: its in-memory
        engine (if any) must be dropped and reloaded from disk before a probe
        can readmit it — retrying a corrupt engine cannot succeed.
        """
        with self._lock:
            record = self._shards[shard]
            record.consecutive_failures += 1
            record.last_error = f"{type(error).__name__}: {error}"
            record.needs_reload = True
            if record.state != QUARANTINED:
                record.state = QUARANTINED
                record.quarantine_trips += 1
            return record.state

    def readmit(self, shard: int) -> None:
        """A probe succeeded: return the shard to the scatter set."""
        self.record_success(shard)

    # ----------------------------------------------------------- inspection

    def state(self, shard: int) -> str:
        with self._lock:
            return self._shards[shard].state

    def is_quarantined(self, shard: int) -> bool:
        with self._lock:
            return self._shards[shard].state == QUARANTINED

    def needs_reload(self, shard: int) -> bool:
        with self._lock:
            return self._shards[shard].needs_reload

    def quarantined_indices(self) -> "list[int]":
        with self._lock:
            return [index for index, record in enumerate(self._shards)
                    if record.state == QUARANTINED]

    def any_quarantined(self) -> bool:
        with self._lock:
            return any(record.state == QUARANTINED for record in self._shards)

    def report(self) -> "list[dict]":
        """JSON-ready per-shard records for ``/healthz`` and ``health_report``."""
        with self._lock:
            return [
                {
                    "shard": index,
                    "state": record.state,
                    "consecutive_failures": record.consecutive_failures,
                    "quarantine_trips": record.quarantine_trips,
                    "readmits": record.readmits,
                    "last_error": record.last_error,
                }
                for index, record in enumerate(self._shards)
            ]
