"""Exact GEMINI similarity search over a :class:`~repro.index.tree.TreeIndex`.

The algorithm follows Section IV-C of the paper:

1. *Approximate search*: descend the tree along the query's own word to reach
   one leaf and compute the real distances to the series stored there.  The
   best of these is the initial best-so-far (BSF) answer.
2. *Pruning traversal*: walk every root subtree; any node whose lower-bound
   distance to the query exceeds the BSF is pruned together with its whole
   subtree; surviving leaves are placed in a priority queue keyed by their
   lower-bound distance.
3. *Refinement*: pop leaves in increasing lower-bound order.  As soon as the
   popped lower bound exceeds the BSF the search stops (everything left in the
   queue is worse).  Otherwise the per-series lower bounds inside the leaf are
   evaluated with the vectorized SIMD-style kernel; only series that survive
   that filter have their true Euclidean distance computed (with early
   abandoning against the BSF).

k-NN uses the same machinery with the BSF being the k-th best distance found
so far.  The searcher records per-leaf processing costs so the virtual-core
simulator can estimate multi-worker query times.

``knn(..., num_workers=n)`` answers a *single* query with MESSI-style
intra-query parallelism: after the approximate descent seeds the BSF, the
lower-bound-ordered surviving-leaf queue is drained by ``n`` threads — each
runs the same batched lower-bound + blocked ED refinement kernels (NumPy
releases the GIL inside them) against one shared, thread-safe k-NN heap
(:class:`SharedKnnHeap`) whose threshold is re-read between blocks, so one
worker's tightened best-so-far prunes every other worker's remaining work.
Because the bounded heap retains the k smallest offers under the total order
(distance², row) regardless of offer order, and this engine refines a given
row with the same kernel at every worker count, the answers are
**bit-identical for every worker count**.  ``num_workers=None`` falls back to the ``REPRO_NUM_WORKERS``
process default, like index construction.

Whole query workloads should go through :meth:`ExactSearcher.knn_batch`,
which delegates to the batched multi-query engine
(:class:`~repro.index.batch_search.BatchSearcher`): same exact answers,
several times the throughput once a few dozen queries are batched together.
When the batch is smaller than the worker pool, that engine falls back to the
intra-query parallelism of this module so no core idles.

Both engines optionally fuse a *dynamic overlay* into the refinement loop: a
:class:`~repro.index.dynamic.DynamicIndex` layers a write path (buffered
inserts, tombstone deletes) over the read-optimized tree and passes the
engines a ``delta_source`` callable returning the current
:class:`~repro.index.dynamic.DeltaView`.  Delta series are lower-bounded with
the same :func:`~repro.core.simd.batch_lower_bound` kernel as leaf series (so
pruning applies to them too) and refined as one extra pseudo-leaf — right
after the seed leaf sequentially, or as just another work item on the shared
queue when workers drain it in parallel; tombstoned rows have their lower
bounds forced to ``+inf``, so they are never refined and never enter the
answer heap.  Answers over *tree ∪ delta − tombstones* stay bit-identical to
a scratch rebuild on the surviving rows.
"""

from __future__ import annotations

import heapq
import numbers
import operator
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.distance import (
    squared_euclidean_batch,
    squared_euclidean_batch_abandon,
)
from repro.core.errors import InvalidParameterError, SearchError, ValidationError
from repro.core.normalization import znormalize
from repro.core.simd import batch_lower_bound
from repro.index.node import LeafNode
from repro.index.tree import TreeIndex
from repro.parallel.pool import WorkerPool, resolve_num_workers


@dataclass
class SearchStats:
    """Work counters and per-work-item timings of one exact query.

    ``num_workers`` records how many threads served the query.  With more
    than one worker the counters are the deterministic merge (worker order,
    see :func:`repro.index.stats.merge_search_stats`) of the per-worker
    reports; ``leaf_times`` then holds per-work-item *CPU* times across all
    workers, so :attr:`refinement_time` measures aggregate refinement work,
    not elapsed wall clock.
    """

    num_series: int = 0
    num_workers: int = 1
    leaves_visited: int = 0
    leaves_pruned_in_queue: int = 0
    nodes_pruned: int = 0
    series_lower_bounds: int = 0
    exact_distances: int = 0
    approximate_time: float = 0.0
    traversal_time: float = 0.0
    leaf_times: list[float] = field(default_factory=list)
    #: True when a ``timeout_s`` budget expired before refinement finished:
    #: the answer is the best-so-far at expiry (every reported distance is a
    #: true distance, but a closer unrefined series may exist).
    timed_out: bool = False
    #: Scatter-gather accounting of a sharded query (0/0 on unsharded
    #: engines): how many shards the query was scattered over, and how many
    #: contributed their candidates to the gather.
    shards_total: int = 0
    shards_answered: int = 0
    #: True when at least one shard was excluded (quarantined, failed, or out
    #: of deadline): every reported distance is still exact, but the answer
    #: covers only the surviving shards' rows.
    partial: bool = False
    #: Wall-clock seconds of the whole engine call, set at the public entry
    #: points (:meth:`ExactSearcher.knn`, the batched engine, the sharded
    #: scatter) — the caller-observed latency, as opposed to the aggregate
    #: per-work-item CPU time of :attr:`total_time`.  For a batched call
    #: every result carries the batch's wall time (the latency each caller
    #: actually waited).  Merging per-worker stats keeps the target's value
    #: (wall time is a whole-query property, like the sequential phases);
    #: summarizing across queries sums it.
    wall_time_s: float = 0.0

    @property
    def coverage(self) -> float:
        """Answered fraction of the scatter (1.0 for unsharded queries)."""
        if self.shards_total == 0:
            return 1.0
        return self.shards_answered / self.shards_total

    @property
    def refinement_time(self) -> float:
        return float(sum(self.leaf_times))

    @property
    def total_time(self) -> float:
        return self.approximate_time + self.traversal_time + self.refinement_time

    @property
    def pruning_ratio(self) -> float:
        """Fraction of indexed series whose exact distance was never computed."""
        if self.num_series == 0:
            return 0.0
        return 1.0 - self.exact_distances / self.num_series


@dataclass
class SearchResult:
    """Exact k-NN answer: indices, distances (ascending) and work statistics."""

    indices: np.ndarray
    distances: np.ndarray
    stats: SearchStats

    @property
    def nearest_index(self) -> int:
        return int(self.indices[0])

    @property
    def nearest_distance(self) -> float:
        return float(self.distances[0])


def validated_query(query: np.ndarray, expected_length: int) -> np.ndarray:
    """Convert and validate one query series at the API boundary.

    Raises a typed :class:`~repro.core.errors.ValidationError` (an
    :class:`~repro.core.errors.IndexError_` *and* a
    :class:`~repro.core.errors.SearchError`) on non-numeric input, wrong
    shape/length, or NaN/infinite values — never a numpy error downstream or
    a silently garbage distance.
    """
    try:
        query = np.asarray(query, dtype=np.float64)
    except (TypeError, ValueError) as error:
        raise ValidationError(f"query is not numeric: {error}") from None
    if query.ndim != 1 or query.shape[0] != expected_length:
        raise ValidationError(
            f"query must be a series of length {expected_length}, "
            f"got shape {query.shape}"
        )
    if not np.isfinite(query).all():
        raise ValidationError("query contains NaN or infinite values")
    return query


def validated_count(value, name: str = "k") -> int:
    """Validate an integer count parameter (``k``, refinement budgets) at the
    API boundary.

    Raises a typed :class:`~repro.core.errors.ValidationError` on
    non-integral values (``"3"``, ``2.5``) — never a bare ``TypeError`` from
    a downstream comparison — and a :class:`~repro.core.errors.SearchError`
    on counts below one, the established contract of the search entry points.
    """
    try:
        value = operator.index(value)
    except TypeError:
        raise ValidationError(
            f"{name} must be an integer, got {value!r} of type "
            f"{type(value).__name__}"
        ) from None
    if value < 1:
        raise SearchError(f"{name} must be >= 1, got {value}")
    return value


def resolve_deadline(timeout_s: "float | None") -> "float | None":
    """Turn an optional per-call time budget into a monotonic deadline.

    Non-numeric budgets raise a typed
    :class:`~repro.core.errors.ValidationError`, non-positive (or NaN) ones
    the established :class:`~repro.core.errors.InvalidParameterError` — the
    entry points never leak a bare ``TypeError`` from the comparison below.
    """
    if timeout_s is None:
        return None
    if isinstance(timeout_s, bool) or not isinstance(timeout_s, numbers.Real):
        raise ValidationError(
            f"timeout_s must be a number of seconds, got {timeout_s!r} of "
            f"type {type(timeout_s).__name__}"
        )
    budget = float(timeout_s)
    if not budget > 0:
        raise InvalidParameterError(
            f"timeout_s must be positive, got {timeout_s}")
    return time.monotonic() + budget


def deadline_expired(deadline: "float | None") -> bool:
    """Whether a search budget has run out (``None`` = no budget)."""
    return deadline is not None and time.monotonic() >= deadline


def finalize_result(query: np.ndarray, values: np.ndarray, rows: np.ndarray,
                    stats: SearchStats, delta=None) -> SearchResult:
    """Package the winning rows of a search into a :class:`SearchResult`.

    The reported distances come from one final elementwise recomputation over
    the winning rows in ascending-row order.  Refinement-time distance values
    can drift by an ulp depending on how candidates were blocked into BLAS
    kernel calls, so recomputing on a canonical row order makes per-query and
    batched searches return bit-identical results.  Answers are sorted by
    (distance, row), the same tie order as the refinement heap.

    ``delta`` (a :class:`~repro.index.dynamic.DeltaView`) resolves rows at or
    beyond the base collection to buffered delta series; the row-wise
    recomputation is unchanged, so dynamic answers stay bit-identical to a
    scratch rebuild on the union.
    """
    rows = np.sort(np.asarray(rows, dtype=np.int64))
    winners = values[rows] if delta is None else delta.gather(values, rows)
    difference = winners - query
    squared = np.einsum("ij,ij->i", difference, difference)
    order = np.lexsort((rows, squared))
    return SearchResult(indices=rows[order], distances=np.sqrt(squared[order]),
                        stats=stats)


class _KnnHeap:
    """Fixed-capacity max-heap of the k best (distance², index) pairs.

    Entries are kept under the total order (distance², index): on tied
    distances the smaller dataset row wins.  A total order makes the retained
    set independent of the order candidates were offered in, which is what
    lets the batched engine (whose refinement schedule differs) and the
    intra-query parallel engine (whose offer interleaving depends on thread
    timing) select the same k answers.
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: list[tuple[float, int]] = []  # (-distance², -index)

    def offer(self, squared_distance: float, index: int) -> None:
        entry = (-squared_distance, -index)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    def offer_block(self, squared: np.ndarray, rows: np.ndarray) -> None:
        """Offer a whole candidate block at once.

        The vectorized comparison drops candidates that cannot displace the
        current k-th best before the per-row Python loop runs; a candidate at
        exactly the threshold still passes (it can win the smaller-row
        tie-break under the total order), so the retained set is unchanged —
        offers above the threshold were no-ops anyway.
        """
        surviving = squared <= self.threshold
        for distance, row in zip(squared[surviving], rows[surviving]):
            self.offer(float(distance), int(row))

    @property
    def threshold(self) -> float:
        """Current BSF: the k-th best squared distance (inf until k answers exist)."""
        if len(self._heap) < self.k:
            return np.inf
        return -self._heap[0][0]

    def sorted_items(self) -> list[tuple[float, int]]:
        return sorted((-negative_squared, -negative_index)
                      for negative_squared, negative_index in self._heap)


class SharedKnnHeap:
    """Thread-safe bounded k-NN heap shared by one query's workers.

    Wraps :class:`_KnnHeap` with a mutex and publishes the current threshold
    as a plain attribute: workers read it lock-free (an atomic attribute
    load under the GIL; a stale value is merely a looser bound, and the
    threshold only ever tightens, so pruning against it stays conservative)
    and re-read it between refinement blocks — which is how one worker's
    tightened best-so-far prunes every other worker's remaining work.
    Because the bounded heap retains the k smallest offers under the total
    order (distance², row) no matter the offer order, the final contents are
    independent of thread scheduling: the property the
    bit-identical-across-worker-counts contract rests on.
    """

    def __init__(self, k: int) -> None:
        self._heap = _KnnHeap(k)
        self._lock = threading.Lock()
        self._threshold = np.inf

    @property
    def threshold(self) -> float:
        return self._threshold

    def offer_block(self, squared: np.ndarray, rows: np.ndarray) -> None:
        # Cheap lock-free rejection against the published threshold; the
        # survivors are re-filtered under the lock by the inner heap's own
        # (possibly tighter) threshold.
        surviving = squared <= self._threshold
        if not surviving.any():
            return
        with self._lock:
            self._heap.offer_block(squared[surviving], rows[surviving])
            self._threshold = self._heap.threshold

    def sorted_items(self) -> list[tuple[float, int]]:
        with self._lock:
            return self._heap.sorted_items()


class FixedThreshold:
    """A frozen external best-so-far: prune against it, never feed it back.

    The process-per-shard cluster (:mod:`repro.cluster`) forwards the
    coordinator's shared threshold *by value* in each shard RPC; the worker
    passes this object as ``shared_best`` so its search prunes against the
    cross-shard bound exactly like an in-process shard would.  A frozen
    bound is admissible for the same reason a stale
    :class:`SharedKnnHeap.threshold` read is: the live threshold only ever
    tightens, so the forwarded value is merely looser — candidates are over-
    retained, never dropped, and the coordinator's canonical merge settles
    the final order.  Offers are discarded (the worker's own heap already
    tracks them); the coordinator offers the returned candidates to its live
    heap after the RPC returns.
    """

    __slots__ = ("threshold",)

    def __init__(self, threshold: float) -> None:
        self.threshold = float(threshold)

    def offer_block(self, squared: np.ndarray, rows: np.ndarray) -> None:
        pass


def stats_to_payload(stats: SearchStats) -> dict:
    """JSON-ready dict of one :class:`SearchStats` (the shard RPC wire form).

    Round-trips exactly through :func:`stats_from_payload`: counters are
    ints, timings floats (JSON preserves float64 bit patterns via shortest
    round-trip repr), ``leaf_times`` the full per-work-item list — so merged
    cluster stats equal the in-process scatter's merged stats.
    """
    return {
        "num_series": int(stats.num_series),
        "num_workers": int(stats.num_workers),
        "leaves_visited": int(stats.leaves_visited),
        "leaves_pruned_in_queue": int(stats.leaves_pruned_in_queue),
        "nodes_pruned": int(stats.nodes_pruned),
        "series_lower_bounds": int(stats.series_lower_bounds),
        "exact_distances": int(stats.exact_distances),
        "approximate_time": float(stats.approximate_time),
        "traversal_time": float(stats.traversal_time),
        "leaf_times": [float(value) for value in stats.leaf_times],
        "timed_out": bool(stats.timed_out),
        "shards_total": int(stats.shards_total),
        "shards_answered": int(stats.shards_answered),
        "partial": bool(stats.partial),
        "wall_time_s": float(stats.wall_time_s),
    }


def stats_from_payload(payload: dict) -> SearchStats:
    """Rebuild a :class:`SearchStats` from :func:`stats_to_payload` output."""
    return SearchStats(
        num_series=int(payload.get("num_series", 0)),
        num_workers=int(payload.get("num_workers", 1)),
        leaves_visited=int(payload.get("leaves_visited", 0)),
        leaves_pruned_in_queue=int(payload.get("leaves_pruned_in_queue", 0)),
        nodes_pruned=int(payload.get("nodes_pruned", 0)),
        series_lower_bounds=int(payload.get("series_lower_bounds", 0)),
        exact_distances=int(payload.get("exact_distances", 0)),
        approximate_time=float(payload.get("approximate_time", 0.0)),
        traversal_time=float(payload.get("traversal_time", 0.0)),
        leaf_times=[float(value) for value in payload.get("leaf_times", [])],
        timed_out=bool(payload.get("timed_out", False)),
        shards_total=int(payload.get("shards_total", 0)),
        shards_answered=int(payload.get("shards_answered", 0)),
        partial=bool(payload.get("partial", False)),
        wall_time_s=float(payload.get("wall_time_s", 0.0)),
    )


class _TandemHeap:
    """A query-local heap coupled to an external (cross-shard) best-so-far.

    The sharded scatter-gather engine hands every shard's search the same
    global best-so-far through this wrapper: the effective pruning threshold
    is the *tighter* of the local k-th best and the externally published
    bound, and every refined block is offered to both sides.  Pruning a
    shard's candidates against the global threshold is admissible because a
    true global top-k candidate has ``bound <= distance <= global k-th <=
    published threshold`` and the tie-tolerant ``_admissible`` filter keeps
    candidates *at* the threshold — so the union of the shards' retained
    sets always contains the global winners, no matter how the shards'
    refinement interleaves.  ``external`` only needs ``threshold`` and
    ``offer_block(squared, rows)`` (the sharded engine passes an adapter
    that translates shard-local rows to global ids before offering).
    """

    def __init__(self, inner, external) -> None:
        self._inner = inner
        self._external = external

    @property
    def threshold(self) -> float:
        return min(self._inner.threshold, self._external.threshold)

    def offer_block(self, squared: np.ndarray, rows: np.ndarray) -> None:
        self._inner.offer_block(squared, rows)
        self._external.offer_block(squared, rows)

    def sorted_items(self) -> list[tuple[float, int]]:
        return self._inner.sorted_items()


#: Series length at or above which exact refinement switches to the blocked
#: early-abandoning ED kernel.  For short series the expanded-form BLAS
#: kernel wins outright; for long series most candidates blow past the BSF
#: within the first column chunks and abandoning skips the tail.  The choice
#: depends only on the build, never on the schedule, so every engine and
#: worker count refines a given row with the same kernel and sees the same
#: value (part of the bit-identity contract).
EARLY_ABANDON_MIN_LENGTH = 1024


class ExactSearcher:
    """Answers exact 1-NN and k-NN queries over a built :class:`TreeIndex`.

    Parameters
    ----------
    index:
        A built tree index.
    normalize_queries:
        z-normalize incoming queries (the paper's setting).
    flat_refinement_threshold:
        When the average leaf size falls below this value the tree has
        degenerated into (near-)singleton leaves — a scale artefact of small
        collections where the symbolic words of almost every series differ in
        some top bit — and provides no grouping at all; the searcher then
        filters and refines over the flat per-series directory instead of
        walking leaves one by one.  Both paths compute the same lower bounds
        and return identical exact answers.  When left at ``None``, per-query
        search uses the crossover 1.5 and :meth:`knn_batch` uses the batched
        engine's higher default (its flat path's fixed cost amortizes over
        the batch); an explicit value is honored by both.
    delta_source:
        Optional zero-argument callable returning the current
        :class:`~repro.index.dynamic.DeltaView` of a dynamic index (or
        ``None`` when there are no pending writes).  When set, every query
        answers over *tree ∪ delta − tombstones*: the delta is refined as an
        extra pseudo-leaf and tombstoned rows are masked out of every
        refinement step.
    early_abandon_length:
        Series length at which refinement switches to the blocked
        early-abandoning ED kernel
        (:func:`~repro.core.distance.squared_euclidean_batch_abandon`);
        ``None`` keeps the default :data:`EARLY_ABANDON_MIN_LENGTH`.
    """

    #: Default flat-refinement crossover of the per-query engine.
    DEFAULT_FLAT_REFINEMENT_THRESHOLD = 1.5

    def __init__(self, index: TreeIndex, normalize_queries: bool = True,
                 flat_refinement_threshold: float | None = None,
                 delta_source=None,
                 early_abandon_length: int | None = None) -> None:
        if not index.is_built:
            raise SearchError("the index must be built before searching")
        self.index = index
        self.normalize_queries = normalize_queries
        self._delta_source = delta_source
        self._requested_flat_threshold = flat_refinement_threshold
        self.flat_refinement_threshold = (
            self.DEFAULT_FLAT_REFINEMENT_THRESHOLD
            if flat_refinement_threshold is None else flat_refinement_threshold)
        self.early_abandon_length = (EARLY_ABANDON_MIN_LENGTH
                                     if early_abandon_length is None
                                     else early_abandon_length)
        self._early_abandon = (
            index.dataset.series_length >= self.early_abandon_length)
        self._batch_searcher = None
        self._intra_pools: dict[int, WorkerPool] = {}
        self._intra_pools_lock = threading.Lock()
        # Hoisted out of the per-leaf refinement loops: the summarization's
        # bins and lower-bound weights are fixed for a given build, and the
        # chained attribute lookups showed up when profiling refinement
        # rounds over many small leaves.  `_refresh_summarization_cache`
        # re-captures them once per query in case the tree was rebuilt in
        # place (fit assigns fresh bins/weights objects).
        self._bins = index.summarization.bins
        self._weights = index.summarization.weights

    def _refresh_summarization_cache(self) -> None:
        summarization = self.index.summarization
        if summarization.bins is not self._bins:
            self._bins = summarization.bins
        if summarization.weights is not self._weights:
            self._weights = summarization.weights

    def _worker_pool(self, num_workers: int) -> WorkerPool:
        """The searcher's persistent intra-query pool for one worker count.

        Persistence matters here: one parallel query's whole refinement phase
        can be shorter than starting threads, so each pool keeps its executor
        alive between queries.  Pools are cached per worker count so callers
        that alternate counts (benchmarks, mixed workloads) never churn
        executors, and creation is locked so concurrent queries on one
        searcher (the dynamic index serves reads lock-free) cannot race two
        pools into existence.
        """
        pool = self._intra_pools.get(num_workers)
        if pool is None:
            with self._intra_pools_lock:
                pool = self._intra_pools.get(num_workers)
                if pool is None:
                    pool = WorkerPool(num_workers, persistent=True)
                    self._intra_pools[num_workers] = pool
        return pool

    # ------------------------------------------------------------- public

    def knn(self, query: np.ndarray, k: int = 1,
            num_workers: "int | None" = None,
            timeout_s: "float | None" = None,
            shared_best: "object | None" = None,
            trace=None) -> SearchResult:
        """Exact k nearest neighbours of ``query`` under the (z-)ED.

        ``num_workers`` threads drain the query's own surviving-leaf queue
        against a shared best-so-far (``None`` = the ``REPRO_NUM_WORKERS``
        process default), cutting single-query latency on multi-core
        machines; the answer is bit-identical for every worker count.

        ``timeout_s`` bounds the query's wall time: when the budget expires
        mid-refinement the current best-so-far is finalized and returned with
        ``stats.timed_out=True`` (every reported distance is exact; the set
        may miss a closer unrefined series) instead of running to completion.

        ``shared_best`` couples this search to an external best-so-far (see
        :class:`_TandemHeap`): the sharded engine passes each shard the same
        global bound, so one shard's tightened threshold prunes every other
        shard's remaining work — PR 5's broadcast, lifted across shards.

        ``trace`` (a :class:`~repro.obs.trace.Trace`) records the query's
        phase spans — summarize, approximate, delta, traversal, refinement,
        finalize — purely observationally: tracing never changes which rows
        are refined or offered, so answers are bit-identical with tracing on
        or off.
        """
        start = time.perf_counter()
        k = validated_count(k)
        deadline = resolve_deadline(timeout_s)
        num_workers = resolve_num_workers(num_workers)
        delta = self._delta_source() if self._delta_source is not None else None
        result = self._knn_under_delta(query, k, num_workers, delta,
                                       deadline=deadline,
                                       shared_best=shared_best, trace=trace)
        result.stats.wall_time_s = time.perf_counter() - start
        return result

    def _knn_under_delta(self, query: np.ndarray, k: int, num_workers: int,
                         delta, deadline: "float | None" = None,
                         shared_best: "object | None" = None,
                         trace=None) -> SearchResult:
        """The engine behind :meth:`knn`, with the dynamic overlay pinned.

        The batched engine's intra-query fallback calls this directly so a
        whole batch answers over one consistent delta snapshot.
        """
        setup_start = time.perf_counter() if trace is not None else 0.0
        available = self.index.num_series if delta is None else delta.num_surviving
        if k > available:
            raise SearchError(
                f"k={k} exceeds the number of "
                f"{'indexed' if delta is None else 'surviving'} series ({available})"
            )
        query = validated_query(query, self.index.dataset.series_length)
        if self.normalize_queries:
            query = znormalize(query)

        self._refresh_summarization_cache()
        summarization = self.index.summarization
        query_summary = summarization.transform(query)
        query_word = self._bins.symbols(query_summary)

        stats = SearchStats(num_series=available, num_workers=num_workers)
        heap = SharedKnnHeap(k) if num_workers > 1 else _KnnHeap(k)
        if shared_best is not None:
            heap = _TandemHeap(heap, shared_best)
        if trace is not None:
            # Validation, z-normalization and the SFA transform of the query.
            trace.add_phase("summarize", time.perf_counter() - setup_start)

        if self.index.average_leaf_size < self.flat_refinement_threshold:
            # Degenerate tree (typical at reproduction scale when the selected
            # summary components carry little signal and the root fan-out
            # shatters the data into near-singleton leaves): skip the per-leaf
            # machinery and filter-and-refine over the flat series directory.
            flat_start = time.perf_counter() if trace is not None else 0.0
            if num_workers > 1:
                self._flat_search_parallel(query, query_summary, heap, stats,
                                           delta, num_workers,
                                           deadline=deadline)
            else:
                self._flat_search(query, query_summary, heap, stats,
                                  delta=delta, deadline=deadline)
            if trace is not None:
                flat_wall = time.perf_counter() - flat_start
                # The flat path computes all per-series bounds in one call
                # (recorded as traversal) and refines the survivors; split
                # the phase accordingly so the taxonomy matches the tree path.
                trace.add_phase(
                    "traversal", min(stats.traversal_time, flat_wall),
                    series_lower_bounds=stats.series_lower_bounds)
                trace.add_phase(
                    "refinement",
                    max(flat_wall - min(stats.traversal_time, flat_wall), 0.0),
                    exact_distances=stats.exact_distances)
        else:
            start = time.perf_counter()
            seed_leaf = self._approximate_descent(query_word, query_summary)
            if seed_leaf is not None:
                # The seed refinement ignores the deadline: without at least
                # one refined leaf there is no best-so-far to finalize.
                self._refine_leaves(query, query_summary, [seed_leaf], heap,
                                    stats, record_time=False, delta=delta)
            stats.approximate_time = time.perf_counter() - start
            if trace is not None:
                trace.add_phase("approximate", stats.approximate_time,
                                seeded=int(seed_leaf is not None))

            if num_workers > 1:
                start = time.perf_counter()
                ordered_leaves, ordered_bounds = self._collect_leaves(
                    query_summary, heap.threshold, stats, skip_leaf=seed_leaf)
                stats.traversal_time = time.perf_counter() - start
                if trace is not None:
                    trace.add_phase("traversal", stats.traversal_time,
                                    leaves_queued=len(ordered_leaves),
                                    nodes_pruned=stats.nodes_pruned)
                    refine_start = time.perf_counter()
                self._drain_queue_parallel(query, query_summary, ordered_leaves,
                                           ordered_bounds, heap, stats, delta,
                                           num_workers, deadline=deadline)
                if trace is not None:
                    # Wall time around the parallel drain; the merged
                    # per-worker CPU time lands in a detail span below.
                    trace.add_phase("refinement",
                                    time.perf_counter() - refine_start,
                                    workers=num_workers)
                    trace.add_detail("refinement_cpu", stats.refinement_time,
                                     leaves_visited=stats.leaves_visited)
            else:
                # The delta is one extra pseudo-leaf, refined right after the
                # seed so its series help tighten the BSF before traversal
                # prunes.
                if delta is not None:
                    delta_start = time.perf_counter() if trace is not None else 0.0
                    self._refine_delta(query, query_summary, heap, stats, delta,
                                       deadline=deadline)
                    if trace is not None:
                        trace.add_phase("delta",
                                        time.perf_counter() - delta_start,
                                        delta_rows=int(delta.rows.size))

                start = time.perf_counter()
                ordered_leaves, ordered_bounds = self._collect_leaves(
                    query_summary, heap.threshold, stats, skip_leaf=seed_leaf)
                stats.traversal_time = time.perf_counter() - start
                if trace is not None:
                    trace.add_phase("traversal", stats.traversal_time,
                                    leaves_queued=len(ordered_leaves),
                                    nodes_pruned=stats.nodes_pruned)
                    refine_start = time.perf_counter()

                self._process_queue(query, query_summary, ordered_leaves,
                                    ordered_bounds, heap, stats, delta=delta,
                                    deadline=deadline)
                if trace is not None:
                    trace.add_phase("refinement",
                                    time.perf_counter() - refine_start,
                                    leaves_visited=stats.leaves_visited)

        final_start = time.perf_counter() if trace is not None else 0.0
        rows = np.array([index for _, index in heap.sorted_items()], dtype=np.int64)
        result = finalize_result(query, self.index.dataset.values, rows, stats,
                                 delta=delta)
        if trace is not None:
            trace.add_phase("finalize", time.perf_counter() - final_start,
                            answers=int(rows.size))
            trace.add_detail("heap", offers=stats.exact_distances,
                             series_lower_bounds=stats.series_lower_bounds)
        return result

    def nearest_neighbor(self, query: np.ndarray,
                         num_workers: "int | None" = None,
                         timeout_s: "float | None" = None) -> SearchResult:
        """Exact 1-NN of ``query`` (convenience wrapper around :meth:`knn`).

        ``timeout_s`` bounds the search exactly like :meth:`knn` does: on
        expiry the best-so-far is finalized with ``stats.timed_out=True``.
        """
        return self.knn(query, k=1, num_workers=num_workers,
                        timeout_s=timeout_s)

    def approximate_knn(self, query: np.ndarray, k: int = 1,
                        max_refined_series: int = 256) -> SearchResult:
        """Approximate k-NN: refine only the most promising candidates.

        The paper lists approximate search with SFA as future work; this method
        implements the natural variant: the query descends to its own leaf (the
        same first step as exact search), and then only the
        ``max_refined_series`` candidates with the smallest per-series lower
        bounds are refined with true distances.  The answer is not guaranteed
        to be exact, but the candidates are chosen by the same lower bounds
        that drive exact pruning, so recall is high when the summarization is
        tight.  Increasing ``max_refined_series`` trades time for recall and
        converges to the exact answer at ``max_refined_series >= num_series``.
        """
        wall_start = time.perf_counter()
        k = validated_count(k)
        max_refined_series = validated_count(max_refined_series,
                                             "max_refined_series")
        if max_refined_series < k:
            raise SearchError("max_refined_series must be at least k")
        if self._delta_source is not None and self._delta_source() is not None:
            raise SearchError(
                "approximate_knn does not answer over a pending dynamic delta; "
                "compact() the index first"
            )
        query = validated_query(query, self.index.dataset.series_length)
        if self.normalize_queries:
            query = znormalize(query)

        summarization = self.index.summarization
        query_summary = summarization.transform(query)

        stats = SearchStats(num_series=self.index.num_series)
        heap = _KnnHeap(k)

        start = time.perf_counter()
        bounds, rows = self.index.all_series_lower_bounds(query_summary)
        budget = min(max_refined_series, bounds.shape[0])
        candidates = np.argpartition(bounds, budget - 1)[:budget]
        candidates = candidates[np.argsort(bounds[candidates])]
        stats.series_lower_bounds += bounds.shape[0]
        stats.traversal_time = time.perf_counter() - start

        start = time.perf_counter()
        candidate_rows = rows[candidates]
        squared = squared_euclidean_batch(query, self.index.dataset.values[candidate_rows])
        stats.exact_distances += candidate_rows.shape[0]
        heap.offer_block(squared, candidate_rows)
        stats.leaf_times.append(time.perf_counter() - start)

        rows_ = np.array([index for _, index in heap.sorted_items()], dtype=np.int64)
        result = finalize_result(query, self.index.dataset.values, rows_, stats)
        result.stats.wall_time_s = time.perf_counter() - wall_start
        return result

    def knn_batch(self, queries: np.ndarray, k: int = 1,
                  num_workers: "int | None" = None,
                  timeout_s: "float | None" = None) -> list[SearchResult]:
        """Exact k-NN of a batch of queries (one per row), answered together.

        Delegates to the :class:`~repro.index.batch_search.BatchSearcher`,
        which vectorizes lower-bound and distance kernels across the whole
        workload instead of looping over :meth:`knn`; the answers are the same
        exact k-NN sets either way.  ``num_workers > 1`` shards the batch over
        a thread pool (the underlying BLAS kernels release the GIL), falling
        back to intra-query workers when the batch is smaller than the pool;
        ``None`` means the ``REPRO_NUM_WORKERS`` process default.
        """
        from repro.index.batch_search import BatchSearcher

        if self._batch_searcher is None:
            # Unless the caller pinned a crossover explicitly, the batched
            # engine keeps its own (higher) flat-refinement default: the flat
            # path's fixed cost is amortized over the batch, so it pays off
            # on trees the per-query searcher still walks.
            options = {}
            if self._requested_flat_threshold is not None:
                options["flat_refinement_threshold"] = self._requested_flat_threshold
            # This searcher (and its persistent intra-query pool) doubles as
            # the batched engine's small-batch fallback engine.
            self._batch_searcher = BatchSearcher(
                self.index, normalize_queries=self.normalize_queries,
                delta_source=self._delta_source, intra_searcher=self, **options)
        return self._batch_searcher.knn_batch(queries, k=k,
                                              num_workers=num_workers,
                                              timeout_s=timeout_s)

    # ------------------------------------------------------ approximate NN

    def _approximate_descent(self, query_word: np.ndarray,
                             query_summary: np.ndarray) -> LeafNode | None:
        """Descend towards the leaf whose region contains the query word.

        If no root child matches the query's 1-bit prefix, the leaf with the
        smallest lower bound (from the leaf directory) is used instead.
        """
        return self.index.approximate_leaf(query_word, query_summary)

    # ------------------------------------------------------ flat refinement

    def _flat_directory(self, query_summary: np.ndarray, delta
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Per-series lower bounds and global rows of the flat directory.

        A dynamic ``delta`` appends its buffered series as extra directory
        entries (same kernel, global row ids) and masks tombstoned rows —
        base and delta alike — to ``+inf`` so they are never refined.
        """
        bounds, rows = self.index.all_series_lower_bounds(query_summary)
        if delta is not None:
            if delta.base_alive is not None:
                # Fresh kernel output per call, so in-place masking is safe.
                bounds[~delta.base_alive[rows]] = np.inf
            if delta.rows.size:
                delta_bounds = batch_lower_bound(query_summary, delta.lower,
                                                 delta.upper, self._weights)
                delta_bounds[~delta.alive] = np.inf
                bounds = np.concatenate([bounds, delta_bounds])
                rows = np.concatenate([rows, delta.rows])
        return bounds, rows

    def _flat_search(self, query: np.ndarray, query_summary: np.ndarray, heap,
                     stats: SearchStats, delta=None, block_size: int = 128,
                     deadline: "float | None" = None) -> None:
        """Filter-and-refine over the flat per-series directory.

        The per-series lower bounds are computed in one vectorized call and
        the candidates refined through the shared blocked best-so-far loop
        (:meth:`_refine_candidates`) — the same GEMINI logic as the leaf-wise
        path, without per-leaf overhead.  Per-block times are recorded as the
        parallel work items for the virtual-core simulation.
        """
        start = time.perf_counter()
        bounds, rows = self._flat_directory(query_summary, delta)
        stats.series_lower_bounds += bounds.shape[0]
        stats.traversal_time = time.perf_counter() - start

        self._refine_candidates(query, rows, bounds,
                                self._flat_gather(rows, delta), heap, stats,
                                block_size=block_size, time_blocks=True,
                                deadline=deadline)

    def _flat_gather(self, rows: np.ndarray, delta):
        """Value gather over flat-directory candidate positions."""
        values = self.index.dataset.values
        if delta is None:
            return lambda block: values[rows[block]]
        return lambda block: delta.gather(values, rows[block])

    def _flat_search_parallel(self, query: np.ndarray, query_summary: np.ndarray,
                              heap: SharedKnnHeap, stats: SearchStats, delta,
                              num_workers: int, block_size: int = 128,
                              deadline: "float | None" = None) -> None:
        """Flat filter-and-refine with the sorted directory drained by workers.

        Same bounds and candidates as :meth:`_flat_search`; the bound-sorted
        directory is cut into fixed blocks which workers claim in
        ascending-bound order, so the earliest blocks tighten the shared
        best-so-far and later blocks are pruned by the threshold re-reads of
        the shared refinement loop — each claimed block goes through the same
        :meth:`_refine_candidates` helper as every other candidate source.
        """
        from repro.index.stats import merge_search_stats

        start = time.perf_counter()
        bounds, rows = self._flat_directory(query_summary, delta)
        candidates = np.flatnonzero(bounds < np.inf)
        order = candidates[np.argsort(bounds[candidates])]
        stats.series_lower_bounds += bounds.shape[0]
        stats.traversal_time = time.perf_counter() - start

        gather = self._flat_gather(rows, delta)
        blocks = [order[position:position + block_size]
                  for position in range(0, order.size, block_size)]

        def process(block: np.ndarray, worker_stats: SearchStats) -> None:
            if deadline_expired(deadline):
                worker_stats.timed_out = True
                return
            self._refine_candidates(query, rows[block], bounds[block],
                                    lambda selected: gather(block[selected]),
                                    heap, worker_stats,
                                    block_size=block_size, time_blocks=True,
                                    deadline=deadline)

        merge_search_stats(stats, self._worker_pool(num_workers).map_shared(
            process, blocks, make_state=SearchStats))

    # -------------------------------------------------------- leaf queueing

    def _collect_leaves(self, query_summary: np.ndarray, best_so_far: float,
                        stats: SearchStats, skip_leaf: LeafNode | None
                        ) -> tuple[list[LeafNode], np.ndarray]:
        """Order every surviving leaf by its lower bound to the query.

        All leaf lower bounds come from one vectorized kernel call over the
        index's leaf directory; surviving leaves are returned sorted by lower
        bound, which plays the role of MESSI's priority queues — drained
        sequentially by :meth:`_process_queue` or by the worker threads of
        :meth:`_drain_queue_parallel`.
        """
        bounds = self.index.leaf_lower_bounds(query_summary)
        surviving = np.flatnonzero(self._admissible(bounds, best_so_far))
        stats.nodes_pruned += len(self.index.leaf_nodes) - surviving.size
        if skip_leaf is not None:
            surviving = surviving[surviving != self.index.leaf_position(skip_leaf)]
        order = surviving[np.argsort(bounds[surviving])]
        leaves = self.index.leaf_nodes
        ordered_leaves = [leaves[position] for position in order]
        return ordered_leaves, bounds[order]

    # ----------------------------------------------------------- refinement

    @staticmethod
    def _admissible(bounds: np.ndarray, threshold: float) -> np.ndarray:
        """Mask of candidates that may still contain an answer.

        A candidate whose lower bound *equals* the threshold is kept: its
        true distance can equal the k-th best exactly, in which case it can
        still win the smaller-row tie-break under the total order.  Keeping
        it is what makes pruning against the live shared threshold
        schedule-independent — a true top-k candidate has
        ``bound <= distance <= final threshold <= current threshold`` and
        therefore can never be dropped, no matter which worker tightened the
        threshold first; with a strict filter, a tie candidate's fate would
        depend on thread timing.  ``+inf`` bounds (masked tombstones) are
        always excluded, even while the threshold is still infinite.
        """
        if np.isfinite(threshold):
            return bounds <= threshold
        return bounds < np.inf

    def _exact_block(self, query: np.ndarray, values: np.ndarray,
                     threshold: float) -> np.ndarray:
        """True squared distances of one refinement block.

        Long series (``early_abandon_length`` and up) use the blocked
        early-abandoning kernel: rows whose partial sum already exceeds the
        best-so-far stop accumulating, and their (already disqualifying)
        partial sums are dropped by the heap's ``<= threshold`` pre-filter.
        The kernel choice depends only on the build, never on the schedule,
        so every worker count sees identical values for a given row.
        """
        if self._early_abandon:
            return squared_euclidean_batch_abandon(query, values, threshold)
        return squared_euclidean_batch(query, values)

    def _refine_candidates(self, query: np.ndarray, rows: np.ndarray,
                           bounds: np.ndarray, gather, heap,
                           stats: SearchStats, block_size: int = 32,
                           time_blocks: bool = False,
                           deadline: "float | None" = None) -> None:
        """Blocked best-so-far refinement shared by every candidate source.

        This is the one copy of the BSF-refresh loop that used to be
        duplicated across the leaf, group and delta refinement paths:
        candidates whose lower bound beats the (possibly shared) heap's
        threshold are visited most-promising-first in blocks; each block
        costs one batched ED kernel call, the threshold is re-read between
        blocks so the remaining tail can be abandoned wholesale (the blend
        of vectorization and early abandoning of Algorithm 3), and only
        survivors of the heap's vectorized ``<= threshold`` pre-filter reach
        the per-row offer loop.

        ``rows`` holds the candidates' global row ids, ``bounds`` their lower
        bounds, and ``gather(block)`` returns the series values of candidate
        positions ``block``.  ``time_blocks`` records one work-item time per
        block (the flat path's virtual-core granularity) instead of leaving
        timing to the caller.  An expired ``deadline`` stops between blocks
        with ``stats.timed_out`` set — the heap keeps every distance already
        refined, which is the best-so-far the timed-out query finalizes.
        """
        threshold = heap.threshold
        candidates = np.flatnonzero(self._admissible(bounds, threshold))
        if candidates.size == 0:
            return
        # Visit the most promising candidates first so the BSF tightens fast.
        candidates = candidates[np.argsort(bounds[candidates])]
        for block_start in range(0, candidates.size, block_size):
            if deadline_expired(deadline):
                stats.timed_out = True
                return
            threshold = heap.threshold
            block = candidates[block_start:block_start + block_size]
            block = block[self._admissible(bounds[block], threshold)]
            if block.size == 0:
                # Candidates are ordered by lower bound, so everything that
                # remains is at least as far away: abandon it wholesale.
                break
            block_timer = time.perf_counter() if time_blocks else 0.0
            squared = self._exact_block(query, gather(block), threshold)
            stats.exact_distances += block.size
            heap.offer_block(squared, rows[block])
            if time_blocks:
                stats.leaf_times.append(time.perf_counter() - block_timer)

    def _process_queue(self, query: np.ndarray, query_summary: np.ndarray,
                       ordered_leaves: list[LeafNode], ordered_bounds: np.ndarray,
                       heap, stats: SearchStats, delta=None,
                       deadline: "float | None" = None) -> None:
        """Visit leaves in lower-bound order and refine them in small groups.

        Consecutive small leaves (frequent at reproduction scale, where root
        fan-out can shatter a dataset into single-series leaves) are refined
        together so that each group costs one batched kernel call rather than
        one call per leaf; the best-so-far is refreshed between groups, which
        preserves MESSI's early-abandoning behaviour.
        """
        position = 0
        total = len(ordered_leaves)
        while position < total:
            if deadline_expired(deadline):
                stats.timed_out = True
                return
            threshold = heap.threshold
            if ordered_bounds[position] > threshold:
                # Leaves are ordered by lower bound, so everything that
                # remains is strictly farther away: abandon it wholesale.  A
                # leaf *at* the threshold is still refined — it can hold a
                # smaller-row tie winner (see ``_admissible``).
                stats.leaves_pruned_in_queue += total - position
                return
            group, position = self._take_group(ordered_leaves, ordered_bounds,
                                               position, threshold)
            self._refine_leaves(query, query_summary, group, heap, stats,
                                record_time=True, delta=delta,
                                deadline=deadline)

    def _take_group(self, ordered_leaves: list[LeafNode],
                    ordered_bounds: np.ndarray, position: int,
                    threshold: float = np.inf
                    ) -> tuple[list[LeafNode], int]:
        """Accumulate consecutive queue leaves into one refinement group.

        The single copy of the grouping rule shared by the sequential queue
        walk (which caps the group at the live ``threshold``) and the
        parallel work-item builder (which passes ``inf`` — its items are
        fixed up front and pruned at claim time instead): consecutive
        leaves are taken until the group reaches the size target, so small
        leaves share one batched kernel call.
        """
        group_target = max(self.index.leaf_size, 64)
        total = len(ordered_leaves)
        group = [ordered_leaves[position]]
        group_size = group[0].size
        position += 1
        while (position < total and group_size < group_target
               and ordered_bounds[position] <= threshold):
            group.append(ordered_leaves[position])
            group_size += ordered_leaves[position].size
            position += 1
        return group, position

    def _drain_queue_parallel(self, query: np.ndarray, query_summary: np.ndarray,
                              ordered_leaves: list[LeafNode],
                              ordered_bounds: np.ndarray, heap: SharedKnnHeap,
                              stats: SearchStats, delta,
                              num_workers: int,
                              deadline: "float | None" = None) -> None:
        """Drain the lower-bound-ordered leaf queue with ``num_workers`` threads.

        The queue is cut into work items up front — static groups of
        consecutive leaves built to the same size target as the sequential
        grouping (but fixed in advance rather than re-grouped under the live
        threshold), with the dynamic delta pseudo-leaf as just another item
        at the head of the queue.  Workers claim items most-promising-first
        and re-check the shared best-so-far at claim time and between
        refinement blocks, so one worker's tightened threshold prunes every
        other worker's remaining work — the MESSI refinement structure the
        paper's Figure 10 core scaling measures.  Per-worker stats are merged
        in worker order (deterministic, independent of completion timing).
        """
        from repro.index.stats import merge_search_stats

        items: list["tuple[float, list[LeafNode]] | None"] = []
        if delta is not None and delta.rows.size:
            items.append(None)  # the delta pseudo-leaf rides the same queue
        position = 0
        while position < len(ordered_leaves):
            min_bound = float(ordered_bounds[position])
            group, position = self._take_group(ordered_leaves, ordered_bounds,
                                               position)
            items.append((min_bound, group))

        def process(item, worker_stats: SearchStats) -> None:
            if deadline_expired(deadline):
                # Checked at claim time: workers stop picking up new items
                # once the budget is gone, and the shared heap keeps every
                # already-refined distance as the finalized best-so-far.
                worker_stats.timed_out = True
                return
            if item is None:
                self._refine_delta(query, query_summary, heap, worker_stats,
                                   delta, deadline=deadline)
                return
            min_bound, group = item
            if min_bound > heap.threshold:
                # Strictly worse than the shared BSF; a group *at* the
                # threshold may hold a smaller-row tie winner and is refined
                # (see ``_admissible`` for why this is what keeps answers
                # schedule-independent).
                worker_stats.leaves_pruned_in_queue += len(group)
                return
            self._refine_leaves(query, query_summary, group, heap, worker_stats,
                                record_time=True, delta=delta,
                                deadline=deadline)

        merge_search_stats(stats, self._worker_pool(num_workers).map_shared(
            process, items, make_state=SearchStats))

    def _refine_leaves(self, query: np.ndarray, query_summary: np.ndarray,
                       leaves: list[LeafNode], heap, stats: SearchStats,
                       record_time: bool, delta=None,
                       deadline: "float | None" = None) -> None:
        """Filter leaves by per-series lower bound, then refine exactly.

        One leaf or a whole group: several consecutive small leaves cost one
        concatenated lower-bound kernel call rather than one per leaf, and
        the surviving candidates go through the shared blocked refinement
        loop (:meth:`_refine_candidates`).
        """
        start = time.perf_counter()
        stats.leaves_visited += len(leaves)
        if len(leaves) == 1:
            leaf = leaves[0]
            lower, upper, indices = leaf.lower, leaf.upper, leaf.indices
        else:
            lower = np.vstack([leaf.lower for leaf in leaves])
            upper = np.vstack([leaf.upper for leaf in leaves])
            indices = np.concatenate([leaf.indices for leaf in leaves])
        bounds = batch_lower_bound(query_summary, lower, upper, self._weights)
        if delta is not None and delta.base_alive is not None:
            bounds[~delta.base_alive[indices]] = np.inf
        stats.series_lower_bounds += indices.shape[0]
        values = self.index.dataset.values
        self._refine_candidates(query, indices, bounds,
                                lambda block: values[indices[block]],
                                heap, stats, deadline=deadline)
        if record_time:
            stats.leaf_times.append(time.perf_counter() - start)

    def _refine_delta(self, query: np.ndarray, query_summary: np.ndarray,
                      heap, stats: SearchStats, delta,
                      deadline: "float | None" = None) -> None:
        """Refine the dynamic delta buffer as one extra pseudo-leaf.

        The buffered series are filtered with the same per-series lower-bound
        kernel as leaf series — GEMINI pruning applies to the delta too — and
        tombstoned entries are masked to ``+inf`` so they are never refined.
        """
        if delta.rows.size == 0:
            return
        start = time.perf_counter()
        bounds = batch_lower_bound(query_summary, delta.lower, delta.upper,
                                   self._weights)
        bounds[~delta.alive] = np.inf
        stats.series_lower_bounds += delta.rows.shape[0]
        self._refine_candidates(query, delta.rows, bounds,
                                lambda block: delta.values[block], heap, stats,
                                deadline=deadline)
        stats.leaf_times.append(time.perf_counter() - start)
