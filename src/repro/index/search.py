"""Exact GEMINI similarity search over a :class:`~repro.index.tree.TreeIndex`.

The algorithm follows Section IV-C of the paper:

1. *Approximate search*: descend the tree along the query's own word to reach
   one leaf and compute the real distances to the series stored there.  The
   best of these is the initial best-so-far (BSF) answer.
2. *Pruning traversal*: walk every root subtree; any node whose lower-bound
   distance to the query exceeds the BSF is pruned together with its whole
   subtree; surviving leaves are placed in a priority queue keyed by their
   lower-bound distance.
3. *Refinement*: pop leaves in increasing lower-bound order.  As soon as the
   popped lower bound exceeds the BSF the search stops (everything left in the
   queue is worse).  Otherwise the per-series lower bounds inside the leaf are
   evaluated with the vectorized SIMD-style kernel; only series that survive
   that filter have their true Euclidean distance computed (with early
   abandoning against the BSF).

k-NN uses the same machinery with the BSF being the k-th best distance found
so far.  The searcher records per-leaf processing costs so the virtual-core
simulator can estimate multi-worker query times (MESSI assigns priority-queue
leaves to parallel workers).

Whole query workloads should go through :meth:`ExactSearcher.knn_batch`,
which delegates to the batched multi-query engine
(:class:`~repro.index.batch_search.BatchSearcher`): same exact answers,
several times the throughput once a few dozen queries are batched together.

Both engines optionally fuse a *dynamic overlay* into the refinement loop: a
:class:`~repro.index.dynamic.DynamicIndex` layers a write path (buffered
inserts, tombstone deletes) over the read-optimized tree and passes the
engines a ``delta_source`` callable returning the current
:class:`~repro.index.dynamic.DeltaView`.  Delta series are lower-bounded with
the same :func:`~repro.core.simd.batch_lower_bound` kernel as leaf series (so
pruning applies to them too) and refined as one extra pseudo-leaf right after
the seed leaf; tombstoned rows have their lower bounds forced to ``+inf``, so
they are never refined and never enter the answer heap.  Answers over
*tree ∪ delta − tombstones* stay bit-identical to a scratch rebuild on the
surviving rows.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.distance import squared_euclidean_batch
from repro.core.errors import SearchError
from repro.core.normalization import znormalize
from repro.core.simd import batch_lower_bound
from repro.index.node import LeafNode
from repro.index.tree import TreeIndex


@dataclass
class SearchStats:
    """Work counters and per-work-item timings of one exact query."""

    num_series: int = 0
    leaves_visited: int = 0
    leaves_pruned_in_queue: int = 0
    nodes_pruned: int = 0
    series_lower_bounds: int = 0
    exact_distances: int = 0
    approximate_time: float = 0.0
    traversal_time: float = 0.0
    leaf_times: list[float] = field(default_factory=list)

    @property
    def refinement_time(self) -> float:
        return float(sum(self.leaf_times))

    @property
    def total_time(self) -> float:
        return self.approximate_time + self.traversal_time + self.refinement_time

    @property
    def pruning_ratio(self) -> float:
        """Fraction of indexed series whose exact distance was never computed."""
        if self.num_series == 0:
            return 0.0
        return 1.0 - self.exact_distances / self.num_series


@dataclass
class SearchResult:
    """Exact k-NN answer: indices, distances (ascending) and work statistics."""

    indices: np.ndarray
    distances: np.ndarray
    stats: SearchStats

    @property
    def nearest_index(self) -> int:
        return int(self.indices[0])

    @property
    def nearest_distance(self) -> float:
        return float(self.distances[0])


def finalize_result(query: np.ndarray, values: np.ndarray, rows: np.ndarray,
                    stats: SearchStats, delta=None) -> SearchResult:
    """Package the winning rows of a search into a :class:`SearchResult`.

    The reported distances come from one final elementwise recomputation over
    the winning rows in ascending-row order.  Refinement-time distance values
    can drift by an ulp depending on how candidates were blocked into BLAS
    kernel calls, so recomputing on a canonical row order makes per-query and
    batched searches return bit-identical results.  Answers are sorted by
    (distance, row), the same tie order as the refinement heap.

    ``delta`` (a :class:`~repro.index.dynamic.DeltaView`) resolves rows at or
    beyond the base collection to buffered delta series; the row-wise
    recomputation is unchanged, so dynamic answers stay bit-identical to a
    scratch rebuild on the union.
    """
    rows = np.sort(np.asarray(rows, dtype=np.int64))
    winners = values[rows] if delta is None else delta.gather(values, rows)
    difference = winners - query
    squared = np.einsum("ij,ij->i", difference, difference)
    order = np.lexsort((rows, squared))
    return SearchResult(indices=rows[order], distances=np.sqrt(squared[order]),
                        stats=stats)


class _KnnHeap:
    """Fixed-capacity max-heap of the k best (distance², index) pairs.

    Entries are kept under the total order (distance², index): on tied
    distances the smaller dataset row wins.  A total order makes the retained
    set independent of the order candidates were offered in, which is what
    lets the batched engine (whose refinement schedule differs) select the
    same k answers.
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: list[tuple[float, int]] = []  # (-distance², -index)

    def offer(self, squared_distance: float, index: int) -> None:
        entry = (-squared_distance, -index)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    @property
    def threshold(self) -> float:
        """Current BSF: the k-th best squared distance (inf until k answers exist)."""
        if len(self._heap) < self.k:
            return np.inf
        return -self._heap[0][0]

    def sorted_items(self) -> list[tuple[float, int]]:
        return sorted((-negative_squared, -negative_index)
                      for negative_squared, negative_index in self._heap)


class ExactSearcher:
    """Answers exact 1-NN and k-NN queries over a built :class:`TreeIndex`.

    Parameters
    ----------
    index:
        A built tree index.
    normalize_queries:
        z-normalize incoming queries (the paper's setting).
    flat_refinement_threshold:
        When the average leaf size falls below this value the tree has
        degenerated into (near-)singleton leaves — a scale artefact of small
        collections where the symbolic words of almost every series differ in
        some top bit — and provides no grouping at all; the searcher then
        filters and refines over the flat per-series directory instead of
        walking leaves one by one.  Both paths compute the same lower bounds
        and return identical exact answers.  When left at ``None``, per-query
        search uses the crossover 1.5 and :meth:`knn_batch` uses the batched
        engine's higher default (its flat path's fixed cost amortizes over
        the batch); an explicit value is honored by both.
    delta_source:
        Optional zero-argument callable returning the current
        :class:`~repro.index.dynamic.DeltaView` of a dynamic index (or
        ``None`` when there are no pending writes).  When set, every query
        answers over *tree ∪ delta − tombstones*: the delta is refined as an
        extra pseudo-leaf and tombstoned rows are masked out of every
        refinement step.
    """

    #: Default flat-refinement crossover of the per-query engine.
    DEFAULT_FLAT_REFINEMENT_THRESHOLD = 1.5

    def __init__(self, index: TreeIndex, normalize_queries: bool = True,
                 flat_refinement_threshold: float | None = None,
                 delta_source=None) -> None:
        if not index.is_built:
            raise SearchError("the index must be built before searching")
        self.index = index
        self.normalize_queries = normalize_queries
        self._delta_source = delta_source
        self._requested_flat_threshold = flat_refinement_threshold
        self.flat_refinement_threshold = (
            self.DEFAULT_FLAT_REFINEMENT_THRESHOLD
            if flat_refinement_threshold is None else flat_refinement_threshold)
        self._batch_searcher = None
        # Hoisted out of the per-leaf refinement loops: the summarization's
        # bins and lower-bound weights are fixed for a given build, and the
        # chained attribute lookups showed up when profiling refinement
        # rounds over many small leaves.  `_refresh_summarization_cache`
        # re-captures them once per query in case the tree was rebuilt in
        # place (fit assigns fresh bins/weights objects).
        self._bins = index.summarization.bins
        self._weights = index.summarization.weights

    def _refresh_summarization_cache(self) -> None:
        summarization = self.index.summarization
        if summarization.bins is not self._bins:
            self._bins = summarization.bins
        if summarization.weights is not self._weights:
            self._weights = summarization.weights

    # ------------------------------------------------------------- public

    def knn(self, query: np.ndarray, k: int = 1) -> SearchResult:
        """Exact k nearest neighbours of ``query`` under the (z-)ED."""
        if k < 1:
            raise SearchError(f"k must be >= 1, got {k}")
        delta = self._delta_source() if self._delta_source is not None else None
        available = self.index.num_series if delta is None else delta.num_surviving
        if k > available:
            raise SearchError(
                f"k={k} exceeds the number of "
                f"{'indexed' if delta is None else 'surviving'} series ({available})"
            )
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self.index.dataset.series_length:
            raise SearchError(
                f"query must be a series of length {self.index.dataset.series_length}"
            )
        if self.normalize_queries:
            query = znormalize(query)

        self._refresh_summarization_cache()
        summarization = self.index.summarization
        query_summary = summarization.transform(query)
        query_word = self._bins.symbols(query_summary)

        stats = SearchStats(num_series=available)
        heap = _KnnHeap(k)

        if self.index.average_leaf_size < self.flat_refinement_threshold:
            # Degenerate tree (typical at reproduction scale when the selected
            # summary components carry little signal and the root fan-out
            # shatters the data into near-singleton leaves): skip the per-leaf
            # machinery and filter-and-refine over the flat series directory.
            self._flat_search(query, query_summary, heap, stats, delta=delta)
        else:
            start = time.perf_counter()
            seed_leaf = self._approximate_descent(query_word, query_summary)
            if seed_leaf is not None:
                self._refine_leaf(query, query_summary, seed_leaf, heap, stats,
                                  record_time=False, delta=delta)
            stats.approximate_time = time.perf_counter() - start

            # The delta is one extra pseudo-leaf, refined right after the seed
            # so its series help tighten the BSF before traversal prunes.
            if delta is not None:
                self._refine_delta(query, query_summary, heap, stats, delta)

            start = time.perf_counter()
            ordered_leaves, ordered_bounds = self._collect_leaves(
                query_summary, heap.threshold, stats, skip_leaf=seed_leaf)
            stats.traversal_time = time.perf_counter() - start

            self._process_queue(query, query_summary, ordered_leaves, ordered_bounds,
                                heap, stats, delta=delta)

        rows = np.array([index for _, index in heap.sorted_items()], dtype=np.int64)
        return finalize_result(query, self.index.dataset.values, rows, stats,
                               delta=delta)

    def nearest_neighbor(self, query: np.ndarray) -> SearchResult:
        """Exact 1-NN of ``query`` (convenience wrapper around :meth:`knn`)."""
        return self.knn(query, k=1)

    def approximate_knn(self, query: np.ndarray, k: int = 1,
                        max_refined_series: int = 256) -> SearchResult:
        """Approximate k-NN: refine only the most promising candidates.

        The paper lists approximate search with SFA as future work; this method
        implements the natural variant: the query descends to its own leaf (the
        same first step as exact search), and then only the
        ``max_refined_series`` candidates with the smallest per-series lower
        bounds are refined with true distances.  The answer is not guaranteed
        to be exact, but the candidates are chosen by the same lower bounds
        that drive exact pruning, so recall is high when the summarization is
        tight.  Increasing ``max_refined_series`` trades time for recall and
        converges to the exact answer at ``max_refined_series >= num_series``.
        """
        if k < 1:
            raise SearchError(f"k must be >= 1, got {k}")
        if max_refined_series < k:
            raise SearchError("max_refined_series must be at least k")
        if self._delta_source is not None and self._delta_source() is not None:
            raise SearchError(
                "approximate_knn does not answer over a pending dynamic delta; "
                "compact() the index first"
            )
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self.index.dataset.series_length:
            raise SearchError(
                f"query must be a series of length {self.index.dataset.series_length}"
            )
        if self.normalize_queries:
            query = znormalize(query)

        summarization = self.index.summarization
        query_summary = summarization.transform(query)

        stats = SearchStats(num_series=self.index.num_series)
        heap = _KnnHeap(k)

        start = time.perf_counter()
        bounds, rows = self.index.all_series_lower_bounds(query_summary)
        budget = min(max_refined_series, bounds.shape[0])
        candidates = np.argpartition(bounds, budget - 1)[:budget]
        candidates = candidates[np.argsort(bounds[candidates])]
        stats.series_lower_bounds += bounds.shape[0]
        stats.traversal_time = time.perf_counter() - start

        start = time.perf_counter()
        candidate_rows = rows[candidates]
        squared = squared_euclidean_batch(query, self.index.dataset.values[candidate_rows])
        stats.exact_distances += candidate_rows.shape[0]
        for row, distance in zip(candidate_rows, squared):
            heap.offer(float(distance), int(row))
        stats.leaf_times.append(time.perf_counter() - start)

        rows_ = np.array([index for _, index in heap.sorted_items()], dtype=np.int64)
        return finalize_result(query, self.index.dataset.values, rows_, stats)

    def knn_batch(self, queries: np.ndarray, k: int = 1,
                  num_workers: int = 1) -> list[SearchResult]:
        """Exact k-NN of a batch of queries (one per row), answered together.

        Delegates to the :class:`~repro.index.batch_search.BatchSearcher`,
        which vectorizes lower-bound and distance kernels across the whole
        workload instead of looping over :meth:`knn`; the answers are the same
        exact k-NN sets either way.  ``num_workers > 1`` shards the batch over
        a thread pool (the underlying BLAS kernels release the GIL).
        """
        from repro.index.batch_search import BatchSearcher

        if self._batch_searcher is None:
            # Unless the caller pinned a crossover explicitly, the batched
            # engine keeps its own (higher) flat-refinement default: the flat
            # path's fixed cost is amortized over the batch, so it pays off
            # on trees the per-query searcher still walks.
            options = {}
            if self._requested_flat_threshold is not None:
                options["flat_refinement_threshold"] = self._requested_flat_threshold
            self._batch_searcher = BatchSearcher(
                self.index, normalize_queries=self.normalize_queries,
                delta_source=self._delta_source, **options)
        return self._batch_searcher.knn_batch(queries, k=k, num_workers=num_workers)

    # ------------------------------------------------------ approximate NN

    def _approximate_descent(self, query_word: np.ndarray,
                             query_summary: np.ndarray) -> LeafNode | None:
        """Descend towards the leaf whose region contains the query word.

        If no root child matches the query's 1-bit prefix, the leaf with the
        smallest lower bound (from the leaf directory) is used instead.
        """
        return self.index.approximate_leaf(query_word, query_summary)

    # ------------------------------------------------------ flat refinement

    def _flat_search(self, query: np.ndarray, query_summary: np.ndarray, heap: _KnnHeap,
                     stats: SearchStats, delta=None, block_size: int = 128) -> None:
        """Filter-and-refine over the flat per-series directory.

        The per-series lower bounds are computed in one vectorized call,
        candidates are visited in increasing lower-bound order, and true
        distances are evaluated block-wise with the best-so-far refreshed
        between blocks — the same GEMINI logic as the leaf-wise path, without
        per-leaf overhead.  Per-block times are recorded as the parallel work
        items for the virtual-core simulation.

        A dynamic ``delta`` appends its buffered series to the directory for
        this query (same kernel, global row ids) and masks tombstoned rows to
        ``+inf`` so they are never refined.
        """
        start = time.perf_counter()
        bounds, rows = self.index.all_series_lower_bounds(query_summary)
        if delta is not None:
            if delta.base_alive is not None:
                # Fresh kernel output per call, so in-place masking is safe.
                bounds[~delta.base_alive[rows]] = np.inf
            if delta.rows.size:
                delta_bounds = batch_lower_bound(query_summary, delta.lower,
                                                 delta.upper, self._weights)
                delta_bounds[~delta.alive] = np.inf
                bounds = np.concatenate([bounds, delta_bounds])
                rows = np.concatenate([rows, delta.rows])
        order = np.argsort(bounds)
        stats.series_lower_bounds += bounds.shape[0]
        stats.traversal_time = time.perf_counter() - start

        values = self.index.dataset.values
        for block_start in range(0, order.shape[0], block_size):
            threshold = heap.threshold
            block = order[block_start:block_start + block_size]
            block = block[bounds[block] < threshold]
            if block.size == 0:
                if np.isfinite(threshold):
                    break
                continue
            block_timer = time.perf_counter()
            block_rows = rows[block]
            block_values = (values[block_rows] if delta is None
                            else delta.gather(values, block_rows))
            squared = squared_euclidean_batch(query, block_values)
            stats.exact_distances += block.size
            for row, distance in zip(block_rows, squared):
                heap.offer(float(distance), int(row))
            stats.leaf_times.append(time.perf_counter() - block_timer)

    # -------------------------------------------------------- leaf queueing

    def _collect_leaves(self, query_summary: np.ndarray, best_so_far: float,
                        stats: SearchStats, skip_leaf: LeafNode | None
                        ) -> tuple[list[LeafNode], np.ndarray]:
        """Order every surviving leaf by its lower bound to the query.

        All leaf lower bounds come from one vectorized kernel call over the
        index's leaf directory; surviving leaves are returned sorted by lower
        bound, which plays the role of MESSI's priority queues in this
        sequential implementation.
        """
        bounds = self.index.leaf_lower_bounds(query_summary)
        surviving = np.flatnonzero(bounds < best_so_far)
        stats.nodes_pruned += len(self.index.leaf_nodes) - surviving.size
        if skip_leaf is not None:
            surviving = surviving[surviving != self.index.leaf_position(skip_leaf)]
        order = surviving[np.argsort(bounds[surviving])]
        leaves = self.index.leaf_nodes
        ordered_leaves = [leaves[position] for position in order]
        return ordered_leaves, bounds[order]

    # ----------------------------------------------------------- refinement

    def _process_queue(self, query: np.ndarray, query_summary: np.ndarray,
                       ordered_leaves: list[LeafNode], ordered_bounds: np.ndarray,
                       heap: _KnnHeap, stats: SearchStats, delta=None) -> None:
        """Visit leaves in lower-bound order and refine them in small groups.

        Consecutive small leaves (frequent at reproduction scale, where root
        fan-out can shatter a dataset into single-series leaves) are refined
        together so that each group costs one batched kernel call rather than
        one call per leaf; the best-so-far is refreshed between groups, which
        preserves MESSI's early-abandoning behaviour.
        """
        group_target = max(self.index.leaf_size, 64)
        position = 0
        total = len(ordered_leaves)
        while position < total:
            threshold = heap.threshold
            if ordered_bounds[position] >= threshold:
                # Leaves are ordered by lower bound, so everything that remains
                # is at least as far away: abandon it wholesale.
                stats.leaves_pruned_in_queue += total - position
                return
            group = [ordered_leaves[position]]
            group_size = group[0].size
            position += 1
            while (position < total and group_size < group_target
                   and ordered_bounds[position] < threshold):
                group.append(ordered_leaves[position])
                group_size += ordered_leaves[position].size
                position += 1
            if len(group) == 1:
                self._refine_leaf(query, query_summary, group[0], heap, stats,
                                  record_time=True, delta=delta)
            else:
                self._refine_group(query, query_summary, group, heap, stats,
                                   delta=delta)

    def _refine_group(self, query: np.ndarray, query_summary: np.ndarray,
                      group: list[LeafNode], heap: _KnnHeap, stats: SearchStats,
                      delta=None, block_size: int = 32) -> None:
        """Refine several leaves with one concatenated batched kernel call."""
        start = time.perf_counter()
        stats.leaves_visited += len(group)
        threshold = heap.threshold

        lower = np.vstack([leaf.lower for leaf in group])
        upper = np.vstack([leaf.upper for leaf in group])
        indices = np.concatenate([leaf.indices for leaf in group])
        series_bounds = batch_lower_bound(query_summary, lower, upper, self._weights)
        if delta is not None and delta.base_alive is not None:
            series_bounds[~delta.base_alive[indices]] = np.inf
        stats.series_lower_bounds += indices.shape[0]
        candidates = np.flatnonzero(series_bounds < threshold)
        if candidates.size:
            candidates = candidates[np.argsort(series_bounds[candidates])]
            values = self.index.dataset.values
            for block_start in range(0, candidates.size, block_size):
                threshold = heap.threshold
                block = candidates[block_start:block_start + block_size]
                block = block[series_bounds[block] < threshold]
                if block.size == 0:
                    break
                rows = indices[block]
                squared = squared_euclidean_batch(query, values[rows])
                stats.exact_distances += block.size
                for row, distance in zip(rows, squared):
                    heap.offer(float(distance), int(row))
        stats.leaf_times.append(time.perf_counter() - start)

    def _refine_delta(self, query: np.ndarray, query_summary: np.ndarray,
                      heap: _KnnHeap, stats: SearchStats, delta,
                      block_size: int = 32) -> None:
        """Refine the dynamic delta buffer as one extra pseudo-leaf.

        The buffered series are filtered with the same per-series lower-bound
        kernel as leaf series — GEMINI pruning applies to the delta too — and
        tombstoned entries are masked to ``+inf`` so they are never refined.
        """
        if delta.rows.size == 0:
            return
        start = time.perf_counter()
        bounds = batch_lower_bound(query_summary, delta.lower, delta.upper,
                                   self._weights)
        bounds[~delta.alive] = np.inf
        stats.series_lower_bounds += delta.rows.shape[0]
        threshold = heap.threshold
        candidates = np.flatnonzero(bounds < threshold)
        if candidates.size:
            candidates = candidates[np.argsort(bounds[candidates])]
            for block_start in range(0, candidates.size, block_size):
                threshold = heap.threshold
                block = candidates[block_start:block_start + block_size]
                block = block[bounds[block] < threshold]
                if block.size == 0:
                    break
                rows = delta.rows[block]
                squared = squared_euclidean_batch(query, delta.values[block])
                stats.exact_distances += block.size
                for row, distance in zip(rows, squared):
                    heap.offer(float(distance), int(row))
        stats.leaf_times.append(time.perf_counter() - start)

    def _refine_leaf(self, query: np.ndarray, query_summary: np.ndarray, leaf: LeafNode,
                     heap: _KnnHeap, stats: SearchStats, record_time: bool,
                     delta=None, block_size: int = 32) -> None:
        """Filter a leaf's series by per-series lower bound, then refine exactly.

        Surviving candidates are processed in blocks: each block's true
        distances come from one batched kernel call (the NumPy stand-in for the
        SIMD distance kernel), and the best-so-far is refreshed between blocks
        so later blocks can be abandoned wholesale — the same blend of
        vectorization and early abandoning as Algorithm 3.
        """
        start = time.perf_counter()
        stats.leaves_visited += 1
        threshold = heap.threshold

        series_bounds = batch_lower_bound(query_summary, leaf.lower, leaf.upper,
                                          self._weights)
        if delta is not None and delta.base_alive is not None:
            series_bounds[~delta.base_alive[leaf.indices]] = np.inf
        stats.series_lower_bounds += leaf.size
        candidates = np.flatnonzero(series_bounds < threshold)
        if candidates.size:
            # Visit the most promising candidates first so the BSF tightens fast.
            candidates = candidates[np.argsort(series_bounds[candidates])]
            values = self.index.dataset.values
            for block_start in range(0, candidates.size, block_size):
                threshold = heap.threshold
                block = candidates[block_start:block_start + block_size]
                block = block[series_bounds[block] < threshold]
                if block.size == 0:
                    break
                rows = leaf.indices[block]
                squared = squared_euclidean_batch(query, values[rows])
                stats.exact_distances += block.size
                for row, distance in zip(rows, squared):
                    heap.offer(float(distance), int(row))
        elapsed = time.perf_counter() - start
        if record_time:
            stats.leaf_times.append(elapsed)
