"""Write-ahead log: durable inserts and deletes for :class:`DynamicIndex`.

A snapshot makes the *compacted* state durable; everything buffered after the
last ``save`` — every acked ``insert``/``insert_batch``/``delete`` — lives
only in process memory and dies with the process.  The write-ahead log closes
that gap the way every production index service does: each write appends one
length-prefixed, checksummed record to an append-only segment file *before*
the in-memory state mutates and the call acks.  After a crash,
:meth:`~repro.index.dynamic.DynamicIndex.recover` loads the last snapshot and
replays the records it does not already cover, reproducing the lost index
**bit-identically** — inserts are logged post-normalization as raw float64
rows, so replay appends the exact bytes the original call buffered, and
compaction is deterministic, so replaying an ``OP_COMPACT`` record rebuilds
the very tree the crashed process swapped in.

Log format
----------
A log is a directory of segment files ``wal-000001.log, wal-000002.log, ...``
(rotation bounds single-file size; compaction and checkpoints rotate).  Each
segment starts with a 16-byte header (magic, format version, segment index)
followed by records::

    <Q lsn> <B op> <I payload_len> <I crc32>  payload...

LSNs increase by one across the whole log, never reset — a snapshot records
the last LSN it covers (``wal.applied_lsn`` in the manifest) and recovery
replays strictly newer records.  The CRC covers (lsn, op, payload), so a
flipped bit anywhere in a record is detected as a typed
:class:`~repro.core.errors.CorruptionError` naming the file and offset.

Torn tails: an *incomplete* record at the end of the **last** segment is the
signature of a crash mid-append — it is silently truncated on the next open
(the write never acked, so nothing is lost).  A *complete* record with a bad
CRC, or any malformed record in a non-last segment, is corruption and raises.

Fsync policies
--------------
``always``
    fsync after every record — an acked write survives power loss.
``batch`` (default)
    fsync when unsynced bytes exceed ``batch_bytes`` (and on
    :meth:`~WriteAheadLog.sync`/rotation/close) — an acked write survives a
    *process* crash (the bytes are in the OS page cache) and bounds
    power-loss exposure to one batch.
``off``
    never fsync — still crash-consistent (the tail truncation rule applies),
    but durability is whatever the OS flushes.

``OP_COMPACT`` records are always fsynced regardless of policy: they change
the meaning of every later row id, so replay must never see the ids without
the compact that renumbered them.

All durable effects go through :mod:`repro.core.fsio`, so the reliability
harness can crash an append at any enumerated point and prove the
old-or-new/acked-survives contract.
"""

from __future__ import annotations

import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core import fsio
from repro.core.errors import (
    CorruptionError,
    InvalidParameterError,
    StorageFullError,
    WalError,
)
from repro.obs.metrics import get_registry

#: First bytes of every segment file.
WAL_MAGIC = b"REPROWAL"

#: Segment format version (bump on incompatible record-layout changes).
WAL_VERSION = 1

#: Supported fsync policies (see the module docstring).
FSYNC_POLICIES = ("always", "batch", "off")

#: Record operation codes.
OP_INSERT = 1
OP_DELETE = 2
OP_COMPACT = 3

_REGISTRY = get_registry()
_WAL_APPENDS = _REGISTRY.counter(
    "repro_wal_appends_total", "WAL records appended, by operation.",
    labelnames=("op",))
_WAL_APPEND_BYTES = _REGISTRY.counter(
    "repro_wal_append_bytes_total", "Bytes appended to WAL segments.")
_WAL_FSYNCS = _REGISTRY.counter(
    "repro_wal_fsyncs_total", "fsync calls issued on WAL segments.")
_WAL_FSYNC_SECONDS = _REGISTRY.histogram(
    "repro_wal_fsync_seconds", "Latency of WAL segment fsync calls.")

#: Metric label per record op code.
_OP_LABELS = {OP_INSERT: "insert", OP_DELETE: "delete", OP_COMPACT: "compact"}

_FILE_HEADER = struct.Struct("<8sII")   # magic, version, segment index
_RECORD_HEADER = struct.Struct("<QBII")  # lsn, op, payload length, crc32
_INSERT_HEADER = struct.Struct("<II")    # rows, series length
_DELETE_PAYLOAD = struct.Struct("<q")    # global row id
_SEGMENT_GLOB = "wal-*.log"


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record.

    ``values`` is the logged (already normalized) float64 matrix of an
    insert; ``row`` the global id of a delete; compact records carry nothing.
    """

    lsn: int
    op: int
    values: "np.ndarray | None" = None
    row: "int | None" = None


def _record_crc(lsn: int, op: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(struct.pack("<QB", lsn, op))) & 0xFFFFFFFF


def _segment_paths(directory: Path) -> "list[Path]":
    return sorted(directory.glob(_SEGMENT_GLOB))


def _read_segment(path: Path, is_last: bool):
    """Parse one segment: ``(raw records, valid_end, torn)``.

    ``raw records`` are ``(lsn, op, payload)`` triples; ``valid_end`` is the
    byte offset after the last complete record (0 when even the file header
    is incomplete); ``torn`` flags an incomplete tail that the next
    append-open should truncate.  Only the *last* segment may be torn —
    earlier segments were sealed by rotation, so damage there is corruption.
    """
    data = path.read_bytes()
    if len(data) < _FILE_HEADER.size:
        if is_last:
            return [], 0, True
        raise CorruptionError(
            f"WAL segment {path} is truncated inside its file header"
        )
    magic, version, _segment = _FILE_HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise CorruptionError(f"{path} is not a WAL segment (bad magic)")
    if version > WAL_VERSION:
        raise WalError(
            f"WAL segment {path} uses format version {version}, but this "
            f"library only supports versions up to {WAL_VERSION}"
        )
    records = []
    offset = _FILE_HEADER.size
    total = len(data)
    while offset < total:
        if offset + _RECORD_HEADER.size > total:
            if is_last:
                return records, offset, True
            raise CorruptionError(
                f"WAL segment {path} ends mid-record-header at offset {offset}"
            )
        lsn, op, length, crc = _RECORD_HEADER.unpack_from(data, offset)
        start = offset + _RECORD_HEADER.size
        end = start + length
        if end > total:
            if is_last:
                return records, offset, True
            raise CorruptionError(
                f"WAL segment {path} ends mid-record (lsn {lsn}) at "
                f"offset {offset}"
            )
        payload = data[start:end]
        if _record_crc(lsn, op, payload) != crc:
            raise CorruptionError(
                f"WAL record in {path} at offset {offset} (lsn {lsn}) fails "
                "its checksum; the log is corrupt"
            )
        records.append((lsn, op, payload))
        offset = end
    return records, offset, False


def _decode(path: Path, lsn: int, op: int, payload: bytes) -> WalRecord:
    if op == OP_INSERT:
        if len(payload) < _INSERT_HEADER.size:
            raise CorruptionError(
                f"WAL insert record lsn {lsn} in {path} has a short payload"
            )
        rows, series_length = _INSERT_HEADER.unpack_from(payload, 0)
        expected = _INSERT_HEADER.size + rows * series_length * 8
        if len(payload) != expected:
            raise CorruptionError(
                f"WAL insert record lsn {lsn} in {path} declares "
                f"{rows}x{series_length} values but carries "
                f"{len(payload) - _INSERT_HEADER.size} payload bytes"
            )
        values = np.frombuffer(payload, dtype="<f8",
                               offset=_INSERT_HEADER.size).reshape(
                                   rows, series_length).copy()
        return WalRecord(lsn=lsn, op=op, values=values)
    if op == OP_DELETE:
        if len(payload) != _DELETE_PAYLOAD.size:
            raise CorruptionError(
                f"WAL delete record lsn {lsn} in {path} has a malformed payload"
            )
        return WalRecord(lsn=lsn, op=op, row=_DELETE_PAYLOAD.unpack(payload)[0])
    if op == OP_COMPACT:
        return WalRecord(lsn=lsn, op=op)
    raise CorruptionError(f"WAL record lsn {lsn} in {path} has unknown op {op}")


def read_records(directory: "str | Path", after_lsn: int = 0) -> "list[WalRecord]":
    """Decode every record with ``lsn > after_lsn``, in LSN order.

    Torn tails of the last segment are skipped (never acked); LSNs must be
    strictly increasing across segments or the log is corrupt.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise WalError(f"{directory} is not a write-ahead-log directory")
    segments = _segment_paths(directory)
    out: "list[WalRecord]" = []
    previous = None
    for position, segment in enumerate(segments):
        raw, _end, _torn = _read_segment(segment,
                                         is_last=position == len(segments) - 1)
        for lsn, op, payload in raw:
            if previous is not None and lsn <= previous:
                raise CorruptionError(
                    f"WAL {directory} is out of order: lsn {lsn} in "
                    f"{segment.name} follows lsn {previous}"
                )
            previous = lsn
            if lsn > after_lsn:
                out.append(_decode(segment, lsn, op, payload))
    return out


class WriteAheadLog:
    """An append-only, checksummed, segmented log of index writes.

    Opening scans the existing segments (if any) to find the last LSN and
    truncates a torn tail record left by a crash mid-append.  With
    ``expect_empty=True`` (how :class:`DynamicIndex` attaches a log to a
    *live* index) the constructor refuses a log that already holds records —
    those records describe writes the in-memory index does not have, and
    appending past them would corrupt recovery; replay them first with
    :meth:`~repro.index.dynamic.DynamicIndex.recover`.

    All methods are thread-safe (one internal lock); callers that need
    write-ahead ordering against their own state must hold their write lock
    around append + mutate, which :class:`DynamicIndex` does.
    """

    def __init__(self, directory: "str | Path", fsync: str = "batch", *,
                 batch_bytes: int = 1 << 20,
                 expect_empty: bool = False) -> None:
        if fsync not in FSYNC_POLICIES:
            raise InvalidParameterError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if batch_bytes <= 0:
            raise InvalidParameterError(
                f"batch_bytes must be positive, got {batch_bytes}")
        self.directory = Path(directory)
        self.fsync = fsync
        self._batch_bytes = int(batch_bytes)
        self._lock = threading.RLock()
        self._unsynced = 0
        self._last_lsn = 0
        # Records appended since the last checkpoint — the "is the WAL
        # falling behind" gauge.  Checkpoints unlink covered segments, so
        # scanning whatever segments exist at open counts exactly the
        # uncheckpointed records.
        self._records_pending = 0
        fsio.mkdir(self.directory)
        segments = _segment_paths(self.directory)
        if not segments:
            self._segment_index = 1
            self._handle = self._create_segment(1)
            return
        for segment in segments[:-1]:
            raw, _end, _torn = _read_segment(segment, is_last=False)
            if raw:
                self._last_lsn = raw[-1][0]
            self._records_pending += len(raw)
        tail = segments[-1]
        raw, valid_end, torn = _read_segment(tail, is_last=True)
        if raw:
            self._last_lsn = raw[-1][0]
        self._records_pending += len(raw)
        if expect_empty and self._last_lsn:
            raise WalError(
                f"write-ahead log {self.directory} already holds records up "
                f"to lsn {self._last_lsn}; replay it over the last snapshot "
                "with DynamicIndex.recover before attaching a live index"
            )
        self._segment_index = int(tail.stem.split("-")[-1])
        handle = open(tail, "r+b")
        if valid_end < _FILE_HEADER.size:
            # Crash while creating the segment itself: rewrite the header.
            fsio.truncate_handle(handle, 0)
            fsio.append_bytes(handle, _FILE_HEADER.pack(
                WAL_MAGIC, WAL_VERSION, self._segment_index))
            fsio.fsync_handle(handle)
        elif torn:
            fsio.truncate_handle(handle, valid_end)
            fsio.fsync_handle(handle)
        handle.seek(0, 2)
        self._handle = handle

    # ------------------------------------------------------------- appending

    @property
    def last_lsn(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._last_lsn

    @property
    def records_pending(self) -> int:
        """Records appended since the last checkpoint (the WAL's depth).

        This is how far recovery would have to replay — the number an
        operator watches to know compaction + snapshotting are keeping up
        with the write rate.
        """
        return self._records_pending

    def append_insert(self, values: np.ndarray) -> int:
        """Log a batch insert (normalized float64 rows); returns its LSN."""
        matrix = np.ascontiguousarray(values, dtype="<f8")
        if matrix.ndim != 2:
            raise WalError(
                f"append_insert expects a 2-D matrix, got shape {matrix.shape}")
        payload = _INSERT_HEADER.pack(matrix.shape[0],
                                      matrix.shape[1]) + matrix.tobytes()
        return self._append(OP_INSERT, payload)

    def append_delete(self, row: int) -> int:
        """Log a tombstone for one global row id; returns its LSN."""
        return self._append(OP_DELETE, _DELETE_PAYLOAD.pack(int(row)))

    def append_compact(self) -> int:
        """Log a compaction barrier (always fsynced; renumbers later ids)."""
        return self._append(OP_COMPACT, b"", force_sync=True)

    def _append(self, op: int, payload: bytes, force_sync: bool = False) -> int:
        with self._lock:
            if self._handle is None:
                raise WalError("write-ahead log is closed")
            lsn = self._last_lsn + 1
            record = _RECORD_HEADER.pack(
                lsn, op, len(payload), _record_crc(lsn, op, payload)) + payload
            start = self._handle.tell()
            try:
                fsio.append_bytes(self._handle, record)
            except StorageFullError:
                # A full volume can land a *short* write.  Truncate back to
                # the pre-append offset so the tail stays cleanly scannable
                # right now, not just after the next open's torn-tail pass.
                self._rewind_failed_append(start)
                raise
            self._unsynced += len(record)
            if (force_sync or self.fsync == "always"
                    or (self.fsync == "batch"
                        and self._unsynced >= self._batch_bytes)):
                try:
                    self._timed_fsync()
                except StorageFullError:
                    # The record is in the file but was never acked; drop it
                    # so on-disk state stays exactly old-or-new.
                    self._unsynced -= len(record)
                    self._rewind_failed_append(start)
                    raise
                self._unsynced = 0
            # Bump only after the bytes are in the file: if the append (or a
            # simulated crash in the harness) raised above, neither the log
            # nor the caller's state advanced — write-ahead holds.
            self._last_lsn = lsn
            self._records_pending += 1
            _WAL_APPENDS.labels(op=_OP_LABELS[op]).inc()
            _WAL_APPEND_BYTES.inc(len(record))
            return lsn

    def _rewind_failed_append(self, start: int) -> None:
        """Drop a possibly-short append so the tail has no torn record.

        Best effort: shrinking a file needs no free space, but if even the
        truncate fails, the next open's torn-tail truncation recovers —
        the record never acked, so nothing is lost either way.
        """
        try:
            fsio.truncate_handle(self._handle, start)
            self._handle.seek(start)
        except (OSError, StorageFullError):
            try:
                self._handle.seek(0, 2)
            except OSError:
                pass

    def _timed_fsync(self) -> None:
        """fsync the open segment, feeding the fsync count/latency metrics.

        A simulated crash in the reliability harness raises *inside*
        ``fsync_handle``; such a failed fsync is not counted — nothing
        durable happened.
        """
        fsync_start = time.perf_counter()
        fsio.fsync_handle(self._handle)
        _WAL_FSYNCS.inc()
        _WAL_FSYNC_SECONDS.observe(time.perf_counter() - fsync_start)

    def sync(self) -> None:
        """Force unsynced bytes to stable storage (a durability barrier)."""
        with self._lock:
            if self._handle is not None and self._unsynced:
                self._timed_fsync()
                self._unsynced = 0

    # -------------------------------------------------- lifecycle management

    def _create_segment(self, index: int):
        path = self.directory / f"wal-{index:06d}.log"
        fsio.write_bytes(path, _FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION, index))
        fsio.fsync_path(path)
        fsio.fsync_dir(self.directory)
        handle = open(path, "r+b")
        handle.seek(0, 2)
        return handle

    def rotate(self) -> None:
        """Seal the current segment and append to a fresh one.

        Old segments are retained (recovery still needs them until the next
        durable snapshot); :class:`DynamicIndex` rotates on compaction so a
        segment never spans a generation swap.
        """
        with self._lock:
            if self._handle is None:
                raise WalError("write-ahead log is closed")
            fsio.fsync_handle(self._handle)
            self._handle.close()
            self._segment_index += 1
            self._handle = self._create_segment(self._segment_index)
            self._unsynced = 0

    def checkpoint(self) -> None:
        """Drop records a durable snapshot now covers.

        Starts a fresh segment (LSNs keep counting) and unlinks every older
        one.  A crash between the two steps is harmless: leftover records
        have ``lsn <= applied_lsn`` and replay skips them.
        """
        with self._lock:
            if self._handle is None:
                raise WalError("write-ahead log is closed")
            previous = _segment_paths(self.directory)
            self._handle.close()
            self._segment_index += 1
            self._handle = self._create_segment(self._segment_index)
            self._unsynced = 0
            for segment in previous:
                fsio.unlink(segment)
            fsio.fsync_dir(self.directory)
            self._records_pending = 0

    def total_bytes(self) -> int:
        """Bytes currently held across all segments (the log's footprint)."""
        return sum(segment.stat().st_size
                   for segment in _segment_paths(self.directory))

    def close(self) -> None:
        """Flush (under always/batch policies) and close the open segment."""
        with self._lock:
            if self._handle is None:
                return
            if self._unsynced and self.fsync != "off":
                fsio.fsync_handle(self._handle)
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
