"""MESSI: the state-of-the-art iSAX-based in-memory index (the paper's baseline).

``MessiIndex`` is the shared :class:`~repro.index.tree.TreeIndex` instantiated
with the SAX/iSAX summarization, exposing a small convenience API (``build``,
``knn``, ``nearest_neighbor``) used by the benchmarks and examples.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import IndexError_
from repro.core.series import Dataset
from repro.index.search import ExactSearcher, SearchResult
from repro.index.tree import TreeIndex
from repro.transforms.sax import SAX


class MessiIndex:
    """In-memory exact similarity-search index over iSAX words.

    Parameters
    ----------
    word_length:
        Number of PAA segments per word (16 in the paper).
    alphabet_size:
        Symbol cardinality (256 in the paper).
    leaf_size:
        Maximum series per leaf before splitting.
    split_policy:
        Node-splitting heuristic, see :class:`~repro.index.tree.TreeIndex`.
    num_workers:
        Worker threads used by both construction stages (``None`` = the
        ``REPRO_NUM_WORKERS`` process default); the built index is
        bit-identical for every worker count.
    builder:
        Subtree builder, see :class:`~repro.index.tree.TreeIndex`
        (``"vectorized"`` default, ``"recursive"`` reference).
    """

    summarization_name = "SAX"

    def __init__(self, word_length: int = 16, alphabet_size: int = 256,
                 leaf_size: int = 100, split_policy: str = "balanced",
                 num_workers: "int | None" = None,
                 builder: str = "vectorized") -> None:
        self.summarization = SAX(word_length=word_length, alphabet_size=alphabet_size)
        self.tree = TreeIndex(self.summarization, leaf_size=leaf_size,
                              split_policy=split_policy, num_workers=num_workers,
                              builder=builder)
        self._searcher: ExactSearcher | None = None

    def build(self, dataset: "Dataset | np.ndarray",
              num_workers: "int | None" = None) -> "MessiIndex":
        """Build the index over a dataset (fits iSAX and grows the tree).

        ``num_workers`` overrides the constructor's worker count for this
        build only; answers are bit-identical for every worker count.
        """
        self.tree.build(dataset if isinstance(dataset, Dataset) else Dataset(dataset),
                        num_workers=num_workers)
        self._searcher = ExactSearcher(self.tree)
        return self

    @property
    def is_built(self) -> bool:
        return self._searcher is not None

    def _require_built(self) -> ExactSearcher:
        if self._searcher is None:
            raise IndexError_(
                "MessiIndex has not been built; call build(dataset) or "
                "MessiIndex.load(path) before querying"
            )
        return self._searcher

    def save(self, path) -> "MessiIndex":
        """Write the built index as a versioned snapshot directory.

        See :mod:`repro.index.persistence`.  Returns ``self`` so saving can be
        chained after :meth:`build`.
        """
        from repro.index.persistence import save_index

        self._require_built()
        save_index(self, path)
        return self

    @classmethod
    def load(cls, path, mmap: bool = True, verify: str = "lazy") -> "MessiIndex":
        """Load a MESSI snapshot; ``mmap=True`` maps the data without copying.

        The loaded index answers ``knn`` / ``knn_batch`` bit-identically to
        the index that was saved.  Loading a snapshot of a different index
        type raises :class:`~repro.core.errors.IndexError_`.  ``verify``
        controls checksum verification of the payload arrays (``"eager"``,
        ``"lazy"`` or ``"off"``; see :func:`repro.index.persistence.load_tree`).
        """
        from repro.index.persistence import load_index

        return load_index(path, mmap=mmap, expected_type="messi", verify=verify)

    def dynamic(self, **options) -> "DynamicIndex":
        """Wrap this built index in a :class:`~repro.index.dynamic.DynamicIndex`.

        The returned index serves *tree ∪ delta − tombstones* with buffered
        ``insert``/``delete`` and ``compact()``; ``options`` are forwarded to
        its constructor (``compact_threshold``, ``auto_compact``, ...).
        """
        from repro.index.dynamic import DynamicIndex

        self._require_built()
        return DynamicIndex(self, **options)

    def knn(self, query: np.ndarray, k: int = 1,
            num_workers: "int | None" = None,
            timeout_s: "float | None" = None,
            trace=None) -> SearchResult:
        """Exact k nearest neighbours of ``query``.

        ``num_workers`` threads drain the query's surviving-leaf queue
        against a shared best-so-far (``None`` = the ``REPRO_NUM_WORKERS``
        process default); answers are bit-identical for every worker count.
        ``timeout_s`` bounds the search: on expiry the best-so-far is
        finalized with ``stats.timed_out=True``; ``trace`` records the
        query's phase spans without changing its answer (see
        :meth:`repro.index.search.ExactSearcher.knn`).
        """
        return self._require_built().knn(query, k=k, num_workers=num_workers,
                                         timeout_s=timeout_s, trace=trace)

    def nearest_neighbor(self, query: np.ndarray,
                         num_workers: "int | None" = None,
                         timeout_s: "float | None" = None) -> SearchResult:
        """Exact nearest neighbour of ``query``.

        ``timeout_s`` bounds the search like :meth:`knn` does: on expiry the
        best-so-far is finalized with ``stats.timed_out=True``.
        """
        return self._require_built().nearest_neighbor(query,
                                                      num_workers=num_workers,
                                                      timeout_s=timeout_s)

    def approximate_knn(self, query: np.ndarray, k: int = 1,
                        max_refined_series: int = 256) -> SearchResult:
        """Approximate k nearest neighbours (refine only the best candidates).

        See :meth:`repro.index.search.ExactSearcher.approximate_knn`.
        """
        return self._require_built().approximate_knn(query, k=k,
                                                     max_refined_series=max_refined_series)

    def knn_batch(self, queries: np.ndarray, k: int = 1,
                  num_workers: "int | None" = None,
                  timeout_s: "float | None" = None) -> "list[SearchResult]":
        """Exact k-NN for a batch of queries, answered by the batched engine.

        See :class:`~repro.index.batch_search.BatchSearcher`; ``num_workers``
        shards the batch over a thread pool, falling back to intra-query
        workers when the batch is smaller than the pool.  ``timeout_s``
        bounds the whole batch (still-active queries finalize their
        best-so-far with ``stats.timed_out=True``).
        """
        return self._require_built().knn_batch(queries, k=k,
                                               num_workers=num_workers,
                                               timeout_s=timeout_s)

    @property
    def timings(self):
        """Construction timings (see :class:`~repro.index.tree.BuildTimings`)."""
        return self.tree.timings
