"""Index statistics: tree structure metrics (Figure 8) and search-stats merging."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.errors import IndexError_
from repro.index.tree import TreeIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (search imports stats lazily)
    from repro.index.search import SearchStats


def merge_search_stats(into: "SearchStats",
                       parts: "Iterable[SearchStats]") -> "SearchStats":
    """Merge per-worker search stats into one deterministic query report.

    The intra-query parallel engine gives every worker thread its own
    :class:`~repro.index.search.SearchStats` so the hot refinement loop never
    contends on shared counters; this merge folds them into the query-level
    report afterwards.  ``parts`` must be ordered by worker index (as
    :meth:`~repro.parallel.pool.WorkerPool.map_shared` returns them), never
    by completion time, so the merge *procedure* is deterministic.  The
    merged values themselves still reflect one concurrent run — which worker
    claimed which item, and how much work BSF pruning saved, depend on
    thread timing — which is why the virtual-core simulator is only fed
    stats from 1-worker searches.  Counters sum; per-work-item times
    concatenate; the sequential phases (``approximate_time``,
    ``traversal_time``) and the whole-query ``wall_time_s`` belong to
    ``into`` and are left untouched — a worker's lifetime is contained in
    the query's wall time, not added to it.
    """
    for part in parts:
        into.leaves_visited += part.leaves_visited
        into.leaves_pruned_in_queue += part.leaves_pruned_in_queue
        into.nodes_pruned += part.nodes_pruned
        into.series_lower_bounds += part.series_lower_bounds
        into.exact_distances += part.exact_distances
        into.leaf_times.extend(part.leaf_times)
        # Any worker hitting the search deadline marks the whole query.
        into.timed_out = into.timed_out or part.timed_out
    return into


def summarize_search_stats(parts: "Iterable[SearchStats]") -> dict:
    """Aggregate per-query search stats into one serving-level report.

    This is the ``/stats`` plumbing of the HTTP layer: per-query
    :class:`~repro.index.search.SearchStats` are folded into JSON-ready
    totals — queries answered, timed-out count, work counters, and the mean
    pruning ratio over the aggregated work (exact distances over series
    served, the same definition as the per-query property).  Unlike
    :func:`merge_search_stats` this never mutates its inputs and reports
    *across* queries rather than across one query's workers.

    An **empty iterable** yields the well-formed zeroed summary: every
    counter 0, ``wall_time_s``/``engine_time_s`` 0.0, and the ratio fields
    at their vacuous identities (``pruning_ratio`` 0.0, ``coverage`` 1.0) —
    the same keys and types as a populated report, so consumers never need
    an emptiness special case.  Wall times *sum* across queries (total
    caller-observed latency; divide by ``queries`` for the mean) and the
    worst single query is reported as ``max_wall_time_s``.
    """
    queries = timed_out = partial_answers = 0
    series_served = lower_bounds = exact_distances = leaves_visited = 0
    shards_total = shards_answered = 0
    total_time = 0.0
    wall_time = 0.0
    max_wall_time = 0.0
    for part in parts:
        queries += 1
        timed_out += int(part.timed_out)
        partial_answers += int(part.partial)
        series_served += part.num_series
        lower_bounds += part.series_lower_bounds
        exact_distances += part.exact_distances
        leaves_visited += part.leaves_visited
        shards_total += part.shards_total
        shards_answered += part.shards_answered
        total_time += part.total_time
        wall_time += part.wall_time_s
        max_wall_time = max(max_wall_time, part.wall_time_s)
    return {
        "queries": queries,
        "timed_out": timed_out,
        "partial_answers": partial_answers,
        "series_served": series_served,
        "series_lower_bounds": lower_bounds,
        "exact_distances": exact_distances,
        "leaves_visited": leaves_visited,
        "shards_total": shards_total,
        "shards_answered": shards_answered,
        "engine_time_s": total_time,
        "wall_time_s": wall_time,
        "max_wall_time_s": max_wall_time,
        "pruning_ratio": (1.0 - exact_distances / series_served
                          if series_served else 0.0),
        # Coverage over the scatters actually performed: 1.0 when every
        # sharded query gathered all its shards (and when nothing is sharded).
        "coverage": (shards_answered / shards_total if shards_total else 1.0),
    }


@dataclass
class IndexStructureStats:
    """Aggregate structure metrics reported in Figure 8."""

    num_series: int
    num_subtrees: int
    num_nodes: int
    num_leaves: int
    average_depth: float
    max_depth: int
    average_leaf_size: float
    leaf_fill_ratio: float

    def as_dict(self) -> dict:
        return {
            "num_series": self.num_series,
            "num_subtrees": self.num_subtrees,
            "num_nodes": self.num_nodes,
            "num_leaves": self.num_leaves,
            "average_depth": self.average_depth,
            "max_depth": self.max_depth,
            "average_leaf_size": self.average_leaf_size,
            "leaf_fill_ratio": self.leaf_fill_ratio,
        }


def compute_structure_stats(index: TreeIndex) -> IndexStructureStats:
    """Average depth, leaf fill and root fanout of a built index."""
    if not index.is_built:
        raise IndexError_("the index must be built before computing statistics")
    leaves = index.leaves()
    leaf_sizes = np.array([leaf.size for leaf in leaves], dtype=np.float64)
    depths = []
    for subtree in index.root_children.values():
        depths.extend(_leaf_depths(subtree, 1))
    depths = np.asarray(depths, dtype=np.float64)
    num_nodes = sum(subtree.count_nodes() for subtree in index.root_children.values())
    return IndexStructureStats(
        num_series=index.num_series,
        num_subtrees=len(index.root_children),
        num_nodes=int(num_nodes),
        num_leaves=len(leaves),
        average_depth=float(depths.mean()) if depths.size else 0.0,
        max_depth=int(depths.max()) if depths.size else 0,
        average_leaf_size=float(leaf_sizes.mean()) if leaf_sizes.size else 0.0,
        leaf_fill_ratio=float(leaf_sizes.mean() / index.leaf_size) if leaf_sizes.size else 0.0,
    )


def _leaf_depths(node, depth: int) -> list[int]:
    if node.is_leaf():
        return [depth]
    depths: list[int] = []
    for child in node.children:
        depths.extend(_leaf_depths(child, depth + 1))
    return depths
