"""Structural statistics of a built tree index (Figure 8 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import IndexError_
from repro.index.tree import TreeIndex


@dataclass
class IndexStructureStats:
    """Aggregate structure metrics reported in Figure 8."""

    num_series: int
    num_subtrees: int
    num_nodes: int
    num_leaves: int
    average_depth: float
    max_depth: int
    average_leaf_size: float
    leaf_fill_ratio: float

    def as_dict(self) -> dict:
        return {
            "num_series": self.num_series,
            "num_subtrees": self.num_subtrees,
            "num_nodes": self.num_nodes,
            "num_leaves": self.num_leaves,
            "average_depth": self.average_depth,
            "max_depth": self.max_depth,
            "average_leaf_size": self.average_leaf_size,
            "leaf_fill_ratio": self.leaf_fill_ratio,
        }


def compute_structure_stats(index: TreeIndex) -> IndexStructureStats:
    """Average depth, leaf fill and root fanout of a built index."""
    if not index.is_built:
        raise IndexError_("the index must be built before computing statistics")
    leaves = index.leaves()
    leaf_sizes = np.array([leaf.size for leaf in leaves], dtype=np.float64)
    depths = []
    for subtree in index.root_children.values():
        depths.extend(_leaf_depths(subtree, 1))
    depths = np.asarray(depths, dtype=np.float64)
    num_nodes = sum(subtree.count_nodes() for subtree in index.root_children.values())
    return IndexStructureStats(
        num_series=index.num_series,
        num_subtrees=len(index.root_children),
        num_nodes=int(num_nodes),
        num_leaves=len(leaves),
        average_depth=float(depths.mean()) if depths.size else 0.0,
        max_depth=int(depths.max()) if depths.size else 0,
        average_leaf_size=float(leaf_sizes.mean()) if leaf_sizes.size else 0.0,
        leaf_fill_ratio=float(leaf_sizes.mean() / index.leaf_size) if leaf_sizes.size else 0.0,
    )


def _leaf_depths(node, depth: int) -> list[int]:
    if node.is_leaf():
        return [depth]
    depths: list[int] = []
    for child in node.children:
        depths.extend(_leaf_depths(child, depth + 1))
    return depths
