"""Dynamic index maintenance: buffered inserts, tombstone deletes, compaction.

The tree indexes of this library (:class:`~repro.index.sofa.SofaIndex`,
:class:`~repro.index.messi.MessiIndex`, the bare
:class:`~repro.index.tree.TreeIndex`) are read-optimized and build-once:
serving freshly arriving series would otherwise require a full rebuild.
:class:`DynamicIndex` layers a *write path* over a built tree, the way
MESSI-lineage systems serve continuously arriving data:

* :meth:`~DynamicIndex.insert` / :meth:`~DynamicIndex.insert_batch` append
  series to an unsorted **delta buffer**.  Their symbolic words come from the
  existing vectorized summarization (one ``words`` + ``intervals`` call per
  batch) — no tree surgery; the buffer is an amortized-doubling
  :class:`~repro.core.series.GrowableArray`, so an ingest stream costs O(1)
  copies per row.
* :meth:`~DynamicIndex.delete` records a **tombstone** for a base-tree or
  delta row.  Tombstoned rows are masked out of every refinement step with a
  ``+inf`` lower bound, so they are never refined and never answered.
* :meth:`~DynamicIndex.knn` / :meth:`~DynamicIndex.knn_batch` answer over
  *tree ∪ delta − tombstones*: both search engines fuse the delta into their
  BSF refinement loops (the delta is lower-bounded with the same
  :func:`~repro.core.simd.batch_lower_bound` kernels as leaf series, so
  GEMINI pruning applies to it too) and the answers are **bit-identical to a
  scratch rebuild** on the surviving rows.  (Bit-identity is stated for a
  rebuild over the same served values — z-normalization applied once, as
  when both sides ingest the same raw rows; re-normalizing already
  normalized values drifts them by an ulp and is not the same collection.)
* :meth:`~DynamicIndex.compact` merges the delta: the surviving series are
  rebuilt through the parallel two-stage build pipeline
  (:meth:`~repro.index.tree.TreeIndex.clone_unbuilt` + ``build``), and the
  new tree replaces the old one in a single atomic reference swap — readers
  either see the complete old generation (tree + delta + tombstones) or the
  complete new one, never a mix.  :meth:`~DynamicIndex.compact_in_background`
  runs the merge on a daemon thread
  (:class:`~repro.parallel.pool.BackgroundTask`) while queries keep serving
  the old generation.

Row identity: base rows keep their dataset positions ``0..num_base-1``;
buffered series get ids ``num_base, num_base+1, ...`` in insert order.
Compaction renumbers the survivors compactly (preserving their relative
order, so tie-breaking by row id is unchanged) and returns the old→new
mapping.

Persistence: :meth:`~DynamicIndex.save` writes a dynamic snapshot that
round-trips the delta buffer and both tombstone sets alongside the base tree,
so a serving process can restart mid-ingest; format-v1 snapshots (and static
v2+ snapshots) load as a compacted index with an empty delta.  See
:mod:`repro.index.persistence`.

Durability: pass ``wal_dir`` to attach a :class:`~repro.index.wal.WriteAheadLog`
— every ``insert``/``insert_batch``/``delete`` then appends a checksummed log
record *before* mutating in-memory state and acking, so
:meth:`~DynamicIndex.recover` can replay a crash-lost session over the last
snapshot bit-identically.  ``save`` records the covered WAL position in the
manifest and checkpoints the log; ``compact`` writes a logged barrier and
rotates the segment with the generation swap.
"""

from __future__ import annotations

import operator
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.errors import IndexError_, InvalidParameterError, ValidationError
from repro.core.normalization import znormalize_batch
from repro.core.series import Dataset, GrowableArray
from repro.index.batch_search import BatchSearcher
from repro.index.messi import MessiIndex
from repro.index.search import ExactSearcher, SearchResult
from repro.index.sofa import SofaIndex
from repro.index.tree import TreeIndex
from repro.index.wal import OP_COMPACT, OP_DELETE, OP_INSERT, WriteAheadLog
from repro.index.wal import read_records as _read_wal_records
from repro.obs.metrics import get_registry
from repro.parallel.pool import BackgroundTask

_REGISTRY = get_registry()
_COMPACTIONS = _REGISTRY.counter(
    "repro_compactions_total",
    "Completed dynamic-index compactions (identity no-ops excluded).")
_COMPACTION_SECONDS = _REGISTRY.histogram(
    "repro_compaction_phase_seconds",
    "Latency of dynamic-index compaction phases: concat (gathering "
    "survivors), rebuild (the tree build), swap (generation swap + WAL "
    "rotation).",
    labelnames=("phase",))


@dataclass(frozen=True)
class DeltaView:
    """A consistent snapshot of a dynamic index's write-side state.

    Captured once per query (or per query batch) and handed to the search
    engines, which fuse it into their refinement loops.  The payload arrays
    (``values``/``lower``/``upper``) are zero-copy views of the append
    buffers — safe because appended rows are never mutated and buffer growth
    reallocates instead of overwriting — while the small aliveness masks are
    copies, so a concurrent ``delete`` cannot tear a query's view.
    """

    #: Number of rows of the base tree; delta ids start here.
    num_base: int
    #: Number of live rows across base and delta (the k-NN capacity).
    num_surviving: int
    #: Global row ids of every delta row, tombstoned ones included.
    rows: np.ndarray
    #: Buffered (normalized) series values, one per delta row.
    values: np.ndarray
    #: Per-series quantization intervals of the buffered words.
    lower: np.ndarray
    upper: np.ndarray
    #: Aliveness of every delta row (False = tombstoned).
    alive: np.ndarray
    #: Aliveness of every base row, or ``None`` when no base row is deleted.
    base_alive: np.ndarray | None

    def gather(self, base_values: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Stack the series values of global ``rows`` (base or delta)."""
        rows = np.asarray(rows, dtype=np.int64)
        in_delta = rows >= self.num_base
        if not in_delta.any():
            return base_values[rows]
        gathered = np.empty((rows.shape[0], base_values.shape[1]),
                            dtype=np.float64)
        gathered[~in_delta] = base_values[rows[~in_delta]]
        gathered[in_delta] = self.values[rows[in_delta] - self.num_base]
        return gathered


class _DynamicState:
    """One generation of a dynamic index: a base tree plus its write buffers.

    A generation's tree never changes; compaction builds a *new* generation
    and the owning :class:`DynamicIndex` swaps the reference atomically.  The
    search engines of a generation are bound to its tree and capture its
    delta through :meth:`capture`, so a query that grabbed a generation
    always sees matching (tree, delta, tombstones).
    """

    def __init__(self, tree: TreeIndex, index_type: str,
                 normalize_queries: bool = True) -> None:
        self.tree = tree
        self.index_type = index_type
        self.num_base = tree.num_series
        series_length = tree.dataset.series_length
        word_length = int(np.asarray(tree.summarization.weights).shape[0])
        self.base_alive = np.ones(self.num_base, dtype=bool)
        self.base_dead = 0
        self.delta_values = GrowableArray((series_length,))
        self.delta_lower = GrowableArray((word_length,))
        self.delta_upper = GrowableArray((word_length,))
        self.delta_alive = GrowableArray((), dtype=bool)
        self.delta_dead = 0
        # Read-path caches, rebuilt lazily and invalidated by the write path
        # (see `invalidate_tombstone_cache`): an immutable copy of the base
        # aliveness mask with its live count, and the delta row-id range.
        # Without them every query would pay an O(num_base) copy + sum.
        self._base_alive_cache: "tuple[np.ndarray, int] | None" = None
        self._rows_cache = np.empty(0, dtype=np.int64)
        self.searcher = ExactSearcher(tree, normalize_queries=normalize_queries,
                                      delta_source=self.capture)
        # One per-query engine (and one persistent intra-query pool) per
        # generation: the batched engine's small-batch fallback shares it.
        self.batch_searcher = BatchSearcher(tree,
                                            normalize_queries=normalize_queries,
                                            delta_source=self.capture,
                                            intra_searcher=self.searcher)

    @property
    def delta_count(self) -> int:
        """Number of buffered rows (tombstoned ones included)."""
        return len(self.delta_alive)

    @property
    def num_total(self) -> int:
        return self.num_base + self.delta_count

    @property
    def num_surviving(self) -> int:
        return self.num_total - self.base_dead - self.delta_dead

    def invalidate_tombstone_cache(self) -> None:
        """Called by the write path after mutating ``base_alive``."""
        self._base_alive_cache = None

    def capture(self) -> DeltaView | None:
        """Snapshot the current delta for one query (``None`` = no writes).

        The aliveness buffer is appended to *last* on insert, so reading its
        length first guarantees every captured payload row already exists.
        Between writes this is O(delta): the base tombstone mask is an
        immutable cached copy, not a fresh O(num_base) copy per query.
        """
        count = len(self.delta_alive)
        if count == 0 and self.base_dead == 0:
            return None
        alive = self.delta_alive.view[:count].copy()
        if self.base_dead:
            cached = self._base_alive_cache
            if cached is None:
                snapshot = self.base_alive.copy()
                snapshot.flags.writeable = False
                cached = (snapshot, int(snapshot.sum()))
                self._base_alive_cache = cached
            base_alive, base_live = cached
        else:
            base_alive, base_live = None, self.num_base
        rows = self._rows_cache
        if rows.shape[0] != count:
            rows = self.num_base + np.arange(count, dtype=np.int64)
            rows.flags.writeable = False
            self._rows_cache = rows
        return DeltaView(
            num_base=self.num_base,
            num_surviving=base_live + int(alive.sum()),
            rows=rows,
            values=self.delta_values.view[:count],
            lower=self.delta_lower.view[:count],
            upper=self.delta_upper.view[:count],
            alive=alive,
            base_alive=base_alive,
        )


def _resolve_tree(index) -> tuple[TreeIndex, str]:
    """The underlying tree and persistence type name of a supported index."""
    if isinstance(index, TreeIndex):
        return index, "tree"
    if isinstance(index, SofaIndex):
        return index.tree, "sofa"
    if isinstance(index, MessiIndex):
        return index.tree, "messi"
    raise IndexError_(
        f"DynamicIndex cannot wrap an object of type {type(index).__name__}; "
        "expected SofaIndex, MessiIndex or TreeIndex"
    )


class DynamicIndex:
    """A mutable serving layer over a read-optimized tree index.

    Parameters
    ----------
    index:
        A *built* :class:`~repro.index.sofa.SofaIndex`,
        :class:`~repro.index.messi.MessiIndex` or bare
        :class:`~repro.index.tree.TreeIndex` to serve and mutate.  The tree
        is adopted, not copied; the original wrapper keeps answering
        base-only queries.
    compact_threshold:
        Pending-write fraction (buffered inserts plus base tombstones,
        relative to the base size) above which :attr:`needs_compaction`
        turns true — and, with ``auto_compact``, a background compaction is
        started.
    auto_compact:
        When true, ``insert``/``insert_batch`` trigger a background
        compaction as soon as the threshold is crossed (at most one runs at
        a time).  A failed background compaction is never swallowed: its
        exception re-raises from the next write that would start another
        one.  When false (default), callers poll :attr:`needs_compaction`
        and call :meth:`compact` or :meth:`compact_in_background`
        themselves.
    normalize:
        z-normalize inserted series (the same convention as
        :class:`~repro.core.series.Dataset`, which normalizes the base
        collection on construction).
    normalize_queries:
        z-normalize incoming queries (the paper's setting; forwarded to both
        search engines).
    num_workers:
        Default worker count of compaction rebuilds (``None`` keeps the
        base tree's configuration).
    wal_dir:
        Directory of a :class:`~repro.index.wal.WriteAheadLog` to attach.
        Writes append a checksummed record *before* mutating state and
        acking; after a crash, :meth:`recover` replays the log over the last
        snapshot.  Attaching to a log that already holds records raises a
        typed :class:`~repro.core.errors.WalError` (replay them first).
    wal_fsync:
        Log fsync policy: ``"always"`` (acked writes survive power loss),
        ``"batch"`` (default; acked writes survive process crashes) or
        ``"off"``.

    Reads are lock-free: a query atomically grabs the current generation
    (tree + searchers) and captures a consistent :class:`DeltaView`.  Writes
    (insert, delete, compact, save) serialize on one lock; the WAL append
    happens inside it, so log order is apply order.
    """

    def __init__(self, index, *, compact_threshold: float = 0.25,
                 auto_compact: bool = False, normalize: bool = True,
                 normalize_queries: bool = True,
                 num_workers: "int | None" = None,
                 wal_dir=None, wal_fsync: str = "batch") -> None:
        tree, index_type = _resolve_tree(index)
        if not tree.is_built:
            raise IndexError_(
                "DynamicIndex requires a built index; call build() first"
            )
        if not compact_threshold > 0:
            raise InvalidParameterError(
                f"compact_threshold must be positive, got {compact_threshold}"
            )
        self.compact_threshold = float(compact_threshold)
        self.auto_compact = bool(auto_compact)
        self.normalize = bool(normalize)
        self.normalize_queries = bool(normalize_queries)
        self.num_workers = num_workers
        self._state = _DynamicState(tree, index_type,
                                    normalize_queries=self.normalize_queries)
        self._write_lock = threading.Lock()
        self._compaction_lock = threading.Lock()
        self._compaction_task: BackgroundTask | None = None
        self._wal: WriteAheadLog | None = None
        if wal_dir is not None:
            self._wal = WriteAheadLog(wal_dir, fsync=wal_fsync,
                                      expect_empty=True)

    # ---------------------------------------------------------- inspection

    @property
    def tree(self) -> TreeIndex:
        """The currently served base tree (changes on compaction)."""
        return self._state.tree

    @property
    def index_type(self) -> str:
        """Persistence type of the wrapped index: ``sofa``/``messi``/``tree``."""
        return self._state.index_type

    @property
    def num_base(self) -> int:
        """Rows of the base tree (the last compacted generation)."""
        return self._state.num_base

    @property
    def delta_count(self) -> int:
        """Buffered inserts awaiting compaction (tombstoned ones included)."""
        return self._state.delta_count

    @property
    def num_surviving(self) -> int:
        """Live rows over *tree ∪ delta − tombstones* (the k-NN capacity)."""
        return self._state.num_surviving

    @property
    def delta_fraction(self) -> float:
        """Pending writes (buffered inserts + base tombstones) / base size."""
        state = self._state
        return (state.delta_count + state.base_dead) / max(1, state.num_base)

    @property
    def needs_compaction(self) -> bool:
        """Whether pending writes exceed ``compact_threshold``."""
        return self.delta_fraction >= self.compact_threshold

    @property
    def wal_depth(self) -> int:
        """WAL records since the last checkpoint (0 without a WAL).

        The replay debt a crash would incur right now; ``/healthz`` and the
        ``repro_wal_depth`` gauge surface it per served index.
        """
        wal = self._wal
        return wal.records_pending if wal is not None else 0

    @property
    def num_tombstones(self) -> int:
        """Deleted-but-not-yet-compacted rows (base and delta together)."""
        state = self._state
        return state.base_dead + state.delta_dead

    def __len__(self) -> int:
        return self.num_surviving

    # --------------------------------------------------------------- writes

    def insert(self, series: np.ndarray) -> int:
        """Buffer one series for serving; returns its global row id."""
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 1:
            raise IndexError_(
                f"insert expects a single 1-D series, got shape {series.shape}; "
                "use insert_batch for matrices"
            )
        return int(self.insert_batch(series[None, :])[0])

    def insert_batch(self, series_matrix: np.ndarray) -> np.ndarray:
        """Buffer a batch of series (one per row); returns their row ids.

        The symbolic words of the batch are computed with the vectorized
        summarization of the served tree and their quantization intervals are
        stored next to the values, so queries lower-bound buffered series
        exactly like indexed ones.  No tree surgery happens here; the rows
        become eligible for tree placement at the next :meth:`compact`.
        """
        try:
            matrix = np.asarray(series_matrix, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise ValidationError(
                f"inserted series are not numeric: {error}") from None
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValidationError(
                f"insert_batch expects a non-empty 2-D matrix of series, "
                f"got shape {matrix.shape}"
            )
        expected = self._state.tree.dataset.series_length
        if matrix.shape[1] != expected:
            raise ValidationError(
                f"inserted series have length {matrix.shape[1]}, but the "
                f"index was built over series of length {expected}"
            )
        if not np.isfinite(matrix).all():
            raise ValidationError("inserted series contain NaN or infinite values")
        if self.normalize:
            matrix = znormalize_batch(matrix)
        ids = self._insert_normalized(matrix, log=True)
        if self.auto_compact and self.needs_compaction:
            self._start_background_compaction()
        return ids

    def _insert_normalized(self, matrix: np.ndarray, log: bool) -> np.ndarray:
        """Append already-normalized rows (the write path and WAL replay).

        With ``log=True`` the batch is appended to the WAL *before* the
        buffers mutate — if the log append fails (disk full, simulated
        crash), the exception propagates with the in-memory state untouched
        and nothing acked.  Replay calls with ``log=False``: the record's
        rows are the exact bytes the original call buffered, so appending
        them (bypassing normalization) reproduces the buffers bit-identically.
        """
        with self._write_lock:
            state = self._state  # re-read: compaction may have swapped it
            summarization = state.tree.summarization
            words = summarization.words(matrix)
            lower, upper = summarization.bins.intervals(words)
            if log and self._wal is not None:
                self._wal.append_insert(matrix)
            start = state.delta_values.append(matrix)
            state.delta_lower.append(lower)
            state.delta_upper.append(upper)
            # Aliveness last: readers derive the visible row count from it.
            state.delta_alive.append(np.ones(matrix.shape[0], dtype=bool))
            return state.num_base + start + np.arange(matrix.shape[0],
                                                      dtype=np.int64)

    def delete(self, row: int) -> None:
        """Tombstone a row (base or buffered) by its global id.

        Raises a typed :class:`~repro.core.errors.IndexError_` when the row
        is out of range or already tombstoned — never a silent no-op, so
        double deletes surface instead of masking bookkeeping bugs.
        """
        self._delete_row(operator.index(row), log=True)

    def _delete_row(self, row: int, log: bool) -> None:
        """Validate and tombstone one row (write path and WAL replay).

        The WAL record is appended after validation but before the mask
        flips: an invalid delete is never logged, a logged delete is always
        applied.
        """
        with self._write_lock:
            state = self._state
            if row < 0 or row >= state.num_total:
                raise IndexError_(
                    f"row {row} is out of range for an index with "
                    f"{state.num_total} rows ({state.num_base} base + "
                    f"{state.delta_count} buffered)"
                )
            if row < state.num_base:
                if not state.base_alive[row]:
                    raise IndexError_(f"row {row} is already deleted")
                if log and self._wal is not None:
                    self._wal.append_delete(row)
                state.base_alive[row] = False
                state.base_dead += 1
                state.invalidate_tombstone_cache()
            else:
                position = row - state.num_base
                alive = state.delta_alive.view
                if not alive[position]:
                    raise IndexError_(f"row {row} is already deleted")
                if log and self._wal is not None:
                    self._wal.append_delete(row)
                alive[position] = False
                state.delta_dead += 1

    # -------------------------------------------------------------- queries

    def knn(self, query: np.ndarray, k: int = 1,
            num_workers: "int | None" = None,
            timeout_s: "float | None" = None,
            shared_best: "object | None" = None,
            trace=None) -> SearchResult:
        """Exact k-NN over *tree ∪ delta − tombstones*.

        Bit-identical to a scratch rebuild on the surviving rows (answers are
        reported under the same global row ids this index hands out).
        ``num_workers`` drains the query's leaf queue — with the delta buffer
        as one more work item — against a shared best-so-far; answers are
        bit-identical for every worker count, mid-ingest included.
        ``timeout_s`` bounds the search: on expiry the best-so-far is
        finalized with ``stats.timed_out=True``.  ``shared_best`` couples the
        search to an external (cross-shard) best-so-far; ``trace`` records
        phase spans (including the delta-fusion phase) without changing the
        answer; see :meth:`~repro.index.search.ExactSearcher.knn`.
        """
        return self._state.searcher.knn(query, k=k, num_workers=num_workers,
                                        timeout_s=timeout_s,
                                        shared_best=shared_best, trace=trace)

    def gather_values(self, rows) -> np.ndarray:
        """Stack the served (normalized) values of global ``rows``.

        Resolves base rows against the tree's dataset and delta rows against
        the append buffer — the same gather the search engines finalize with,
        exposed so the sharded scatter-gather can recompute merged distances
        canonically.  Safe against concurrent inserts (append-only buffers);
        callers racing a compaction must re-validate their row ids.
        """
        state = self._state
        rows = np.asarray(rows, dtype=np.int64)
        values = np.asarray(state.tree.dataset.values)
        if rows.size == 0:
            return np.empty((0, values.shape[1]), dtype=np.float64)
        in_delta = rows >= state.num_base
        if not in_delta.any():
            return np.asarray(values[rows], dtype=np.float64)
        gathered = np.empty((rows.shape[0], values.shape[1]), dtype=np.float64)
        gathered[~in_delta] = values[rows[~in_delta]]
        gathered[in_delta] = state.delta_values.view[rows[in_delta]
                                                     - state.num_base]
        return gathered

    def nearest_neighbor(self, query: np.ndarray,
                         num_workers: "int | None" = None,
                         timeout_s: "float | None" = None) -> SearchResult:
        """Exact 1-NN over the surviving rows.

        ``timeout_s`` bounds the search like :meth:`knn` does: on expiry the
        best-so-far is finalized with ``stats.timed_out=True``.
        """
        return self.knn(query, k=1, num_workers=num_workers,
                        timeout_s=timeout_s)

    def knn_batch(self, queries: np.ndarray, k: int = 1,
                  num_workers: "int | None" = None,
                  timeout_s: "float | None" = None) -> "list[SearchResult]":
        """Batched exact k-NN over the surviving rows (same answers as knn)."""
        return self._state.batch_searcher.knn_batch(queries, k=k,
                                                    num_workers=num_workers,
                                                    timeout_s=timeout_s)

    # ----------------------------------------------------------- compaction

    def compact(self, num_workers: "int | None" = None) -> np.ndarray:
        """Merge the delta and drop tombstones by rebuilding the tree.

        The surviving series (base order first, then insert order) are fed
        through the parallel two-stage build pipeline — re-learning the
        summarization on the union, exactly like a fresh build — and the new
        generation replaces the old one atomically; in-flight queries finish
        on the old tree.  Returns the row remapping: ``mapping[old_id]`` is
        the new id of each previously valid global id, ``-1`` for tombstoned
        rows.  With nothing pending this is a cheap identity remap.
        """
        with self._write_lock:
            return self._compact_locked(num_workers, log=True)

    def compact_in_background(self,
                              num_workers: "int | None" = None) -> BackgroundTask:
        """Run :meth:`compact` on a daemon thread and return its handle.

        Queries keep serving the pre-compaction generation until the atomic
        swap; inserts and deletes block for the duration of the rebuild (the
        write lock guards the merge against concurrent remapping).
        ``task.wait()`` returns the row remapping or re-raises the rebuild's
        failure.  If a merge is already running its handle is returned
        instead of starting a second one, and the failure of a finished
        earlier merge re-raises here rather than being dropped.
        """
        with self._compaction_lock:
            task = self._compaction_task
            if task is not None:
                if not task.done():
                    # A merge is already in flight; share its handle instead
                    # of dropping it (its outcome must stay observable).
                    return task
                self._compaction_task = None
                task.wait()  # surfaces a failed earlier merge, never drops it
            task = BackgroundTask(lambda: self.compact(num_workers))
            self._compaction_task = task
        return task

    def _start_background_compaction(self) -> None:
        """Start an auto-compaction unless one is already running.

        :meth:`compact_in_background` serializes the check-and-spawn on its
        own lock, so concurrent inserts cannot double-start a merge, and a
        *failed* previous compaction is not swallowed: its exception
        re-raises here, into the write that would otherwise spawn the next
        doomed attempt.
        """
        self.compact_in_background()

    def _compact_locked(self, num_workers: "int | None",
                        log: bool = True) -> np.ndarray:
        state = self._state
        mapping = np.full(state.num_total, -1, dtype=np.int64)
        if state.delta_count == 0 and state.base_dead == 0:
            mapping[:] = np.arange(state.num_total)
            return mapping
        surviving_base = np.flatnonzero(state.base_alive)
        surviving_delta = np.flatnonzero(state.delta_alive.view)
        if surviving_base.size + surviving_delta.size == 0:
            raise IndexError_(
                "cannot compact an index whose rows are all deleted; "
                "insert new series first"
            )
        if log and self._wal is not None:
            # Logged (and fsynced) only after the checks above, so a logged
            # compact always replays cleanly; rebuilds are deterministic, so
            # replaying the record reproduces this very tree and the
            # renumbering every later record's row ids assume.
            self._wal.append_compact()
        phase_start = time.perf_counter()
        values = np.concatenate(
            [np.asarray(state.tree.dataset.values)[surviving_base],
             state.delta_values.view[surviving_delta]], axis=0)
        base_dataset = state.tree.dataset
        dataset = Dataset(values, name=base_dataset.name, normalize=False,
                          metadata=dict(base_dataset.metadata), validate=False)
        _COMPACTION_SECONDS.labels(phase="concat").observe(
            time.perf_counter() - phase_start)
        phase_start = time.perf_counter()
        tree = state.tree.clone_unbuilt()
        tree.build(dataset, num_workers=(self.num_workers if num_workers is None
                                         else num_workers))
        _COMPACTION_SECONDS.labels(phase="rebuild").observe(
            time.perf_counter() - phase_start)
        phase_start = time.perf_counter()
        mapping[surviving_base] = np.arange(surviving_base.size)
        mapping[state.num_base + surviving_delta] = (
            surviving_base.size + np.arange(surviving_delta.size))
        # Atomic generation swap: a single reference assignment, so readers
        # see either the complete old state or the complete new one.
        self._state = _DynamicState(tree, state.index_type,
                                    normalize_queries=self.normalize_queries)
        if self._wal is not None:
            # A segment never spans a generation swap; old segments stay
            # until the next durable snapshot checkpoints them.
            self._wal.rotate()
        _COMPACTION_SECONDS.labels(phase="swap").observe(
            time.perf_counter() - phase_start)
        _COMPACTIONS.inc()
        return mapping

    # ---------------------------------------------------------- persistence

    def save(self, path) -> "DynamicIndex":
        """Write a dynamic snapshot including the delta and tombstones.

        A process restarted from the snapshot resumes serving mid-ingest:
        same surviving rows, same global ids, same answers.  With a WAL
        attached, the manifest records the covered log position and — once
        the snapshot is durably committed — the log is checkpointed (old
        segments dropped; a crash in between is harmless, replay skips
        covered records).  Returns ``self`` for chaining.
        """
        from repro.index.persistence import save_dynamic

        with self._write_lock:
            save_dynamic(self, path)
            if self._wal is not None:
                self._wal.checkpoint()
        return self

    @classmethod
    def load(cls, path, mmap: bool = True, **options) -> "DynamicIndex":
        """Load a snapshot into a serving dynamic index.

        Dynamic snapshots restore the delta buffer and tombstone sets;
        static snapshots — format v1, or ones written by ``save_index`` —
        load as a compacted index with an empty delta (the upgrade path).
        ``options`` are forwarded to the constructor.  To replay a
        write-ahead log on top, use :meth:`recover`.
        """
        from repro.index.persistence import load_dynamic

        return load_dynamic(path, mmap=mmap, **options)

    @classmethod
    def recover(cls, snapshot_path, wal_dir, *, mmap: bool = True,
                verify: str = "lazy", wal_fsync: str = "batch",
                **options) -> "DynamicIndex":
        """Restore a crashed session: snapshot + WAL replay, bit-identically.

        Loads the snapshot, replays every log record it does not cover
        (``lsn > wal.applied_lsn`` from the manifest) in order — inserts
        append the exact logged rows, deletes re-tombstone, compact records
        re-run the deterministic rebuild — and re-attaches the log for
        future writes.  The result equals the index the crashed process
        held at its last acked write: same rows, same ids, same answers.
        A torn tail record (a crash mid-append; never acked) is truncated;
        a checksum-corrupt record raises a typed
        :class:`~repro.core.errors.CorruptionError`.
        """
        from repro.index.persistence import load_dynamic, read_manifest

        manifest = read_manifest(snapshot_path)
        applied = int((manifest.get("wal") or {}).get("applied_lsn", 0))
        dynamic = load_dynamic(snapshot_path, mmap=mmap, manifest=manifest,
                               verify=verify, **options)
        for record in _read_wal_records(wal_dir, after_lsn=applied):
            dynamic._apply_wal_record(record)
        # Attach for future writes only after replay: the constructor path
        # (expect_empty) refuses un-replayed records for exactly this reason.
        dynamic._wal = WriteAheadLog(wal_dir, fsync=wal_fsync)
        return dynamic

    def _apply_wal_record(self, record) -> None:
        """Re-apply one decoded log record during recovery (never re-logged)."""
        if record.op == OP_INSERT:
            self._insert_normalized(record.values, log=False)
        elif record.op == OP_DELETE:
            self._delete_row(int(record.row), log=False)
        elif record.op == OP_COMPACT:
            with self._write_lock:
                self._compact_locked(None, log=False)
        else:  # pragma: no cover - read_records rejects unknown ops first
            raise IndexError_(f"cannot replay WAL record with op {record.op}")

    def close(self) -> None:
        """Release the write-ahead log's file handle (flushing it first)."""
        if self._wal is not None:
            self._wal.close()

    @classmethod
    def _restore(cls, tree: TreeIndex, index_type: str, *,
                 base_alive: np.ndarray, delta_values: np.ndarray,
                 delta_lower: np.ndarray, delta_upper: np.ndarray,
                 delta_alive: np.ndarray, **options) -> "DynamicIndex":
        """Rebuild a dynamic index from snapshot state (see persistence)."""
        dynamic = cls(tree, **options)
        state = dynamic._state
        state.index_type = index_type
        if base_alive.shape[0] != state.num_base:
            raise IndexError_(
                f"snapshot tombstones cover {base_alive.shape[0]} base rows, "
                f"but the tree holds {state.num_base}"
            )
        state.base_alive = np.ascontiguousarray(base_alive, dtype=bool)
        state.base_dead = int((~state.base_alive).sum())
        if delta_values.shape[0]:
            state.delta_values.append(delta_values)
            state.delta_lower.append(delta_lower)
            state.delta_upper.append(delta_upper)
            state.delta_alive.append(np.ascontiguousarray(delta_alive,
                                                          dtype=bool))
            state.delta_dead = int((~state.delta_alive.view).sum())
        return dynamic
