"""Tree nodes of the MESSI/SOFA index.

The index is a forest rooted at a *root node* whose children correspond to the
1-bit-per-dimension prefixes of the symbolic words (up to ``2^l`` children for
word length ``l``).  Below the root, *inner nodes* hold a variable-cardinality
word (a per-dimension symbol prefix plus the number of bits used) and exactly
two children obtained by appending one bit to one dimension's prefix.  *Leaf
nodes* store the full-resolution words of their series together with the row
indices of those series in the indexed dataset.

The variable-cardinality word of any node describes a hyper-rectangle in
summary space; the lower-bound distance between a query summary and that
rectangle (Eq. 2 with per-dimension weights) is what the exact-search algorithm
prunes with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Node:
    """Common state of inner and leaf nodes: a variable-cardinality word."""

    symbols: np.ndarray  # per-dimension symbol prefix, expressed at `bits` resolution
    bits: np.ndarray     # per-dimension number of bits used (0 = unconstrained)

    @property
    def word_length(self) -> int:
        return self.symbols.shape[0]

    def is_leaf(self) -> bool:
        raise NotImplementedError

    def iter_leaves(self):
        """Yield every leaf in the subtree rooted at this node."""
        raise NotImplementedError

    def iter_nodes(self):
        """Yield every node of this subtree in preorder (parents before children).

        Iterative on an explicit stack so arbitrarily deep trees (up to
        ``word_length * bits`` splits) never hit the interpreter recursion
        limit; the snapshot flattening of the persistence subsystem relies on
        the preorder guarantee that children always follow their parent.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf():
                # Push right first so the left child is visited first.
                if node.right is not None:
                    stack.append(node.right)
                if node.left is not None:
                    stack.append(node.left)

    def depth(self) -> int:
        """Height of the subtree rooted at this node (a leaf has depth 1)."""
        raise NotImplementedError

    def count_nodes(self) -> int:
        raise NotImplementedError


@dataclass
class LeafNode(Node):
    """A leaf stores full-resolution words and dataset row indices.

    ``lower`` and ``upper`` cache the per-series quantization intervals at full
    resolution so that query-time lower bounds are a single vectorized kernel
    call (:func:`repro.core.simd.batch_lower_bound`).
    """

    indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    words: np.ndarray = field(default_factory=lambda: np.empty((0, 0), dtype=np.int64))
    lower: np.ndarray | None = None
    upper: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.indices.shape[0]

    def is_leaf(self) -> bool:
        return True

    def iter_leaves(self):
        yield self

    def depth(self) -> int:
        return 1

    def count_nodes(self) -> int:
        return 1


@dataclass
class InnerNode(Node):
    """An inner node with exactly two children, split on ``split_dimension``."""

    split_dimension: int = 0
    left: Node | None = None   # child whose appended bit is 0
    right: Node | None = None  # child whose appended bit is 1

    @property
    def children(self) -> list[Node]:
        return [child for child in (self.left, self.right) if child is not None]

    def is_leaf(self) -> bool:
        return False

    def iter_leaves(self):
        for child in self.children:
            yield from child.iter_leaves()

    def depth(self) -> int:
        return 1 + max((child.depth() for child in self.children), default=0)

    def count_nodes(self) -> int:
        return 1 + sum(child.count_nodes() for child in self.children)


def root_child_word(symbols: np.ndarray, bits: np.ndarray) -> tuple[int, ...]:
    """Hashable key of a root child: its 1-bit-per-dimension prefix."""
    del bits  # root children always use exactly one bit per dimension
    return tuple(int(symbol) for symbol in symbols)
