"""Versioned on-disk snapshots of built indexes (save once, mmap-load many).

Every process that answers queries over a SOFA/MESSI index today first pays
the full construction cost: learning the summarization, transforming every
series and growing the tree.  This module turns a *built* index into a
directory snapshot that any number of later processes can open in
milliseconds:

* ``manifest.json`` — format magic + version, the index/tree/summarization
  configuration, dataset identity and the recorded build timings;
* one ``.npy`` file per array — the dataset's (normalized) value matrix, the
  full-resolution word matrix, the flattened tree topology (node words, split
  dimensions, child links), the leaf directory (per-leaf and per-series
  quantization intervals, dataset rows, offsets) and the summarization's
  learned state (breakpoints, weights, selected Fourier components).

``load(path, mmap=True)`` opens the large row-major payloads (values, words,
interval matrices) with ``numpy.load(..., mmap_mode="r")``: nothing is copied
into anonymous memory, the OS pages data in on first touch, and concurrent
processes serving the same snapshot share one page-cache copy — the
prerequisite for the ROADMAP's multi-process serving and sharding.  The small
structure arrays (node topology, leaf sizes) are materialized eagerly because
they are walked element-wise while rebuilding node objects.

A loaded index answers ``knn`` / ``knn_batch`` bit-identically to the freshly
built one: the search engines consume exactly the arrays the snapshot stores,
so every lower bound, pruning decision and refined distance is computed from
the same float64 values either way.

Snapshots are versioned.  :data:`FORMAT_VERSION` is bumped whenever the
layout changes; loading a snapshot written by a newer library raises a clear
:class:`~repro.core.errors.IndexError_` instead of a numpy decode error.

Format version 2 adds *dynamic* snapshots: a
:class:`~repro.index.dynamic.DynamicIndex` saved mid-ingest stores, next to
its base tree, the delta buffer (values and quantization intervals of every
buffered series) and both tombstone sets, plus a ``dynamic`` manifest
section.  Loading restores the exact serving state — same surviving rows,
same global row ids, same answers.  The upgrade path is total: format-v1
snapshots (and v2 snapshots of static indexes) load through
``DynamicIndex.load`` as a compacted index with an empty delta, while
``load_index`` returns whatever was saved (a dynamic snapshot comes back as
a :class:`~repro.index.dynamic.DynamicIndex`).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.errors import IndexError_
from repro.core.series import Dataset
from repro.index.messi import MessiIndex
from repro.index.node import InnerNode, LeafNode
from repro.index.search import ExactSearcher
from repro.index.sofa import SofaIndex
from repro.index.tree import BuildTimings, TreeIndex
from repro.transforms.sax import SAX
from repro.transforms.sfa import SFA

#: Magic string identifying a repro index snapshot directory.
FORMAT_MAGIC = "repro-index-snapshot"

#: Current snapshot layout version.  Bump on any incompatible layout change.
#: Version 2 (dynamic-maintenance subsystem) adds the optional delta/tombstone
#: payload of dynamic indexes; static v2 snapshots keep the v1 layout.
FORMAT_VERSION = 2

#: Names of the delta/tombstone arrays of a dynamic (v2) snapshot.
_DYNAMIC_ARRAYS = ("delta_values", "delta_lower", "delta_upper",
                   "delta_alive", "base_alive")

#: Manifest file name inside a snapshot directory.
MANIFEST_NAME = "manifest.json"

#: Arrays that are memory-mapped under ``mmap=True`` (the large, row-major
#: payloads sliced or gathered wholesale at query time).  Everything else is
#: small structure state that load-time reconstruction walks element-wise.
_MMAP_ARRAYS = frozenset({
    "values",
    "leaf_words",
    "series_lower",
    "series_upper",
    "series_rows",
    "leaf_lower",
    "leaf_upper",
})

#: Summarization registry: manifest type name -> class with snapshot support.
_SUMMARIZATIONS = {"SAX": SAX, "SFA": SFA}

#: Index-wrapper registry: manifest index_type -> wrapper class (``tree``
#: snapshots have no wrapper and are handled separately).
_WRAPPERS = {"sofa": SofaIndex, "messi": MessiIndex}


# --------------------------------------------------------------------- saving


def _json_safe(mapping: dict) -> dict:
    """Best-effort JSON-serializable copy of a metadata dict (drops the rest)."""
    safe = {}
    for key, value in mapping.items():
        try:
            json.dumps({str(key): value})
        except (TypeError, ValueError):
            continue
        safe[str(key)] = value
    return safe


def _flatten_tree(tree: TreeIndex) -> dict[str, np.ndarray]:
    """Flatten the node forest into preorder structure arrays.

    Node ``0..num_nodes-1`` enumerate every node of every root subtree in
    preorder (children always after their parent), so reconstruction can
    rebuild bottom-up with one reversed pass.  Leaves carry their position in
    the leaf directory (``node_leaf``); inner nodes carry child links.
    """
    word_length = tree.summarization.bins.num_dimensions
    nodes = []
    node_of = {}
    root_keys = []
    root_nodes = []
    for key, subtree in tree.root_children.items():
        root_keys.append(key)
        root_nodes.append(len(nodes))
        for node in subtree.iter_nodes():
            node_of[id(node)] = len(nodes)
            nodes.append(node)

    num_nodes = len(nodes)
    node_symbols = np.empty((num_nodes, word_length), dtype=np.int64)
    node_bits = np.empty((num_nodes, word_length), dtype=np.int64)
    node_split = np.full(num_nodes, -1, dtype=np.int64)
    node_left = np.full(num_nodes, -1, dtype=np.int64)
    node_right = np.full(num_nodes, -1, dtype=np.int64)
    node_leaf = np.full(num_nodes, -1, dtype=np.int64)
    for position, node in enumerate(nodes):
        node_symbols[position] = node.symbols
        node_bits[position] = node.bits
        if node.is_leaf():
            node_leaf[position] = tree.leaf_position(node)
        else:
            node_split[position] = node.split_dimension
            if node.left is not None:
                node_left[position] = node_of[id(node.left)]
            if node.right is not None:
                node_right[position] = node_of[id(node.right)]

    (series_lower, series_upper, series_rows,
     _leaf_offsets, leaf_sizes) = tree.series_directory()
    return {
        "node_symbols": node_symbols,
        "node_bits": node_bits,
        "node_split": node_split,
        "node_left": node_left,
        "node_right": node_right,
        "node_leaf": node_leaf,
        "root_keys": np.asarray(root_keys, dtype=np.int64).reshape(
            len(root_keys), word_length),
        "root_nodes": np.asarray(root_nodes, dtype=np.int64),
        "leaf_sizes": np.asarray(leaf_sizes, dtype=np.int64),
        "leaf_lower": tree._leaf_lower,
        "leaf_upper": tree._leaf_upper,
        "series_lower": series_lower,
        "series_upper": series_upper,
        "series_rows": np.asarray(series_rows, dtype=np.int64),
        "leaf_words": np.vstack([leaf.words for leaf in tree.leaf_nodes]),
    }


def save_tree(tree: TreeIndex, path: "str | Path",
              index_type: str = "tree",
              extra_arrays: "dict[str, np.ndarray] | None" = None,
              extra_manifest: "dict | None" = None) -> Path:
    """Write a built :class:`TreeIndex` as a versioned snapshot directory.

    Returns the snapshot path.  ``index_type`` records which wrapper the
    snapshot restores to (``"sofa"``, ``"messi"`` or the bare ``"tree"``).
    ``extra_arrays``/``extra_manifest`` let :func:`save_dynamic` persist the
    delta/tombstone payload and its manifest section next to the base tree.
    """
    if not tree.is_built:
        raise IndexError_("only a built index can be saved")
    if index_type != "tree" and index_type not in _WRAPPERS:
        raise IndexError_(f"unknown index_type '{index_type}'")
    summarization = tree.summarization
    type_name = type(summarization).__name__
    if type_name not in _SUMMARIZATIONS:
        raise IndexError_(
            f"summarization {type_name} does not support snapshots"
        )
    summarization_config, summarization_arrays = summarization.snapshot_state()

    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    existing = path / MANIFEST_NAME
    if any(path.iterdir()) and not existing.exists():
        raise IndexError_(
            f"refusing to write snapshot into non-empty directory {path} "
            "that is not an existing snapshot"
        )

    arrays = dict(_flatten_tree(tree))
    arrays["values"] = tree.dataset.values
    for name, array in summarization_arrays.items():
        arrays[f"summarization_{name}"] = array
    if extra_arrays:
        overlap = set(extra_arrays) & set(arrays)
        if overlap:
            raise IndexError_(
                f"extra snapshot arrays clash with tree arrays: {sorted(overlap)}"
            )
        arrays.update(extra_arrays)

    # Write-to-temp-then-rename, one file at a time.  The rename replaces the
    # directory entry while any mapped old inode stays alive, so re-saving a
    # snapshot *in place* is safe even while a mmap-loaded index (possibly
    # this very one) is still reading the old files; a crash mid-save leaves
    # either the complete old file or the complete new one, never a torn mix.
    for name, array in arrays.items():
        temporary = path / f"{name}.tmp.npy"
        np.save(temporary, np.ascontiguousarray(array))
        temporary.replace(path / f"{name}.npy")

    manifest = {
        "format": FORMAT_MAGIC,
        "version": FORMAT_VERSION,
        "index_type": index_type,
        "tree": {
            "leaf_size": tree.leaf_size,
            "split_policy": tree.split_policy,
            "transform_chunks": tree.transform_chunks,
            "num_series": tree.num_series,
            "series_length": tree.dataset.series_length,
            "num_leaves": len(tree.leaf_nodes),
        },
        "summarization": {"type": type_name, **summarization_config},
        "dataset": {
            "name": tree.dataset.name,
            "metadata": _json_safe(tree.dataset.metadata),
        },
        "timings": {
            "learn_time": tree.timings.learn_time,
            "transform_chunk_times": list(tree.timings.transform_chunk_times),
            "subtree_times": list(tree.timings.subtree_times),
            "wall_time": tree.timings.wall_time,
        },
        "arrays": sorted(arrays),
    }
    if extra_manifest:
        manifest.update(extra_manifest)
    temporary = path / f"{MANIFEST_NAME}.tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    temporary.replace(path / MANIFEST_NAME)
    return path


# -------------------------------------------------------------------- loading


def read_manifest(path: "str | Path") -> dict:
    """Read and validate a snapshot manifest (format magic and version)."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise IndexError_(
            f"{path} is not an index snapshot (missing {MANIFEST_NAME})"
        )
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise IndexError_(f"unreadable snapshot manifest {manifest_path}: {error}") from None
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_MAGIC:
        raise IndexError_(
            f"{path} is not an index snapshot (bad or missing format magic)"
        )
    version = manifest.get("version")
    if not isinstance(version, int) or version < 1:
        raise IndexError_(f"snapshot {path} has an invalid format version: {version!r}")
    if version > FORMAT_VERSION:
        raise IndexError_(
            f"snapshot {path} uses format version {version}, but this library "
            f"only supports versions up to {FORMAT_VERSION}; upgrade the "
            "library or re-save the index with this version"
        )
    required = {
        "arrays": (),
        "summarization": ("type",),
        "tree": ("leaf_size", "split_policy", "transform_chunks", "num_leaves"),
    }
    for key, subkeys in required.items():
        section = manifest.get(key)
        if section is None:
            raise IndexError_(
                f"snapshot {path} manifest is missing required key '{key}'"
            )
        for subkey in subkeys:
            if subkey not in section:
                raise IndexError_(
                    f"snapshot {path} manifest is missing required key "
                    f"'{key}.{subkey}'"
                )
    return manifest


def _load_arrays(path: Path, names: list[str], mmap: bool) -> dict[str, np.ndarray]:
    arrays = {}
    for name in names:
        array_path = path / f"{name}.npy"
        if not array_path.is_file():
            raise IndexError_(f"snapshot {path} is missing array file {name}.npy")
        mode = "r" if (mmap and name in _MMAP_ARRAYS) else None
        arrays[name] = np.load(array_path, mmap_mode=mode)
    return arrays


def _restore_summarization(manifest: dict, arrays: dict):
    config = dict(manifest["summarization"])
    type_name = config.pop("type", None)
    summarization_cls = _SUMMARIZATIONS.get(type_name)
    if summarization_cls is None:
        raise IndexError_(f"snapshot uses unknown summarization type '{type_name}'")
    prefix = "summarization_"
    state = {name[len(prefix):]: array for name, array in arrays.items()
             if name.startswith(prefix)}
    return summarization_cls.from_snapshot(config, state)


def _restore_nodes(arrays: dict, leaf_payloads: list[LeafNode]) -> list:
    """Rebuild every node object from the preorder structure arrays.

    ``leaf_payloads`` holds the ready LeafNode of each leaf-directory
    position; the reversed preorder pass guarantees both children exist by the
    time their parent is constructed.  The link columns are converted to
    Python lists up front: element-wise numpy (worse, memmap) scalar access
    inside the loop would dominate load time on degenerate trees with
    thousands of nodes.
    """
    node_symbols = np.asarray(arrays["node_symbols"])
    node_bits = np.asarray(arrays["node_bits"])
    node_split = np.asarray(arrays["node_split"]).tolist()
    node_left = np.asarray(arrays["node_left"]).tolist()
    node_right = np.asarray(arrays["node_right"]).tolist()
    node_leaf = np.asarray(arrays["node_leaf"]).tolist()
    num_nodes = node_symbols.shape[0]
    nodes: list = [None] * num_nodes
    for position in range(num_nodes - 1, -1, -1):
        leaf_id = node_leaf[position]
        if leaf_id >= 0:
            nodes[position] = leaf_payloads[leaf_id]
        else:
            left = node_left[position]
            right = node_right[position]
            nodes[position] = InnerNode(
                symbols=node_symbols[position],
                bits=node_bits[position],
                split_dimension=node_split[position],
                left=nodes[left] if left >= 0 else None,
                right=nodes[right] if right >= 0 else None,
            )
    return nodes


def load_tree(path: "str | Path", mmap: bool = True,
              manifest: dict | None = None) -> TreeIndex:
    """Load a snapshot back into a fully built :class:`TreeIndex`.

    With ``mmap=True`` (the default) the value matrix, word matrix and
    interval matrices are memory-mapped read-only; leaf payloads become
    zero-copy row slices of those maps, so loading touches only the structure
    arrays and the first query pays the page-in cost of exactly the data it
    prunes down to.
    """
    path = Path(path)
    if manifest is None:
        manifest = read_manifest(path)
    arrays = _load_arrays(path, list(manifest["arrays"]), mmap=mmap)
    summarization = _restore_summarization(manifest, arrays)

    tree_config = manifest["tree"]
    tree = TreeIndex(summarization,
                     leaf_size=int(tree_config["leaf_size"]),
                     split_policy=tree_config["split_policy"],
                     transform_chunks=int(tree_config["transform_chunks"]))

    dataset_config = manifest.get("dataset", {})
    tree.dataset = Dataset(arrays["values"],
                           name=dataset_config.get("name", "dataset"),
                           normalize=False,
                           metadata=dict(dataset_config.get("metadata", {})),
                           validate=False)

    leaf_sizes = np.ascontiguousarray(arrays["leaf_sizes"], dtype=np.int64)
    leaf_offsets = np.concatenate([[0], np.cumsum(leaf_sizes[:-1])]).astype(np.int64)
    node_symbols = np.asarray(arrays["node_symbols"])
    node_bits = np.asarray(arrays["node_bits"])
    node_leaf = np.asarray(arrays["node_leaf"])
    # Slice leaf payloads from base-class ndarray *views* of the maps: the
    # views share the mmap buffer (still zero-copy) but skip the np.memmap
    # subclass slicing overhead, which dominates on thousands of leaves.
    leaf_words = np.asarray(arrays["leaf_words"])
    series_lower = np.asarray(arrays["series_lower"])
    series_upper = np.asarray(arrays["series_upper"])
    series_rows = np.asarray(arrays["series_rows"])

    num_leaves = int(tree_config["num_leaves"])
    leaf_payloads: list[LeafNode | None] = [None] * num_leaves
    leaf_positions = np.flatnonzero(node_leaf >= 0)
    leaf_ids = node_leaf[leaf_positions].tolist()
    starts = leaf_offsets.tolist()
    sizes = leaf_sizes.tolist()
    for position, leaf_id in zip(leaf_positions.tolist(), leaf_ids):
        start = starts[leaf_id]
        stop = start + sizes[leaf_id]
        leaf_payloads[leaf_id] = LeafNode(
            symbols=node_symbols[position],
            bits=node_bits[position],
            indices=series_rows[start:stop],
            words=leaf_words[start:stop],
            lower=series_lower[start:stop],
            upper=series_upper[start:stop],
        )
    if any(leaf is None for leaf in leaf_payloads):
        raise IndexError_(f"snapshot {path} is corrupt: leaf directory and "
                          "node arrays disagree")

    nodes = _restore_nodes(arrays, leaf_payloads)
    root_keys = np.asarray(arrays["root_keys"]).tolist()
    root_nodes = np.asarray(arrays["root_nodes"]).tolist()
    tree.root_children = {
        tuple(key): nodes[node] for key, node in zip(root_keys, root_nodes)
    }

    # Install the leaf directory directly from the stored arrays (bit-identical
    # to what _build_leaf_directory would recompute, without touching the data).
    tree.leaf_nodes = list(leaf_payloads)
    tree._leaf_lower = arrays["leaf_lower"]
    tree._leaf_upper = arrays["leaf_upper"]
    tree._leaf_positions = {id(leaf): position
                            for position, leaf in enumerate(tree.leaf_nodes)}
    tree._leaf_sizes = leaf_sizes
    tree._leaf_offsets = leaf_offsets
    tree._series_lower = series_lower
    tree._series_upper = series_upper
    tree._series_rows = series_rows

    # Words in dataset-row order (scatter back from leaf order).
    words = np.empty_like(np.asarray(leaf_words))
    words[np.asarray(series_rows)] = leaf_words
    tree._words = words

    timings = manifest.get("timings", {})
    tree.timings = BuildTimings(
        learn_time=float(timings.get("learn_time", 0.0)),
        transform_chunk_times=[float(t) for t in
                               timings.get("transform_chunk_times", [])],
        subtree_times=[float(t) for t in timings.get("subtree_times", [])],
        wall_time=float(timings.get("wall_time", 0.0)),
    )
    return tree


# ----------------------------------------------------------- wrapper indexes


def save_index(index: "SofaIndex | MessiIndex | TreeIndex",
               path: "str | Path") -> Path:
    """Save any supported index (wrapper, bare tree or dynamic) as a snapshot."""
    from repro.index.dynamic import DynamicIndex

    if isinstance(index, DynamicIndex):
        index.save(path)
        return Path(path)
    if isinstance(index, TreeIndex):
        return save_tree(index, path, index_type="tree")
    for index_type, wrapper_cls in _WRAPPERS.items():
        if isinstance(index, wrapper_cls):
            if not index.is_built:
                raise IndexError_("only a built index can be saved")
            return save_tree(index.tree, path, index_type=index_type)
    raise IndexError_(f"cannot snapshot object of type {type(index).__name__}")


def load_index(path: "str | Path", mmap: bool = True,
               expected_type: str | None = None):
    """Load a snapshot into the index object it was saved from.

    Returns a :class:`SofaIndex`, :class:`MessiIndex`, bare
    :class:`TreeIndex` or — for dynamic (mid-ingest) snapshots — a
    :class:`~repro.index.dynamic.DynamicIndex`, according to the manifest.
    ``expected_type`` (one of ``"sofa"``, ``"messi"``, ``"tree"``) makes
    mismatches a clear error — used by ``SofaIndex.load`` /
    ``MessiIndex.load``.  A static loader refuses a dynamic snapshot with
    pending writes rather than silently dropping them.
    """
    manifest = read_manifest(path)
    index_type = manifest.get("index_type", "tree")
    if expected_type is not None and index_type != expected_type:
        raise IndexError_(
            f"snapshot {path} holds a '{index_type}' index, not "
            f"'{expected_type}'; use the matching loader or repro.load_index"
        )
    dynamic_section = manifest.get("dynamic")
    if dynamic_section is not None:
        pending = (int(dynamic_section.get("delta_count", 0))
                   + int(dynamic_section.get("base_dead", 0)))
        if expected_type is None:
            return load_dynamic(path, mmap=mmap, manifest=manifest)
        if pending:
            raise IndexError_(
                f"snapshot {path} holds a dynamic index with pending writes "
                f"(buffered inserts or tombstones); load it with "
                "DynamicIndex.load or repro.load_index to keep them"
            )
    tree = load_tree(path, mmap=mmap, manifest=manifest)
    if index_type == "tree":
        return tree
    wrapper_cls = _WRAPPERS.get(index_type)
    if wrapper_cls is None:
        raise IndexError_(f"snapshot {path} holds unknown index_type '{index_type}'")
    index = wrapper_cls.__new__(wrapper_cls)
    index.summarization = tree.summarization
    index.tree = tree
    index._searcher = ExactSearcher(tree)
    return index


# ------------------------------------------------------------ dynamic (v2)


def save_dynamic(dynamic, path: "str | Path") -> Path:
    """Write a :class:`~repro.index.dynamic.DynamicIndex` snapshot.

    The base tree is stored exactly like a static snapshot; the delta buffer
    (values + quantization intervals + aliveness) and the base tombstone set
    ride along as extra arrays, described by a ``dynamic`` manifest section.
    """
    state = dynamic._state
    delta_count = state.delta_count
    extra_arrays = {
        "delta_values": state.delta_values.view,
        "delta_lower": state.delta_lower.view,
        "delta_upper": state.delta_upper.view,
        "delta_alive": state.delta_alive.view,
        "base_alive": state.base_alive,
    }
    extra_manifest = {
        "dynamic": {
            "delta_count": delta_count,
            "base_dead": state.base_dead,
            "delta_dead": state.delta_dead,
        },
    }
    return save_tree(state.tree, path, index_type=state.index_type,
                     extra_arrays=extra_arrays, extra_manifest=extra_manifest)


def load_dynamic(path: "str | Path", mmap: bool = True,
                 manifest: dict | None = None, **options):
    """Load any snapshot into a :class:`~repro.index.dynamic.DynamicIndex`.

    Dynamic (v2) snapshots restore the delta buffer and both tombstone sets
    — the serving process resumes mid-ingest with the same global row ids.
    Static snapshots, including every format-v1 snapshot, take the upgrade
    path: they load as a compacted index with an empty delta.  ``options``
    are forwarded to the ``DynamicIndex`` constructor.
    """
    from repro.index.dynamic import DynamicIndex

    path = Path(path)
    if manifest is None:
        manifest = read_manifest(path)
    index_type = manifest.get("index_type", "tree")
    tree = load_tree(path, mmap=mmap, manifest=manifest)
    dynamic_section = manifest.get("dynamic")
    if dynamic_section is None:
        # v1 (or static v2) upgrade path: a compacted index, empty delta.
        word_length = int(np.asarray(tree.summarization.weights).shape[0])
        return DynamicIndex._restore(
            tree, index_type,
            base_alive=np.ones(tree.num_series, dtype=bool),
            delta_values=np.empty((0, tree.dataset.series_length)),
            delta_lower=np.empty((0, word_length)),
            delta_upper=np.empty((0, word_length)),
            delta_alive=np.empty(0, dtype=bool),
            **options)
    arrays = _load_arrays(path, list(_DYNAMIC_ARRAYS), mmap=False)
    delta_count = int(dynamic_section.get("delta_count",
                                          arrays["delta_values"].shape[0]))
    for name in ("delta_values", "delta_lower", "delta_upper", "delta_alive"):
        if arrays[name].shape[0] != delta_count:
            raise IndexError_(
                f"snapshot {path} is corrupt: {name} holds "
                f"{arrays[name].shape[0]} rows, manifest says {delta_count}"
            )
    return DynamicIndex._restore(
        tree, index_type,
        base_alive=np.asarray(arrays["base_alive"], dtype=bool),
        delta_values=np.asarray(arrays["delta_values"], dtype=np.float64),
        delta_lower=np.asarray(arrays["delta_lower"], dtype=np.float64),
        delta_upper=np.asarray(arrays["delta_upper"], dtype=np.float64),
        delta_alive=np.asarray(arrays["delta_alive"], dtype=bool),
        **options)
