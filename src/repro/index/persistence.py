"""Versioned, crash-consistent on-disk snapshots of built indexes.

Every process that answers queries over a SOFA/MESSI index today first pays
the full construction cost: learning the summarization, transforming every
series and growing the tree.  This module turns a *built* index into a
directory snapshot that any number of later processes can open in
milliseconds:

* ``manifest.json`` — format magic + version, the index/tree/summarization
  configuration, dataset identity, recorded build timings, and (since format
  v3) the file map and content checksums of every payload;
* one ``.npy`` file per array — the dataset's (normalized) value matrix, the
  full-resolution word matrix, the flattened tree topology (node words, split
  dimensions, child links), the leaf directory (per-leaf and per-series
  quantization intervals, dataset rows, offsets) and the summarization's
  learned state (breakpoints, weights, selected Fourier components).

``load(path, mmap=True)`` opens the large row-major payloads (values, words,
interval matrices) with ``numpy.load(..., mmap_mode="r")``: nothing is copied
into anonymous memory, the OS pages data in on first touch, and concurrent
processes serving the same snapshot share one page-cache copy — the
prerequisite for the ROADMAP's multi-process serving and sharding.  The small
structure arrays (node topology, leaf sizes) are materialized eagerly because
they are walked element-wise while rebuilding node objects.

A loaded index answers ``knn`` / ``knn_batch`` bit-identically to the freshly
built one: the search engines consume exactly the arrays the snapshot stores,
so every lower bound, pruning decision and refined distance is computed from
the same float64 values either way.

Crash consistency (format v3)
-----------------------------
Saving is atomic at snapshot granularity, built from three filesystem facts
(file fsync makes contents durable, directory fsync makes names durable,
``os.replace`` is atomic) routed through the injectable seam in
:mod:`repro.core.fsio` so the reliability harness can crash a save between
any two durable effects:

* **Fresh save** (the target is not an existing snapshot): every payload and
  the manifest are written and fsynced into a hidden *temp sibling*
  directory, which is then renamed into place in one atomic step.  A crash
  at any point leaves either no snapshot or the complete one.
* **In-place re-save** (the target already holds a snapshot): new payloads
  are written under *generation-suffixed* names (``values.g2.npy``) the old
  manifest does not reference, and the commit point is a single atomic
  rename of the new manifest over ``manifest.json``.  The old snapshot stays
  fully loadable until that instant — a crash leaves either the old or the
  new complete state, never a torn mix — and files of superseded
  generations are unlinked only after the commit (mmap-loaded readers of
  the old generation keep their inodes alive).

Every payload's CRC-32 is recorded in the manifest, and the manifest itself
carries a whole-manifest checksum.  ``verify="eager"`` re-checksums every
payload on load; ``"lazy"`` (the default) checks only the payloads the load
materializes anyway, so mmap loads stay O(structure) cheap; ``"off"`` skips
verification.  A failed checksum, a missing file or a truncated ``.npy``
raises a typed :class:`~repro.core.errors.CorruptionError` /
:class:`~repro.core.errors.IndexError_` naming the offending file — never a
raw numpy or OS exception, and never a silently wrong answer.

Snapshots are versioned.  :data:`FORMAT_VERSION` is bumped whenever the
layout changes; loading a snapshot written by a newer library raises a clear
:class:`~repro.core.errors.IndexError_`.  Format v1 and v2 snapshots (no file
map, no checksums) still load.

Format version 2 added *dynamic* snapshots: a
:class:`~repro.index.dynamic.DynamicIndex` saved mid-ingest stores, next to
its base tree, the delta buffer (values and quantization intervals of every
buffered series) and both tombstone sets, plus a ``dynamic`` manifest
section.  Loading restores the exact serving state — same surviving rows,
same global row ids, same answers.  Format v3 additionally records the
write-ahead-log position (``wal.applied_lsn``) captured by the snapshot, so
:meth:`~repro.index.dynamic.DynamicIndex.recover` replays only the WAL
records the snapshot does not already contain.  The upgrade path is total:
format-v1/v2 snapshots (and v3 snapshots of static indexes) load through
``DynamicIndex.load`` as a compacted index with an empty delta, while
``load_index`` returns whatever was saved (a dynamic snapshot comes back as
a :class:`~repro.index.dynamic.DynamicIndex`).
"""

from __future__ import annotations

import io
import json
import zlib
from pathlib import Path

import numpy as np

from repro.core import fsio
from repro.core.errors import (
    CorruptionError,
    IndexError_,
    InvalidParameterError,
    StorageFullError,
)
from repro.core.series import Dataset
from repro.index.messi import MessiIndex
from repro.index.node import InnerNode, LeafNode
from repro.index.search import ExactSearcher
from repro.index.sofa import SofaIndex
from repro.index.tree import BuildTimings, TreeIndex
from repro.transforms.sax import SAX
from repro.transforms.sfa import SFA

#: Magic string identifying a repro index snapshot directory.
FORMAT_MAGIC = "repro-index-snapshot"

#: Current snapshot layout version.  Bump on any incompatible layout change.
#: Version 2 (dynamic-maintenance subsystem) added the optional
#: delta/tombstone payload of dynamic indexes; version 3 (crash-safe storage)
#: added the per-payload file map + checksums, the whole-manifest checksum,
#: the save generation and the WAL position of dynamic snapshots.  v1/v2
#: snapshots still load (no checksums to verify).
FORMAT_VERSION = 3

#: Load-time payload verification modes (see :func:`load_tree`).
VERIFY_MODES = ("eager", "lazy", "off")

#: Names of the delta/tombstone arrays of a dynamic (v2+) snapshot.
_DYNAMIC_ARRAYS = ("delta_values", "delta_lower", "delta_upper",
                   "delta_alive", "base_alive")

#: Manifest file name inside a snapshot directory.
MANIFEST_NAME = "manifest.json"

#: Arrays that are memory-mapped under ``mmap=True`` (the large, row-major
#: payloads sliced or gathered wholesale at query time).  Everything else is
#: small structure state that load-time reconstruction walks element-wise.
_MMAP_ARRAYS = frozenset({
    "values",
    "leaf_words",
    "series_lower",
    "series_upper",
    "series_rows",
    "leaf_lower",
    "leaf_upper",
})

#: Summarization registry: manifest type name -> class with snapshot support.
_SUMMARIZATIONS = {"SAX": SAX, "SFA": SFA}

#: Index-wrapper registry: manifest index_type -> wrapper class (``tree``
#: snapshots have no wrapper and are handled separately).
_WRAPPERS = {"sofa": SofaIndex, "messi": MessiIndex}


# ------------------------------------------------------------------ checksums


def _crc32_hex(data: bytes) -> str:
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"


def _npy_bytes(array: np.ndarray) -> bytes:
    """The exact ``.npy`` serialization of an array (checksummed as written)."""
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array))
    return buffer.getvalue()


def _file_crc32_hex(path: Path, chunk_size: int = 1 << 22) -> str:
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return f"{crc & 0xFFFFFFFF:08x}"


def manifest_checksum(manifest: dict) -> str:
    """CRC-32 of the manifest's canonical JSON, ``manifest_checksum`` excluded.

    The canonical form (sorted keys, compact separators) makes the checksum
    independent of on-disk formatting, so a manifest survives pretty-printing
    round trips but any *semantic* edit — flipped version, altered checksum
    table, truncated array list — is detected.
    """
    body = {key: value for key, value in manifest.items()
            if key != "manifest_checksum"}
    data = json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _crc32_hex(data)


def stamp_manifest_checksum(manifest: dict) -> dict:
    """Set ``manifest_checksum`` to match the manifest's current content.

    Exposed for tests and tools that rewrite manifests deliberately (version
    probes, fixture regeneration): after any edit, re-stamp so the edit is
    distinguishable from corruption.
    """
    manifest["manifest_checksum"] = manifest_checksum(manifest)
    return manifest


def _manifest_bytes(manifest: dict) -> bytes:
    return (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8")


# --------------------------------------------------------------------- saving


def _json_safe(mapping: dict) -> dict:
    """Best-effort JSON-serializable copy of a metadata dict (drops the rest)."""
    safe = {}
    for key, value in mapping.items():
        try:
            json.dumps({str(key): value})
        except (TypeError, ValueError):
            continue
        safe[str(key)] = value
    return safe


def _flatten_tree(tree: TreeIndex) -> dict[str, np.ndarray]:
    """Flatten the node forest into preorder structure arrays.

    Node ``0..num_nodes-1`` enumerate every node of every root subtree in
    preorder (children always after their parent), so reconstruction can
    rebuild bottom-up with one reversed pass.  Leaves carry their position in
    the leaf directory (``node_leaf``); inner nodes carry child links.
    """
    word_length = tree.summarization.bins.num_dimensions
    nodes = []
    node_of = {}
    root_keys = []
    root_nodes = []
    for key, subtree in tree.root_children.items():
        root_keys.append(key)
        root_nodes.append(len(nodes))
        for node in subtree.iter_nodes():
            node_of[id(node)] = len(nodes)
            nodes.append(node)

    num_nodes = len(nodes)
    node_symbols = np.empty((num_nodes, word_length), dtype=np.int64)
    node_bits = np.empty((num_nodes, word_length), dtype=np.int64)
    node_split = np.full(num_nodes, -1, dtype=np.int64)
    node_left = np.full(num_nodes, -1, dtype=np.int64)
    node_right = np.full(num_nodes, -1, dtype=np.int64)
    node_leaf = np.full(num_nodes, -1, dtype=np.int64)
    for position, node in enumerate(nodes):
        node_symbols[position] = node.symbols
        node_bits[position] = node.bits
        if node.is_leaf():
            node_leaf[position] = tree.leaf_position(node)
        else:
            node_split[position] = node.split_dimension
            if node.left is not None:
                node_left[position] = node_of[id(node.left)]
            if node.right is not None:
                node_right[position] = node_of[id(node.right)]

    (series_lower, series_upper, series_rows,
     _leaf_offsets, leaf_sizes) = tree.series_directory()
    return {
        "node_symbols": node_symbols,
        "node_bits": node_bits,
        "node_split": node_split,
        "node_left": node_left,
        "node_right": node_right,
        "node_leaf": node_leaf,
        "root_keys": np.asarray(root_keys, dtype=np.int64).reshape(
            len(root_keys), word_length),
        "root_nodes": np.asarray(root_nodes, dtype=np.int64),
        "leaf_sizes": np.asarray(leaf_sizes, dtype=np.int64),
        "leaf_lower": tree._leaf_lower,
        "leaf_upper": tree._leaf_upper,
        "series_lower": series_lower,
        "series_upper": series_upper,
        "series_rows": np.asarray(series_rows, dtype=np.int64),
        "leaf_words": np.vstack([leaf.words for leaf in tree.leaf_nodes]),
    }


def _existing_snapshot_manifest(path: Path) -> "dict | None":
    """The manifest of an existing snapshot at ``path``, or ``None``.

    Raises the refusal error for non-empty directories that are not (or no
    longer) valid snapshots — overwriting them in place would have no safe
    commit protocol.
    """
    if not path.exists():
        return None
    if not path.is_dir():
        raise IndexError_(f"snapshot target {path} exists and is not a directory")
    if (path / MANIFEST_NAME).is_file():
        try:
            return read_manifest(path)
        except IndexError_ as error:
            raise IndexError_(
                f"refusing to overwrite {path}: its manifest is unreadable "
                f"({error}); delete the directory to re-save from scratch"
            ) from None
    if any(path.iterdir()):
        raise IndexError_(
            f"refusing to write snapshot into non-empty directory {path} "
            "that is not an existing snapshot"
        )
    return None


def _commit_fresh(path: Path, files: dict[str, bytes],
                  manifest: dict) -> None:
    """Write a brand-new snapshot via a temp sibling + one atomic rename."""
    manifest["generation"] = 1
    stamp_manifest_checksum(manifest)
    staging = path.parent / f".{path.name}.saving"
    fsio.rmtree(staging)
    fsio.mkdir(staging)
    try:
        for filename, data in files.items():
            fsio.write_bytes(staging / filename, data)
            fsio.fsync_path(staging / filename)
        fsio.write_bytes(staging / MANIFEST_NAME, _manifest_bytes(manifest))
        fsio.fsync_path(staging / MANIFEST_NAME)
        fsio.fsync_dir(staging)
    except StorageFullError:
        # Nothing committed yet — reclaim the staging bytes so the caller
        # can retry once space is freed, instead of holding the volume full.
        fsio.rmtree(staging)
        raise
    try:
        if path.exists():
            # Validated empty by _existing_snapshot_manifest; clear the husk
            # so the rename lands.  A crash in between leaves no snapshot
            # plus a complete staging dir — the "old" state was no snapshot
            # either way.
            fsio.rmtree(path)
        fsio.rename(staging, path)
        fsio.fsync_dir(path.parent)
    except StorageFullError:
        # Some filesystems report a full volume from the rename itself (new
        # directory entry).  After a successful rename the rmtree is a no-op;
        # before it, it reclaims the staging bytes — old-or-new either way.
        fsio.rmtree(staging)
        raise


def _commit_in_place(path: Path, files: dict[str, bytes], manifest: dict,
                     previous_manifest: dict) -> None:
    """Re-save over a live snapshot; the manifest rename is the commit point.

    New payloads land under names the committed manifest does not reference,
    so readers of the old generation are never disturbed; after the atomic
    manifest swap, files the new manifest does not reference are unlinked
    (their inodes stay alive for already-open mmaps).
    """
    stamp_manifest_checksum(manifest)
    temporary = path / (MANIFEST_NAME + ".tmp")
    try:
        for filename, data in files.items():
            fsio.write_bytes(path / filename, data)
            fsio.fsync_path(path / filename)
        fsio.write_bytes(temporary, _manifest_bytes(manifest))
        fsio.fsync_path(temporary)
    except StorageFullError:
        # The committed manifest still references only the old generation's
        # payloads; unlink the uncommitted generation files (all written
        # under generation-suffixed names) to give the space back.
        for filename in files:
            fsio.unlink(path / filename)
        fsio.unlink(temporary)
        raise
    try:
        fsio.rename(temporary, path / MANIFEST_NAME)
    except StorageFullError:
        # The rename itself can report a full volume (new directory entry);
        # the old manifest is still the committed one, so drop the
        # uncommitted generation exactly as above.
        for filename in files:
            fsio.unlink(path / filename)
        fsio.unlink(temporary)
        raise
    fsio.fsync_dir(path)
    referenced = set(files) | {MANIFEST_NAME}
    for entry in sorted(path.iterdir()):
        if entry.name.endswith(".npy") and entry.name not in referenced:
            fsio.unlink(entry)


def save_tree(tree: TreeIndex, path: "str | Path",
              index_type: str = "tree",
              extra_arrays: "dict[str, np.ndarray] | None" = None,
              extra_manifest: "dict | None" = None) -> Path:
    """Write a built :class:`TreeIndex` as a crash-consistent snapshot.

    Returns the snapshot path.  ``index_type`` records which wrapper the
    snapshot restores to (``"sofa"``, ``"messi"`` or the bare ``"tree"``).
    ``extra_arrays``/``extra_manifest`` let :func:`save_dynamic` persist the
    delta/tombstone payload and its manifest section next to the base tree.

    The save commits atomically: a fresh snapshot appears via one directory
    rename, an in-place re-save via one manifest rename — a crash at any
    point leaves either the previous state or the complete new one (see the
    module docstring for the protocol).
    """
    if not tree.is_built:
        raise IndexError_("only a built index can be saved")
    if index_type != "tree" and index_type not in _WRAPPERS:
        raise IndexError_(f"unknown index_type '{index_type}'")
    summarization = tree.summarization
    type_name = type(summarization).__name__
    if type_name not in _SUMMARIZATIONS:
        raise IndexError_(
            f"summarization {type_name} does not support snapshots"
        )
    summarization_config, summarization_arrays = summarization.snapshot_state()

    path = Path(path)
    previous_manifest = _existing_snapshot_manifest(path)

    arrays = dict(_flatten_tree(tree))
    arrays["values"] = tree.dataset.values
    for name, array in summarization_arrays.items():
        arrays[f"summarization_{name}"] = array
    if extra_arrays:
        overlap = set(extra_arrays) & set(arrays)
        if overlap:
            raise IndexError_(
                f"extra snapshot arrays clash with tree arrays: {sorted(overlap)}"
            )
        arrays.update(extra_arrays)

    generation = 1 if previous_manifest is None else (
        int(previous_manifest.get("generation", 1)) + 1)
    suffix = "" if previous_manifest is None else f".g{generation}"
    payloads: dict[str, bytes] = {}
    file_map: dict[str, str] = {}
    checksums: dict[str, str] = {}
    for name, array in arrays.items():
        data = _npy_bytes(array)
        filename = f"{name}{suffix}.npy"
        payloads[filename] = data
        file_map[name] = filename
        checksums[name] = _crc32_hex(data)

    manifest = {
        "format": FORMAT_MAGIC,
        "version": FORMAT_VERSION,
        "index_type": index_type,
        "generation": generation,
        "files": file_map,
        "checksums": checksums,
        "tree": {
            "leaf_size": tree.leaf_size,
            "split_policy": tree.split_policy,
            "transform_chunks": tree.transform_chunks,
            "num_series": tree.num_series,
            "series_length": tree.dataset.series_length,
            "num_leaves": len(tree.leaf_nodes),
        },
        "summarization": {"type": type_name, **summarization_config},
        "dataset": {
            "name": tree.dataset.name,
            "metadata": _json_safe(tree.dataset.metadata),
        },
        "timings": {
            "learn_time": tree.timings.learn_time,
            "transform_chunk_times": list(tree.timings.transform_chunk_times),
            "subtree_times": list(tree.timings.subtree_times),
            "wall_time": tree.timings.wall_time,
        },
        "arrays": sorted(arrays),
    }
    if extra_manifest:
        manifest.update(extra_manifest)

    if previous_manifest is None:
        _commit_fresh(path, payloads, manifest)
    else:
        _commit_in_place(path, payloads, manifest, previous_manifest)
    return path


# -------------------------------------------------------------------- loading


def read_manifest(path: "str | Path") -> dict:
    """Read and validate a snapshot manifest (magic, version, checksum)."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise IndexError_(
            f"{path} is not an index snapshot (missing {MANIFEST_NAME})"
        )
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise IndexError_(f"unreadable snapshot manifest {manifest_path}: {error}") from None
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_MAGIC:
        raise IndexError_(
            f"{path} is not an index snapshot (bad or missing format magic)"
        )
    version = manifest.get("version")
    if not isinstance(version, int) or version < 1:
        raise IndexError_(f"snapshot {path} has an invalid format version: {version!r}")
    if version > FORMAT_VERSION:
        raise IndexError_(
            f"snapshot {path} uses format version {version}, but this library "
            f"only supports versions up to {FORMAT_VERSION}; upgrade the "
            "library or re-save the index with this version"
        )
    stored = manifest.get("manifest_checksum")
    if stored is not None and stored != manifest_checksum(manifest):
        raise CorruptionError(
            f"snapshot manifest {manifest_path} fails its checksum "
            f"(stored {stored}, computed {manifest_checksum(manifest)}); "
            "the manifest is corrupt or was edited without re-stamping"
        )
    required = {
        "arrays": (),
        "summarization": ("type",),
        "tree": ("leaf_size", "split_policy", "transform_chunks", "num_leaves"),
    }
    for key, subkeys in required.items():
        section = manifest.get(key)
        if section is None:
            raise IndexError_(
                f"snapshot {path} manifest is missing required key '{key}'"
            )
        for subkey in subkeys:
            if subkey not in section:
                raise IndexError_(
                    f"snapshot {path} manifest is missing required key "
                    f"'{key}.{subkey}'"
                )
    return manifest


def _check_verify(verify: str) -> str:
    if verify not in VERIFY_MODES:
        raise InvalidParameterError(
            f"verify must be one of {VERIFY_MODES}, got {verify!r}")
    return verify


def _load_arrays(path: Path, names: list[str], manifest: dict, mmap: bool,
                 verify: str) -> dict[str, np.ndarray]:
    """Open every named array, verifying per-file checksums as configured.

    ``verify="eager"`` checksums every payload (reads all bytes, even the
    ones that would otherwise be lazily paged in); ``"lazy"`` checksums only
    the payloads this load materializes anyway — with ``mmap=True`` the big
    row-major matrices are skipped, keeping warm loads O(structure) cheap.
    Missing and truncated files raise typed errors naming the file.
    """
    files = manifest.get("files") or {}
    checksums = manifest.get("checksums") or {}
    arrays = {}
    for name in names:
        filename = files.get(name, f"{name}.npy")
        array_path = path / filename
        if not array_path.is_file():
            raise IndexError_(f"snapshot {path} is missing array file {filename}")
        use_mmap = mmap and name in _MMAP_ARRAYS
        expected = checksums.get(name)
        if expected is not None and (verify == "eager"
                                     or (verify == "lazy" and not use_mmap)):
            actual = _file_crc32_hex(array_path)
            if actual != expected:
                raise CorruptionError(
                    f"snapshot array file {array_path} fails its checksum "
                    f"(stored {expected}, computed {actual}); the payload is "
                    "corrupt — restore the snapshot or re-save the index"
                )
        try:
            arrays[name] = np.load(array_path,
                                   mmap_mode="r" if use_mmap else None)
        except (ValueError, OSError, EOFError) as error:
            raise CorruptionError(
                f"snapshot array file {array_path} is truncated or not a "
                f"valid .npy payload: {error}"
            ) from None
    return arrays


def _restore_summarization(manifest: dict, arrays: dict):
    config = dict(manifest["summarization"])
    type_name = config.pop("type", None)
    summarization_cls = _SUMMARIZATIONS.get(type_name)
    if summarization_cls is None:
        raise IndexError_(f"snapshot uses unknown summarization type '{type_name}'")
    prefix = "summarization_"
    state = {name[len(prefix):]: array for name, array in arrays.items()
             if name.startswith(prefix)}
    return summarization_cls.from_snapshot(config, state)


def _restore_nodes(arrays: dict, leaf_payloads: list[LeafNode]) -> list:
    """Rebuild every node object from the preorder structure arrays.

    ``leaf_payloads`` holds the ready LeafNode of each leaf-directory
    position; the reversed preorder pass guarantees both children exist by the
    time their parent is constructed.  The link columns are converted to
    Python lists up front: element-wise numpy (worse, memmap) scalar access
    inside the loop would dominate load time on degenerate trees with
    thousands of nodes.
    """
    node_symbols = np.asarray(arrays["node_symbols"])
    node_bits = np.asarray(arrays["node_bits"])
    node_split = np.asarray(arrays["node_split"]).tolist()
    node_left = np.asarray(arrays["node_left"]).tolist()
    node_right = np.asarray(arrays["node_right"]).tolist()
    node_leaf = np.asarray(arrays["node_leaf"]).tolist()
    num_nodes = node_symbols.shape[0]
    nodes: list = [None] * num_nodes
    for position in range(num_nodes - 1, -1, -1):
        leaf_id = node_leaf[position]
        if leaf_id >= 0:
            nodes[position] = leaf_payloads[leaf_id]
        else:
            left = node_left[position]
            right = node_right[position]
            nodes[position] = InnerNode(
                symbols=node_symbols[position],
                bits=node_bits[position],
                split_dimension=node_split[position],
                left=nodes[left] if left >= 0 else None,
                right=nodes[right] if right >= 0 else None,
            )
    return nodes


def load_tree(path: "str | Path", mmap: bool = True,
              manifest: dict | None = None, verify: str = "lazy") -> TreeIndex:
    """Load a snapshot back into a fully built :class:`TreeIndex`.

    With ``mmap=True`` (the default) the value matrix, word matrix and
    interval matrices are memory-mapped read-only; leaf payloads become
    zero-copy row slices of those maps, so loading touches only the structure
    arrays and the first query pays the page-in cost of exactly the data it
    prunes down to.  ``verify`` controls payload checksum verification:
    ``"eager"`` checks everything, ``"lazy"`` (default) checks what the load
    materializes anyway, ``"off"`` skips checks.
    """
    path = Path(path)
    _check_verify(verify)
    if manifest is None:
        manifest = read_manifest(path)
    arrays = _load_arrays(path, list(manifest["arrays"]), manifest,
                          mmap=mmap, verify=verify)
    summarization = _restore_summarization(manifest, arrays)

    tree_config = manifest["tree"]
    tree = TreeIndex(summarization,
                     leaf_size=int(tree_config["leaf_size"]),
                     split_policy=tree_config["split_policy"],
                     transform_chunks=int(tree_config["transform_chunks"]))

    dataset_config = manifest.get("dataset", {})
    tree.dataset = Dataset(arrays["values"],
                           name=dataset_config.get("name", "dataset"),
                           normalize=False,
                           metadata=dict(dataset_config.get("metadata", {})),
                           validate=False)

    leaf_sizes = np.ascontiguousarray(arrays["leaf_sizes"], dtype=np.int64)
    leaf_offsets = np.concatenate([[0], np.cumsum(leaf_sizes[:-1])]).astype(np.int64)
    node_symbols = np.asarray(arrays["node_symbols"])
    node_bits = np.asarray(arrays["node_bits"])
    node_leaf = np.asarray(arrays["node_leaf"])
    # Slice leaf payloads from base-class ndarray *views* of the maps: the
    # views share the mmap buffer (still zero-copy) but skip the np.memmap
    # subclass slicing overhead, which dominates on thousands of leaves.
    leaf_words = np.asarray(arrays["leaf_words"])
    series_lower = np.asarray(arrays["series_lower"])
    series_upper = np.asarray(arrays["series_upper"])
    series_rows = np.asarray(arrays["series_rows"])

    num_leaves = int(tree_config["num_leaves"])
    leaf_payloads: list[LeafNode | None] = [None] * num_leaves
    leaf_positions = np.flatnonzero(node_leaf >= 0)
    leaf_ids = node_leaf[leaf_positions].tolist()
    starts = leaf_offsets.tolist()
    sizes = leaf_sizes.tolist()
    for position, leaf_id in zip(leaf_positions.tolist(), leaf_ids):
        start = starts[leaf_id]
        stop = start + sizes[leaf_id]
        leaf_payloads[leaf_id] = LeafNode(
            symbols=node_symbols[position],
            bits=node_bits[position],
            indices=series_rows[start:stop],
            words=leaf_words[start:stop],
            lower=series_lower[start:stop],
            upper=series_upper[start:stop],
        )
    if any(leaf is None for leaf in leaf_payloads):
        raise IndexError_(f"snapshot {path} is corrupt: leaf directory and "
                          "node arrays disagree")

    nodes = _restore_nodes(arrays, leaf_payloads)
    root_keys = np.asarray(arrays["root_keys"]).tolist()
    root_nodes = np.asarray(arrays["root_nodes"]).tolist()
    tree.root_children = {
        tuple(key): nodes[node] for key, node in zip(root_keys, root_nodes)
    }

    # Install the leaf directory directly from the stored arrays (bit-identical
    # to what _build_leaf_directory would recompute, without touching the data).
    tree.leaf_nodes = list(leaf_payloads)
    tree._leaf_lower = arrays["leaf_lower"]
    tree._leaf_upper = arrays["leaf_upper"]
    tree._leaf_positions = {id(leaf): position
                            for position, leaf in enumerate(tree.leaf_nodes)}
    tree._leaf_sizes = leaf_sizes
    tree._leaf_offsets = leaf_offsets
    tree._series_lower = series_lower
    tree._series_upper = series_upper
    tree._series_rows = series_rows

    # Words in dataset-row order (scatter back from leaf order).
    words = np.empty_like(np.asarray(leaf_words))
    words[np.asarray(series_rows)] = leaf_words
    tree._words = words

    timings = manifest.get("timings", {})
    tree.timings = BuildTimings(
        learn_time=float(timings.get("learn_time", 0.0)),
        transform_chunk_times=[float(t) for t in
                               timings.get("transform_chunk_times", [])],
        subtree_times=[float(t) for t in timings.get("subtree_times", [])],
        wall_time=float(timings.get("wall_time", 0.0)),
    )
    return tree


# ----------------------------------------------------------- wrapper indexes


def save_index(index: "SofaIndex | MessiIndex | TreeIndex",
               path: "str | Path") -> Path:
    """Save any supported index (wrapper, bare tree or dynamic) as a snapshot."""
    from repro.index.dynamic import DynamicIndex

    if isinstance(index, DynamicIndex):
        index.save(path)
        return Path(path)
    if isinstance(index, TreeIndex):
        return save_tree(index, path, index_type="tree")
    for index_type, wrapper_cls in _WRAPPERS.items():
        if isinstance(index, wrapper_cls):
            if not index.is_built:
                raise IndexError_("only a built index can be saved")
            return save_tree(index.tree, path, index_type=index_type)
    raise IndexError_(f"cannot snapshot object of type {type(index).__name__}")


def load_index(path: "str | Path", mmap: bool = True,
               expected_type: str | None = None, verify: str = "lazy"):
    """Load a snapshot into the index object it was saved from.

    Returns a :class:`SofaIndex`, :class:`MessiIndex`, bare
    :class:`TreeIndex` or — for dynamic (mid-ingest) snapshots — a
    :class:`~repro.index.dynamic.DynamicIndex`, according to the manifest.
    ``expected_type`` (one of ``"sofa"``, ``"messi"``, ``"tree"``) makes
    mismatches a clear error — used by ``SofaIndex.load`` /
    ``MessiIndex.load``.  A static loader refuses a dynamic snapshot with
    pending writes rather than silently dropping them.  ``verify`` is the
    payload checksum mode (see :func:`load_tree`).
    """
    manifest = read_manifest(path)
    index_type = manifest.get("index_type", "tree")
    if expected_type is not None and index_type != expected_type:
        raise IndexError_(
            f"snapshot {path} holds a '{index_type}' index, not "
            f"'{expected_type}'; use the matching loader or repro.load_index"
        )
    dynamic_section = manifest.get("dynamic")
    if dynamic_section is not None:
        pending = (int(dynamic_section.get("delta_count", 0))
                   + int(dynamic_section.get("base_dead", 0)))
        if expected_type is None:
            return load_dynamic(path, mmap=mmap, manifest=manifest,
                                verify=verify)
        if pending:
            raise IndexError_(
                f"snapshot {path} holds a dynamic index with pending writes "
                f"(buffered inserts or tombstones); load it with "
                "DynamicIndex.load or repro.load_index to keep them"
            )
    tree = load_tree(path, mmap=mmap, manifest=manifest, verify=verify)
    if index_type == "tree":
        return tree
    wrapper_cls = _WRAPPERS.get(index_type)
    if wrapper_cls is None:
        raise IndexError_(f"snapshot {path} holds unknown index_type '{index_type}'")
    index = wrapper_cls.__new__(wrapper_cls)
    index.summarization = tree.summarization
    index.tree = tree
    index._searcher = ExactSearcher(tree)
    return index


# ------------------------------------------------------------ dynamic (v2+)


def save_dynamic(dynamic, path: "str | Path") -> Path:
    """Write a :class:`~repro.index.dynamic.DynamicIndex` snapshot.

    The base tree is stored exactly like a static snapshot; the delta buffer
    (values + quantization intervals + aliveness) and the base tombstone set
    ride along as extra arrays, described by a ``dynamic`` manifest section.
    When the index has a write-ahead log attached, the manifest records the
    last WAL sequence number the snapshot covers (``wal.applied_lsn``), so
    recovery replays only newer records.
    """
    state = dynamic._state
    delta_count = state.delta_count
    extra_arrays = {
        "delta_values": state.delta_values.view,
        "delta_lower": state.delta_lower.view,
        "delta_upper": state.delta_upper.view,
        "delta_alive": state.delta_alive.view,
        "base_alive": state.base_alive,
    }
    extra_manifest = {
        "dynamic": {
            "delta_count": delta_count,
            "base_dead": state.base_dead,
            "delta_dead": state.delta_dead,
        },
    }
    wal = getattr(dynamic, "_wal", None)
    if wal is not None:
        extra_manifest["wal"] = {"applied_lsn": int(wal.last_lsn)}
    return save_tree(state.tree, path, index_type=state.index_type,
                     extra_arrays=extra_arrays, extra_manifest=extra_manifest)


def load_dynamic(path: "str | Path", mmap: bool = True,
                 manifest: dict | None = None, verify: str = "lazy",
                 **options):
    """Load any snapshot into a :class:`~repro.index.dynamic.DynamicIndex`.

    Dynamic (v2+) snapshots restore the delta buffer and both tombstone sets
    — the serving process resumes mid-ingest with the same global row ids.
    Static snapshots, including every format-v1 snapshot, take the upgrade
    path: they load as a compacted index with an empty delta.  ``options``
    are forwarded to the ``DynamicIndex`` constructor.  To also replay a
    write-ahead log over the snapshot, use
    :meth:`~repro.index.dynamic.DynamicIndex.recover`.
    """
    from repro.index.dynamic import DynamicIndex

    path = Path(path)
    _check_verify(verify)
    if manifest is None:
        manifest = read_manifest(path)
    index_type = manifest.get("index_type", "tree")
    tree = load_tree(path, mmap=mmap, manifest=manifest, verify=verify)
    dynamic_section = manifest.get("dynamic")
    if dynamic_section is None:
        # v1 (or static v2+) upgrade path: a compacted index, empty delta.
        word_length = int(np.asarray(tree.summarization.weights).shape[0])
        return DynamicIndex._restore(
            tree, index_type,
            base_alive=np.ones(tree.num_series, dtype=bool),
            delta_values=np.empty((0, tree.dataset.series_length)),
            delta_lower=np.empty((0, word_length)),
            delta_upper=np.empty((0, word_length)),
            delta_alive=np.empty(0, dtype=bool),
            **options)
    arrays = _load_arrays(path, list(_DYNAMIC_ARRAYS), manifest,
                          mmap=False, verify=verify)
    delta_count = int(dynamic_section.get("delta_count",
                                          arrays["delta_values"].shape[0]))
    for name in ("delta_values", "delta_lower", "delta_upper", "delta_alive"):
        if arrays[name].shape[0] != delta_count:
            raise IndexError_(
                f"snapshot {path} is corrupt: {name} holds "
                f"{arrays[name].shape[0]} rows, manifest says {delta_count}"
            )
    return DynamicIndex._restore(
        tree, index_type,
        base_alive=np.asarray(arrays["base_alive"], dtype=bool),
        delta_values=np.asarray(arrays["delta_values"], dtype=np.float64),
        delta_lower=np.asarray(arrays["delta_lower"], dtype=np.float64),
        delta_upper=np.asarray(arrays["delta_upper"], dtype=np.float64),
        delta_alive=np.asarray(arrays["delta_alive"], dtype=bool),
        **options)
