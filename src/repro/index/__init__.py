"""Tree indexes: the shared MESSI-style tree, MESSI (iSAX) and SOFA (SFA)."""

from repro.index.buffers import SummaryBuffer, fill_buffers
from repro.index.messi import MessiIndex
from repro.index.node import InnerNode, LeafNode, Node, root_child_word
from repro.index.search import ExactSearcher, SearchResult, SearchStats
from repro.index.sofa import SofaIndex
from repro.index.stats import IndexStructureStats, compute_structure_stats
from repro.index.tree import BuildTimings, TreeIndex

__all__ = [
    "BuildTimings",
    "ExactSearcher",
    "IndexStructureStats",
    "InnerNode",
    "LeafNode",
    "MessiIndex",
    "Node",
    "SearchResult",
    "SearchStats",
    "SofaIndex",
    "SummaryBuffer",
    "TreeIndex",
    "compute_structure_stats",
    "fill_buffers",
    "root_child_word",
]
