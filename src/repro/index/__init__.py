"""Tree indexes and search engines: MESSI (iSAX), SOFA (SFA) and both the
per-query and the batched multi-query exact searchers.

Two engines answer exact k-NN queries over a built
:class:`~repro.index.tree.TreeIndex`:

* :class:`~repro.index.search.ExactSearcher` — one query at a time, the
  paper's exploratory-analysis scenario (``knn`` / ``nearest_neighbor`` /
  ``approximate_knn``).  ``knn(..., num_workers=n)`` drains the query's own
  surviving-leaf queue with ``n`` threads against a shared best-so-far
  (MESSI-style intra-query parallelism); answers are bit-identical for
  every worker count.
* :class:`~repro.index.batch_search.BatchSearcher` — whole query workloads at
  once (``knn_batch``).  It vectorizes the lower-bound kernels and distance
  GEMMs across queries as well as candidates, so throughput-oriented
  workloads (benchmark sweeps, production query batches) run several times
  faster than looping over ``knn`` while returning bit-identical results.
  ``ExactSearcher.knn_batch`` and the index wrappers delegate to it.

Prefer the batched engine whenever queries arrive in groups of a few dozen or
more; prefer the per-query engine (with intra-query workers on multi-core
machines) for single interactive lookups or when per-leaf work-item timings
feed the virtual-core simulator.  A batch smaller than the worker pool falls
back to intra-query workers automatically, so no core idles either way.

Both engines can serve a *mutating* collection through
:class:`~repro.index.dynamic.DynamicIndex`: buffered inserts and tombstone
deletes fused into the refinement loops, periodic compaction through the
parallel build pipeline, and mid-ingest snapshots (format v2).

Durability: snapshots are written crash-consistently (temp directory +
fsync + atomic rename; format v3 adds per-array and manifest checksums,
verified on load through the ``verify`` knob), and a
:class:`~repro.index.wal.WriteAheadLog` makes individual dynamic writes
survive a crash between snapshots — ``DynamicIndex.recover`` replays the
log over the last snapshot bit-identically.
"""

from repro.index.batch_search import BatchSearcher
from repro.index.buffers import SummaryBuffer, fill_buffers
from repro.index.dynamic import DeltaView, DynamicIndex
from repro.index.messi import MessiIndex
from repro.index.node import InnerNode, LeafNode, Node, root_child_word
from repro.index.persistence import (
    FORMAT_VERSION,
    load_dynamic,
    load_index,
    load_tree,
    read_manifest,
    save_dynamic,
    save_index,
    save_tree,
)
from repro.index.search import (
    ExactSearcher,
    SearchResult,
    SearchStats,
    SharedKnnHeap,
)
from repro.index.shard_health import (
    HEALTHY,
    QUARANTINED,
    SHARD_STATES,
    SUSPECT,
    HealthPolicy,
    RetryPolicy,
    ShardHealthBoard,
)
from repro.index.sharded import DEGRADED_MODES, ShardedIndex
from repro.index.sofa import SofaIndex
from repro.index.stats import (
    IndexStructureStats,
    compute_structure_stats,
    merge_search_stats,
    summarize_search_stats,
)
from repro.index.tree import BuildTimings, TreeIndex
from repro.index.wal import WalRecord, WriteAheadLog, read_records

__all__ = [
    "BatchSearcher",
    "BuildTimings",
    "DEGRADED_MODES",
    "DeltaView",
    "DynamicIndex",
    "ExactSearcher",
    "FORMAT_VERSION",
    "HEALTHY",
    "HealthPolicy",
    "IndexStructureStats",
    "InnerNode",
    "LeafNode",
    "MessiIndex",
    "Node",
    "QUARANTINED",
    "RetryPolicy",
    "SHARD_STATES",
    "SUSPECT",
    "SearchResult",
    "SearchStats",
    "ShardHealthBoard",
    "ShardedIndex",
    "SharedKnnHeap",
    "SofaIndex",
    "SummaryBuffer",
    "TreeIndex",
    "WalRecord",
    "WriteAheadLog",
    "compute_structure_stats",
    "fill_buffers",
    "load_dynamic",
    "load_index",
    "load_tree",
    "merge_search_stats",
    "read_manifest",
    "read_records",
    "root_child_word",
    "save_dynamic",
    "save_index",
    "save_tree",
    "summarize_search_stats",
]
