"""Fault-tolerant sharded scatter-gather over independent snapshot shards.

:class:`ShardedIndex` partitions a collection into ``N`` contiguous shards,
each an independently built and persisted snapshot directory served by its
own :class:`~repro.index.dynamic.DynamicIndex`.  Queries scatter over the
shards, search each one with the established exact engines, and gather the
per-shard candidates into one answer under the global ``(distance², row)``
total order.  The design goals, in order:

* **Bit-identity when healthy.**  With every shard answering, ``knn`` /
  ``knn_batch`` return exactly what one unsharded index over the same rows
  returns — same ids, same distances, same tie order.  The merge never
  trusts refinement-time distances: it recomputes the candidate union's
  distances with the same canonical ``einsum`` + ``lexsort`` procedure as
  :func:`~repro.index.search.finalize_result` (per-row results are
  independent of which other rows sit in the matrix), so selecting the top
  ``k`` of the union *is* the unsharded finalization.
* **Cross-shard pruning.**  Single-query ``knn`` hands every shard the same
  :class:`~repro.index.search.SharedKnnHeap` through a
  :class:`~repro.index.search._TandemHeap`: one shard's tightened
  best-so-far prunes every other shard's remaining work, exactly like the
  intra-query parallel engine's shared BSF — admissible because the
  published threshold never drops below the true global k-th distance and
  the tie-tolerant filters keep candidates *at* the threshold.
* **Fault isolation.**  A shard failure is retried with deterministic
  capped-exponential backoff (:class:`~repro.index.shard_health.RetryPolicy`)
  inside a per-shard slice of the query deadline; persistent failures
  (:class:`~repro.core.errors.CorruptionError`) and repeated transient ones
  trip the ``healthy → suspect → quarantined`` state machine
  (:class:`~repro.index.shard_health.ShardHealthBoard`), excluding the shard
  from subsequent scatters until a background probe readmits it.  Under the
  ``degraded="allow"`` policy the surviving shards still answer — flagged
  ``partial=True`` with ``coverage < 1`` — bit-identical to an index over
  just the surviving shards' rows; ``degraded="forbid"`` raises a typed
  :class:`~repro.core.errors.PartialResultError` instead.  No failure mode
  escapes the gather as an untyped exception, and a shard that hangs past
  the deadline is abandoned, never waited on.

Row identity: shard ``i`` owns the contiguous global ids
``offsets[i]..offsets[i+1]-1`` at build time; inserted rows take fresh
globally increasing ids in arrival order, so global ids match what one
unsharded :class:`~repro.index.dynamic.DynamicIndex` ingesting the same
sequence hands out.  Every shard keeps a sorted ``local id → global id``
array; shard-local compaction rewrites it through the engine's row mapping
(global ids are *stable* under sharded compaction) behind a seqlock-style
version counter, so a query racing a compaction retries with consistent ids
instead of mistranslating.
"""

from __future__ import annotations

import json
import operator
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from pathlib import Path

import numpy as np

from repro.core import fsio
from repro.core.errors import (
    CorruptionError,
    IndexError_,
    InvalidParameterError,
    PartialResultError,
    ReadOnlyIndexError,
    SearchError,
    ShardError,
    ValidationError,
)
from repro.core.normalization import znormalize, znormalize_batch
from repro.core.series import Dataset
from repro.index.dynamic import DynamicIndex, _resolve_tree
from repro.index.search import (
    SearchResult,
    SearchStats,
    SharedKnnHeap,
    resolve_deadline,
    validated_count,
    validated_query,
)
from repro.index.shard_health import (
    QUARANTINED,
    HealthPolicy,
    RetryPolicy,
    ShardHealthBoard,
)
from repro.index.stats import merge_search_stats
from repro.obs.metrics import get_registry
from repro.parallel.pool import WorkerPool

_REGISTRY = get_registry()
_SHARD_SCATTERS = _REGISTRY.counter(
    "repro_shard_scatters_total",
    "Scatter rounds issued by sharded queries (contamination reruns "
    "count as separate rounds).")
_SHARD_OUTCOMES = _REGISTRY.counter(
    "repro_shard_outcomes_total",
    "Per-shard scatter outcomes: answered, failed, or skipped "
    "(quarantined).", labelnames=("shard", "status"))
_SHARD_RETRIES = _REGISTRY.counter(
    "repro_shard_retries_total",
    "Transient-failure retries attempted against a shard.",
    labelnames=("shard",))
_SHARD_QUARANTINES = _REGISTRY.counter(
    "repro_shard_quarantines_total",
    "Times a shard entered quarantine.", labelnames=("shard",))
_SHARD_READMITS = _REGISTRY.counter(
    "repro_shard_readmits_total",
    "Times a quarantined shard passed a probe and was readmitted.",
    labelnames=("shard",))

_MANIFEST_NAME = "sharded.json"
_FORMAT_NAME = "repro-sharded-index"
SHARDED_FORMAT_VERSION = 1

#: Degraded-answer policies: ``allow`` serves partial answers (flagged in the
#: stats), ``forbid`` raises :class:`~repro.core.errors.PartialResultError`.
DEGRADED_MODES = ("allow", "forbid")


def _shard_dirname(index: int) -> str:
    return f"shard-{index:03d}"


class _Shard:
    """Runtime record of one shard: lazy engine, id map, seqlock version."""

    __slots__ = ("index", "path", "engine", "lock", "version", "globals_map",
                 "num_surviving_hint")

    def __init__(self, index: int, path: Path, globals_map: np.ndarray,
                 num_surviving_hint: int) -> None:
        self.index = index
        self.path = path
        self.engine: "DynamicIndex | None" = None
        self.lock = threading.Lock()
        # Seqlock: odd while a compaction rewrites the id map.  Readers
        # capture the (even) version, do their work, and retry when it moved.
        self.version = 0
        # Sorted local→global id map covering base + delta rows (tombstoned
        # ones included).  Replaced wholesale, never mutated in place, so a
        # reader's reference is always internally consistent.
        self.globals_map = globals_map
        self.num_surviving_hint = num_surviving_hint


class _Outcome:
    """What one shard contributed to one scatter: answer, failure, or skip."""

    __slots__ = ("shard", "status", "payload", "stats", "surviving", "error")

    def __init__(self, shard: int, status: str, payload=None, stats=None,
                 surviving: int = 0, error: "BaseException | None" = None) -> None:
        self.shard = shard
        self.status = status  # "answered" | "failed" | "skipped"
        self.payload = payload
        self.stats = stats
        self.surviving = surviving
        self.error = error

    @property
    def answered(self) -> bool:
        return self.status == "answered"


class _GlobalBestAdapter:
    """Offers a shard's refined candidates to the cross-shard best-so-far.

    Rows arrive shard-local; the adapter translates them through the shard's
    live id map before offering, so the shared heap's tie order is the
    *global* (distance², row) order.  It also records that the shard
    contributed offers at all — the gather uses that to detect when an
    ultimately-failed shard may have contaminated the shared threshold (see
    ``ShardedIndex.knn``).
    """

    __slots__ = ("_best", "_shard", "_offered")

    def __init__(self, best: SharedKnnHeap, shard: _Shard,
                 offered: "list[bool]") -> None:
        self._best = best
        self._shard = shard
        self._offered = offered

    @property
    def threshold(self) -> float:
        return self._best.threshold

    def offer_block(self, squared: np.ndarray, rows: np.ndarray) -> None:
        self._offered[self._shard.index] = True
        rows = np.asarray(rows, dtype=np.int64)
        self._best.offer_block(squared, self._shard.globals_map[rows])


class ShardedIndex:
    """Scatter-gather serving over independently persisted shards.

    Construct with :meth:`build` (partition + parallel build + persist) or
    :meth:`load` (attach to an existing sharded directory).  See the module
    docstring for the identity and degradation contracts.
    """

    def __init__(self, path, shards: "list[_Shard]", *, series_length: int,
                 next_global: int, index_type: str = "sofa",
                 degraded: str = "allow", retry: "RetryPolicy | None" = None,
                 health: "HealthPolicy | None" = None, verify: str = "eager",
                 mmap: bool = True, writable: bool = True,
                 gather_grace_s: float = 0.25,
                 engine_options: "dict | None" = None) -> None:
        if degraded not in DEGRADED_MODES:
            raise InvalidParameterError(
                f"degraded must be one of {DEGRADED_MODES}, got {degraded!r}")
        if not shards:
            raise InvalidParameterError("a sharded index needs at least one shard")
        self.path = Path(path)
        self._shards = shards
        self._series_length = int(series_length)
        self._next_global = int(next_global)
        self._index_type = index_type
        self._degraded = degraded
        self.retry = retry if retry is not None else RetryPolicy()
        self._health = health if health is not None else HealthPolicy()
        self._board = ShardHealthBoard(len(shards), self._health)
        self._verify = verify
        self._mmap = bool(mmap)
        self._writable = bool(writable)
        self._gather_grace_s = float(gather_grace_s)
        self._engine_options = dict(engine_options or {})
        self._write_lock = threading.Lock()
        self._next_insert_shard = 0
        self._executor: "ThreadPoolExecutor | None" = None
        self._executor_lock = threading.Lock()
        self._closed = False
        self._probe_thread: "threading.Thread | None" = None
        self._probe_thread_lock = threading.Lock()
        self._probe_wake = threading.Event()
        self._close_event = threading.Event()

    # ------------------------------------------------------------ build/load

    @classmethod
    def build(cls, values, path, *, num_shards: int, index_factory=None,
              num_workers: "int | None" = None, **load_options) -> "ShardedIndex":
        """Partition ``values`` into contiguous shards, build and persist each.

        Shards are built in parallel through the established
        :class:`~repro.parallel.pool.WorkerPool` (each shard's own build runs
        single-threaded, so the fan-out is the parallelism).  Every shard
        normalizes its rows exactly as one unsharded build over the full
        matrix would — per-series z-normalization is row-independent — which
        is half of the bit-identity contract; the other half is the gather
        (see :meth:`knn`).  ``index_factory`` supplies the per-shard index
        (default :class:`~repro.index.sofa.SofaIndex` with its defaults);
        ``load_options`` are forwarded to :meth:`load`.
        """
        matrix = np.asarray(values, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValidationError(
                f"build expects a non-empty 2-D matrix of series, got shape "
                f"{matrix.shape}")
        try:
            num_shards = operator.index(num_shards)
        except TypeError:
            raise InvalidParameterError(
                f"num_shards must be an integer, got {num_shards!r}") from None
        if num_shards < 1:
            raise InvalidParameterError(
                f"num_shards must be >= 1, got {num_shards}")
        if matrix.shape[0] < num_shards:
            raise InvalidParameterError(
                f"cannot split {matrix.shape[0]} series into {num_shards} "
                f"non-empty shards")
        if index_factory is None:
            from repro.index.sofa import SofaIndex

            index_factory = SofaIndex
        path = Path(path)
        fsio.mkdir(path)
        counts = np.full(num_shards, matrix.shape[0] // num_shards,
                         dtype=np.int64)
        counts[: matrix.shape[0] % num_shards] += 1
        offsets = np.concatenate([[0], np.cumsum(counts)])
        index_types: "list[str]" = [""] * num_shards

        def build_one(shard_index: int) -> None:
            from repro.index.persistence import save_index

            rows = matrix[offsets[shard_index]:offsets[shard_index + 1]]
            index = index_factory()
            index.build(Dataset(rows), num_workers=1)
            index_types[shard_index] = _resolve_tree(index)[1]
            save_index(index, path / _shard_dirname(shard_index))

        WorkerPool(num_workers).map(build_one, range(num_shards))
        manifest = {
            "format": _FORMAT_NAME,
            "version": SHARDED_FORMAT_VERSION,
            "num_shards": num_shards,
            "series_length": int(matrix.shape[1]),
            "index_type": index_types[0],
            "next_global": int(matrix.shape[0]),
            "shards": [
                {
                    "dir": _shard_dirname(i),
                    "globals": {"start": int(offsets[i]), "count": int(counts[i])},
                    "num_surviving": int(counts[i]),
                }
                for i in range(num_shards)
            ],
        }
        cls._write_manifest(path, manifest)
        return cls.load(path, **load_options)

    @classmethod
    def load(cls, path, *, degraded: str = "allow",
             retry: "RetryPolicy | None" = None,
             health: "HealthPolicy | None" = None, verify: str = "eager",
             mmap: bool = True, writable: bool = True, lazy: bool = True,
             gather_grace_s: float = 0.25, **engine_options) -> "ShardedIndex":
        """Attach to a sharded directory written by :meth:`build` / :meth:`save`.

        Shard engines load lazily by default: a shard that is corrupt on disk
        becomes a query-time failure that quarantines it (the fault-tolerant
        path) instead of failing the whole load.  ``lazy=False`` loads every
        engine up front — failures still quarantine rather than raise.
        ``engine_options`` are forwarded to every shard's
        :func:`~repro.index.persistence.load_dynamic` call.
        """
        path = Path(path)
        manifest = cls._read_manifest(path)
        shards = []
        for index, entry in enumerate(manifest["shards"]):
            globals_map = cls._globals_from_manifest(entry["globals"])
            shards.append(_Shard(index, path / entry["dir"], globals_map,
                                 int(entry.get("num_surviving",
                                               globals_map.shape[0]))))
        sharded = cls(path, shards,
                      series_length=int(manifest["series_length"]),
                      next_global=int(manifest["next_global"]),
                      index_type=manifest.get("index_type", "sofa"),
                      degraded=degraded, retry=retry, health=health,
                      verify=verify, mmap=mmap, writable=writable,
                      gather_grace_s=gather_grace_s,
                      engine_options=engine_options)
        if not lazy:
            for shard in shards:
                try:
                    sharded._engine(shard)
                except CorruptionError as error:
                    sharded._board.record_persistent(shard.index, error)
                    sharded._note_quarantine(shard.index)
                except Exception as error:  # noqa: BLE001 — quarantine, don't fail the load
                    sharded._board.record_transient(shard.index, error)
        return sharded

    # ------------------------------------------------------------ inspection

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def series_length(self) -> int:
        return self._series_length

    @property
    def index_type(self) -> str:
        return self._index_type

    @property
    def writable(self) -> bool:
        return self._writable

    @property
    def degraded(self) -> str:
        return self._degraded

    @property
    def num_surviving(self) -> int:
        """Live rows across all shards (loaded engines exactly; unloaded ones
        from their last persisted count)."""
        total = 0
        for shard in self._shards:
            engine = shard.engine
            total += engine.num_surviving if engine is not None \
                else shard.num_surviving_hint
        return total

    def __len__(self) -> int:
        return self.num_surviving

    def shard_states(self) -> "list[str]":
        return [entry["state"] for entry in self._board.report()]

    def health_report(self) -> dict:
        """JSON-ready per-shard health: the ``/healthz`` payload's substance."""
        shards = self._board.report()
        for entry, shard in zip(shards, self._shards):
            entry["loaded"] = shard.engine is not None
            entry["rows"] = int(shard.globals_map.shape[0])
        quarantined = sum(1 for entry in shards
                          if entry["state"] == QUARANTINED)
        return {
            "status": "degraded" if quarantined else "ok",
            "shards_total": len(shards),
            "quarantined": quarantined,
            "shards": shards,
        }

    # -------------------------------------------------------------- engines

    def _engine(self, shard: _Shard) -> DynamicIndex:
        engine = shard.engine
        if engine is not None:
            return engine
        with shard.lock:
            return self._engine_locked(shard)

    def _engine_locked(self, shard: _Shard) -> DynamicIndex:
        """Load (or return) a shard's engine; caller holds ``shard.lock``."""
        if shard.engine is None:
            engine = DynamicIndex.load(shard.path, mmap=self._mmap,
                                       verify=self._verify,
                                       **self._engine_options)
            expected = int(shard.globals_map.shape[0])
            actual = engine.num_base + engine.delta_count
            if actual != expected:
                engine.close()
                raise CorruptionError(
                    f"shard {shard.index} holds {actual} rows but the sharded "
                    f"manifest maps {expected}")
            shard.engine = engine
        return shard.engine

    # -------------------------------------------------------------- scatter

    def _executor_pool(self) -> ThreadPoolExecutor:
        executor = self._executor
        if executor is None:
            with self._executor_lock:
                executor = self._executor
                if executor is None:
                    executor = ThreadPoolExecutor(
                        max_workers=max(4, 2 * len(self._shards)),
                        thread_name_prefix="repro-shard")
                    self._executor = executor
        return executor

    def _scatter(self, attempt, deadline: "float | None",
                 presets: "dict[int, _Outcome] | None" = None) -> "list[_Outcome]":
        """Run ``attempt(shard, slice_deadline)`` on every eligible shard.

        Quarantined shards (and any with a preset outcome) are skipped.  The
        gather waits until the query deadline plus a small grace and then
        *abandons* unfinished shards — a wedged engine cannot hang the query;
        its thread is left to die on its own and the shard is charged a
        transient failure.  Every outcome is typed; nothing raises out of the
        scatter except through :meth:`_run_with_retries` re-packaging.
        """
        outcomes: "dict[int, _Outcome]" = dict(presets or {})
        tasks = {}
        executor = self._executor_pool()
        for shard in self._shards:
            if shard.index in outcomes:
                continue
            if self._board.is_quarantined(shard.index):
                outcomes[shard.index] = _Outcome(
                    shard.index, "skipped",
                    error=ShardError(f"shard {shard.index} is quarantined"))
                continue
            abandoned = threading.Event()
            future = executor.submit(self._run_with_retries, shard, attempt,
                                     deadline, abandoned)
            tasks[future] = (shard, abandoned)
        if tasks:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic()) \
                    + self._gather_grace_s
            done, not_done = futures_wait(set(tasks), timeout=timeout)
            for future in done:
                shard, _ = tasks[future]
                try:
                    outcomes[shard.index] = future.result()
                except Exception as error:  # pragma: no cover - retries are total
                    outcomes[shard.index] = _Outcome(
                        shard.index, "failed",
                        error=self._wrap_error(shard.index, error))
            for future in not_done:
                shard, abandoned = tasks[future]
                abandoned.set()
                future.cancel()
                error = ShardError(
                    f"shard {shard.index} did not answer before the query "
                    f"deadline")
                if self._board.record_transient(shard.index, error) \
                        == QUARANTINED:
                    self._note_quarantine(shard.index)
                outcomes[shard.index] = _Outcome(shard.index, "failed",
                                                 error=error)
        ordered = [outcomes[index] for index in range(len(self._shards))]
        _SHARD_SCATTERS.inc()
        for outcome in ordered:
            _SHARD_OUTCOMES.labels(shard=str(outcome.shard),
                                   status=outcome.status).inc()
        return ordered

    def _run_with_retries(self, shard: _Shard, attempt,
                          deadline: "float | None",
                          abandoned: threading.Event) -> _Outcome:
        """One shard's attempt loop: classify, back off, retry, escalate.

        Transient failures retry up to ``retry.max_attempts`` times with
        deterministic backoff clamped to the remaining deadline; persistent
        ones (corruption) quarantine immediately and mark the engine for a
        reload.  Once the orchestrator abandons this task, health recording
        stops (the orchestrator already charged the shard) and the loop exits.
        Never raises: every exit path is a typed :class:`_Outcome`.
        """
        policy = self.retry
        last_error: "BaseException | None" = None
        for attempt_number in range(policy.max_attempts):
            if abandoned.is_set():
                break
            if self._board.is_quarantined(shard.index):
                return _Outcome(
                    shard.index, "skipped",
                    error=ShardError(
                        f"shard {shard.index} was quarantined mid-query"))
            slice_deadline = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # The *query's* budget ran out before this attempt — the
                    # shard did nothing wrong, so its health is not charged.
                    error = last_error or TimeoutError(
                        f"shard {shard.index}: query deadline expired before "
                        f"the shard could answer")
                    return _Outcome(shard.index, "failed",
                                    error=self._wrap_error(shard.index, error))
                attempts_left = policy.max_attempts - attempt_number
                slice_deadline = time.monotonic() + remaining / attempts_left
            try:
                payload, stats, surviving = attempt(shard, slice_deadline)
            except CorruptionError as error:
                with shard.lock:
                    shard.engine = None  # reload from disk before readmission
                if not abandoned.is_set():
                    self._board.record_persistent(shard.index, error)
                    self._note_quarantine(shard.index)
                return _Outcome(shard.index, "failed", error=error)
            except Exception as error:  # noqa: BLE001 — classified as transient
                last_error = error
                if abandoned.is_set():
                    break
                state = self._board.record_transient(shard.index, error)
                if state == QUARANTINED:
                    self._note_quarantine(shard.index)
                    return _Outcome(shard.index, "failed",
                                    error=self._wrap_error(shard.index, error))
                if attempt_number + 1 < policy.max_attempts:
                    limit = None
                    if deadline is not None:
                        limit = deadline - time.monotonic()
                    if limit is None or limit > 0:
                        time.sleep(policy.backoff_s(attempt_number, shard.index,
                                                    limit=limit))
                    _SHARD_RETRIES.labels(shard=str(shard.index)).inc()
                    continue
                return _Outcome(shard.index, "failed",
                                error=self._wrap_error(shard.index, error))
            else:
                if not abandoned.is_set():
                    self._board.record_success(shard.index)
                return _Outcome(shard.index, "answered", payload=payload,
                                stats=stats, surviving=surviving)
        error = last_error or ShardError(
            f"shard {shard.index} was abandoned by the gather")
        return _Outcome(shard.index, "failed",
                        error=self._wrap_error(shard.index, error))

    def _wrap_error(self, shard_index: int,
                    error: BaseException) -> ShardError:
        if isinstance(error, ShardError):
            return error
        wrapped = ShardError(
            f"shard {shard_index} failed after retries: "
            f"{type(error).__name__}: {error}")
        wrapped.__cause__ = error
        return wrapped

    # -------------------------------------------------------------- queries

    def knn(self, query, k: int = 1, num_workers: "int | None" = None,
            timeout_s: "float | None" = None,
            degraded: "str | None" = None,
            trace=None) -> SearchResult:
        """Exact k-NN by scatter-gather with cross-shard best-so-far pruning.

        All shards healthy: bit-identical to one unsharded index over the
        same rows.  ``K`` of ``N`` shards failed (after retries) under
        ``degraded="allow"``: bit-identical to an index over the surviving
        shards' rows, with ``stats.partial=True`` and ``stats.coverage ==
        (N-K)/N``; under ``"forbid"`` a typed
        :class:`~repro.core.errors.PartialResultError` raises instead (as it
        always does when *no* shard answers).  ``num_workers`` is accepted
        for engine-interface compatibility; the scatter itself is the
        parallelism (each shard searches single-threaded).

        If a shard fails *after* contributing candidates to the shared
        best-so-far, its offers may have over-tightened the pruning bound
        for the survivors; the gather detects that and re-scatters the
        surviving shards with a fresh heap (within the deadline), keeping
        the degraded-answer identity guarantee.

        ``trace`` records the scatter's phase spans (normalize, scatter,
        merge) plus one detail span per shard with its status and engine
        time; tracing never changes the answer.
        """
        wall_start = time.perf_counter()
        k = validated_count(k)
        query = validated_query(query, self._series_length)
        deadline = resolve_deadline(timeout_s)
        mode = self._degraded_mode(degraded)
        query_normalized = znormalize(query)
        if trace is not None:
            trace.add_phase("normalize", time.perf_counter() - wall_start)
            scatter_start = time.perf_counter()
        outcomes: "list[_Outcome]" = []
        presets: "dict[int, _Outcome] | None" = None
        for _ in range(3):  # initial scatter + bounded contamination reruns
            offered = [False] * len(self._shards)
            global_best = SharedKnnHeap(k)

            def attempt(shard: _Shard, slice_deadline: "float | None",
                        _offered=offered, _best=global_best):
                return self._attempt_knn(shard, slice_deadline, query, k,
                                         _best, _offered)

            outcomes = self._scatter(attempt, deadline, presets=presets)
            contaminated = [o for o in outcomes
                            if not o.answered and offered[o.shard]]
            if not contaminated:
                break
            answered = [o for o in outcomes if o.answered]
            if not answered:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break  # out of budget: serve what we have (timed-out answer)
            # Freeze the failures, re-ask only the shards that answered.
            presets = {o.shard: o for o in outcomes if not o.answered}
        if trace is not None:
            trace.add_phase("scatter", time.perf_counter() - scatter_start,
                            shards=len(outcomes),
                            answered=sum(1 for o in outcomes if o.answered))
            for outcome in outcomes:
                trace.add_detail(
                    f"shard{outcome.shard}",
                    outcome.stats.total_time if outcome.stats is not None
                    else 0.0,
                    answered=int(outcome.answered))
            merge_start = time.perf_counter()
        result = self._merge_knn(query_normalized, k, outcomes, mode)
        if trace is not None:
            trace.add_phase("merge", time.perf_counter() - merge_start,
                            candidates=int(result.indices.size))
        result.stats.wall_time_s = time.perf_counter() - wall_start
        return result

    def nearest_neighbor(self, query, num_workers: "int | None" = None,
                         timeout_s: "float | None" = None,
                         degraded: "str | None" = None) -> SearchResult:
        """Exact 1-NN over the surviving shards (see :meth:`knn`)."""
        return self.knn(query, k=1, num_workers=num_workers,
                        timeout_s=timeout_s, degraded=degraded)

    def _attempt_knn(self, shard: _Shard, slice_deadline: "float | None",
                     query: np.ndarray, k: int, global_best: SharedKnnHeap,
                     offered: "list[bool]"):
        """One attempt of one shard: search, translate ids, gather values.

        The seqlock dance: capture the shard's (even) version, run the
        query, and retry if a compaction moved it — the id translation and
        gathered values must come from one consistent generation.
        """
        engine = self._engine(shard)
        while True:
            version = shard.version
            if version & 1:  # compaction in progress: brief, bounded wait
                if slice_deadline is not None \
                        and time.monotonic() >= slice_deadline:
                    raise TimeoutError(
                        f"shard {shard.index}: deadline slice expired waiting "
                        f"for a compaction")
                time.sleep(0.0005)
                continue
            timeout_s = None
            if slice_deadline is not None:
                timeout_s = slice_deadline - time.monotonic()
                if timeout_s <= 0:
                    raise TimeoutError(
                        f"shard {shard.index}: deadline slice expired")
            surviving = engine.num_surviving
            effective_k = min(k, surviving)
            if effective_k == 0:
                if shard.version != version:
                    continue
                payload = (np.empty(0, dtype=np.int64),
                           np.empty((0, self._series_length)))
                return payload, SearchStats(num_series=0), 0
            adapter = _GlobalBestAdapter(global_best, shard, offered)
            result = engine.knn(query, k=effective_k, num_workers=1,
                                timeout_s=timeout_s, shared_best=adapter)
            values = engine.gather_values(result.indices)
            globals_map = shard.globals_map
            if shard.version != version:
                continue
            return ((globals_map[result.indices], values), result.stats,
                    surviving)

    def _merge_knn(self, query_normalized: np.ndarray, k: int,
                   outcomes: "list[_Outcome]", mode: str) -> SearchResult:
        """Gather per-shard candidates into the canonical global answer."""
        answered = [o for o in outcomes if o.answered]
        total = len(outcomes)
        partial = len(answered) < total
        if partial and (mode == "forbid" or not answered):
            raise self._partial_error(outcomes, mode)
        surviving_total = sum(o.surviving for o in answered)
        if k > surviving_total and not partial:
            raise SearchError(
                f"k={k} exceeds the number of surviving series "
                f"({surviving_total})")
        rows = np.concatenate([o.payload[0] for o in answered])
        values = np.concatenate([o.payload[1] for o in answered], axis=0)
        stats = self._merged_stats([o.stats for o in answered],
                                   surviving_total, total, len(answered))
        # Canonical finalization over the candidate union: per-row einsum
        # distances are independent of the other rows in the matrix, so the
        # lexsort's first k entries are exactly finalize_result's output for
        # one index over the union — the bit-identity argument.
        order = np.argsort(rows)
        rows_sorted = rows[order]
        difference = values[order] - query_normalized
        squared = np.einsum("ij,ij->i", difference, difference)
        keep = np.lexsort((rows_sorted, squared))[:min(k, rows_sorted.shape[0])]
        return SearchResult(indices=rows_sorted[keep],
                            distances=np.sqrt(squared[keep]), stats=stats)

    def knn_batch(self, queries, k: int = 1, num_workers: "int | None" = None,
                  timeout_s: "float | None" = None,
                  degraded: "str | None" = None) -> "list[SearchResult]":
        """Batched scatter-gather: one ``knn_batch`` per shard, merged per query.

        No cross-shard best-so-far here (the per-shard batched engines keep
        their own schedules); answers are still exact and bit-identical to
        the unsharded batch through the same candidate-union recomputation.
        """
        wall_start = time.perf_counter()
        k = validated_count(k)
        try:
            matrix = np.asarray(queries, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise ValidationError(f"queries are not numeric: {error}") from None
        if matrix.ndim != 2 or matrix.shape[1] != self._series_length:
            raise ValidationError(
                f"queries must be a 2-D matrix of series of length "
                f"{self._series_length}, got shape {matrix.shape}")
        if not np.isfinite(matrix).all():
            raise ValidationError("queries contain NaN or infinite values")
        deadline = resolve_deadline(timeout_s)
        mode = self._degraded_mode(degraded)
        if matrix.shape[0] == 0:
            return []
        normalized = znormalize_batch(matrix)

        def attempt(shard: _Shard, slice_deadline: "float | None"):
            return self._attempt_batch(shard, slice_deadline, matrix, k)

        outcomes = self._scatter(attempt, deadline)
        answered = [o for o in outcomes if o.answered]
        total = len(outcomes)
        partial = len(answered) < total
        if partial and (mode == "forbid" or not answered):
            raise self._partial_error(outcomes, mode)
        surviving_total = sum(o.surviving for o in answered)
        if k > surviving_total and not partial:
            raise SearchError(
                f"k={k} exceeds the number of surviving series "
                f"({surviving_total})")
        results = []
        for position in range(matrix.shape[0]):
            rows = np.concatenate([o.payload[position][0] for o in answered])
            values = np.concatenate([o.payload[position][1] for o in answered],
                                    axis=0)
            stats = self._merged_stats([o.stats[position] for o in answered],
                                       surviving_total, total, len(answered))
            order = np.argsort(rows)
            rows_sorted = rows[order]
            difference = values[order] - normalized[position]
            squared = np.einsum("ij,ij->i", difference, difference)
            keep = np.lexsort((rows_sorted, squared))[
                :min(k, rows_sorted.shape[0])]
            results.append(SearchResult(indices=rows_sorted[keep],
                                        distances=np.sqrt(squared[keep]),
                                        stats=stats))
        # Every result carries the batch's caller-observed wall time, the
        # same convention as BatchSearcher.knn_batch.
        wall_time = time.perf_counter() - wall_start
        for result in results:
            result.stats.wall_time_s = wall_time
        return results

    def _attempt_batch(self, shard: _Shard, slice_deadline: "float | None",
                       matrix: np.ndarray, k: int):
        engine = self._engine(shard)
        num_queries = matrix.shape[0]
        while True:
            version = shard.version
            if version & 1:
                if slice_deadline is not None \
                        and time.monotonic() >= slice_deadline:
                    raise TimeoutError(
                        f"shard {shard.index}: deadline slice expired waiting "
                        f"for a compaction")
                time.sleep(0.0005)
                continue
            timeout_s = None
            if slice_deadline is not None:
                timeout_s = slice_deadline - time.monotonic()
                if timeout_s <= 0:
                    raise TimeoutError(
                        f"shard {shard.index}: deadline slice expired")
            surviving = engine.num_surviving
            effective_k = min(k, surviving)
            if effective_k == 0:
                if shard.version != version:
                    continue
                empty = (np.empty(0, dtype=np.int64),
                         np.empty((0, self._series_length)))
                return ([empty] * num_queries,
                        [SearchStats(num_series=0)
                         for _ in range(num_queries)], 0)
            shard_results = engine.knn_batch(matrix, k=effective_k,
                                             num_workers=1,
                                             timeout_s=timeout_s)
            globals_map = shard.globals_map
            payload = [(globals_map[result.indices],
                        engine.gather_values(result.indices))
                       for result in shard_results]
            if shard.version != version:
                continue
            return payload, [result.stats for result in shard_results], \
                surviving

    def _merged_stats(self, parts: "list[SearchStats]", surviving_total: int,
                      shards_total: int, shards_answered: int) -> SearchStats:
        stats = SearchStats(num_series=surviving_total,
                            num_workers=max(1, shards_answered),
                            shards_total=shards_total,
                            shards_answered=shards_answered,
                            partial=shards_answered < shards_total)
        merge_search_stats(stats, parts)
        stats.approximate_time = sum(part.approximate_time for part in parts)
        stats.traversal_time = sum(part.traversal_time for part in parts)
        return stats

    def _partial_error(self, outcomes: "list[_Outcome]",
                       mode: str) -> PartialResultError:
        answered = sum(1 for o in outcomes if o.answered)
        failures = {o.shard: str(o.error) for o in outcomes if not o.answered}
        total = len(outcomes)
        if answered == 0:
            message = f"no shard answered (0 of {total})"
        else:
            message = (f"{total - answered} of {total} shards failed to "
                       f"answer and degraded results are forbidden by policy")
        return PartialResultError(message, shards_total=total,
                                  shards_answered=answered, failures=failures)

    def _degraded_mode(self, override: "str | None") -> str:
        mode = self._degraded if override is None else override
        if mode not in DEGRADED_MODES:
            raise InvalidParameterError(
                f"degraded must be one of {DEGRADED_MODES}, got {mode!r}")
        return mode

    # --------------------------------------------------------------- writes

    def _require_writable(self) -> None:
        if not self._writable:
            raise ReadOnlyIndexError(
                "this sharded index was loaded read-only; reload with "
                "writable=True to insert/delete/compact")

    def insert(self, series) -> int:
        """Route one series to a healthy shard; returns its global row id."""
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 1:
            raise IndexError_(
                f"insert expects a single 1-D series, got shape "
                f"{series.shape}; use insert_batch for matrices")
        return int(self.insert_batch(series[None, :])[0])

    def insert_batch(self, series_matrix) -> np.ndarray:
        """Route a batch to one healthy shard; returns the global row ids.

        Shards take turns (round-robin) so ingest spreads; a shard that
        fails the write is charged on the health board and the next healthy
        shard is tried, so a single bad shard cannot block ingest.  Global
        ids are handed out in arrival order — the same ids one unsharded
        dynamic index ingesting the same sequence would assign.
        """
        self._require_writable()
        try:
            matrix = np.asarray(series_matrix, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise ValidationError(
                f"inserted series are not numeric: {error}") from None
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValidationError(
                f"insert_batch expects a non-empty 2-D matrix of series, "
                f"got shape {matrix.shape}")
        with self._write_lock:
            order = [(self._next_insert_shard + step) % len(self._shards)
                     for step in range(len(self._shards))]
            last_error: "BaseException | None" = None
            for shard_index in order:
                if self._board.is_quarantined(shard_index):
                    continue
                shard = self._shards[shard_index]
                try:
                    ids = self._insert_into(shard, matrix)
                except ValidationError:
                    raise  # caller mistake, not a shard failure
                except CorruptionError as error:
                    last_error = error
                    with shard.lock:
                        shard.engine = None
                    self._board.record_persistent(shard_index, error)
                    self._note_quarantine(shard_index)
                except Exception as error:  # noqa: BLE001 — try the next shard
                    last_error = error
                    if self._board.record_transient(shard_index, error) \
                            == QUARANTINED:
                        self._note_quarantine(shard_index)
                else:
                    self._next_insert_shard = \
                        (shard_index + 1) % len(self._shards)
                    return ids
            error = ShardError(
                "no healthy shard could accept the insert"
                + (f" (last failure: {last_error})" if last_error else ""))
            if last_error is not None:
                error.__cause__ = last_error
            raise error

    def _insert_into(self, shard: _Shard, matrix: np.ndarray) -> np.ndarray:
        with shard.lock:
            engine = self._engine_locked(shard)
            count = matrix.shape[0]
            new_globals = self._next_global + np.arange(count, dtype=np.int64)
            previous = shard.globals_map
            # Extend the id map *before* the engine buffers the rows: a
            # concurrent query translating freshly visible local ids must
            # always find them mapped.
            shard.globals_map = np.concatenate([previous, new_globals])
            try:
                engine.insert_batch(matrix)
            except BaseException:
                shard.globals_map = previous
                raise
            self._next_global += count
            return new_globals

    def delete(self, row: int) -> None:
        """Tombstone a row by its global id (routed to its owning shard)."""
        self._require_writable()
        row = operator.index(row)
        with self._write_lock:
            for shard in self._shards:
                globals_map = shard.globals_map
                position = int(np.searchsorted(globals_map, row))
                if position < globals_map.shape[0] \
                        and int(globals_map[position]) == row:
                    with shard.lock:
                        engine = self._engine_locked(shard)
                        engine.delete(position)
                    return
            raise IndexError_(
                f"row {row} is not mapped by any shard of this index")

    def compact(self, num_workers: "int | None" = None) -> "dict[int, int]":
        """Compact every healthy shard in place; global ids are *stable*.

        Each shard's engine rebuild renumbers its local rows; the shard's
        id map is rewritten through the returned mapping behind the seqlock,
        so the global ids of surviving rows never change (unlike an
        unsharded compact) and racing queries retry instead of
        mistranslating.  Quarantined shards are skipped (they compact after
        readmission); shards with no surviving rows keep their tombstones.
        Returns ``{shard: rows dropped}`` for the shards compacted.
        """
        self._require_writable()
        dropped: "dict[int, int]" = {}
        with self._write_lock:
            for shard in self._shards:
                if self._board.is_quarantined(shard.index):
                    continue
                with shard.lock:
                    engine = self._engine_locked(shard)
                    if engine.num_surviving == 0:
                        continue
                    previous = shard.globals_map
                    shard.version += 1  # odd: queries wait out the rewrite
                    try:
                        mapping = engine.compact(num_workers=num_workers)
                        surviving_old = np.flatnonzero(mapping >= 0)
                        rewritten = np.empty(surviving_old.shape[0],
                                             dtype=np.int64)
                        rewritten[mapping[surviving_old]] = \
                            previous[surviving_old]
                        shard.globals_map = rewritten
                        shard.num_surviving_hint = engine.num_surviving
                    finally:
                        shard.version += 1  # even again, changed iff rewritten
                    dropped[shard.index] = int(previous.shape[0]
                                               - shard.globals_map.shape[0])
        return dropped

    # --------------------------------------------------------- health/probe

    def probe_shard(self, index: int) -> bool:
        """Probe one shard and readmit it on success; returns the verdict.

        Persistent failures reload the engine from disk first (a corrupt
        snapshot can only recover through a repair + reload); transient ones
        re-exercise the existing engine.  A passing probe answers a 1-NN
        query, so readmission means the shard actually serves again.
        """
        shard = self._shards[index]
        with shard.lock:
            if self._board.needs_reload(index):
                engine, shard.engine = shard.engine, None
                if engine is not None:
                    try:
                        engine.close()
                    except Exception:  # noqa: BLE001 — closing damaged state
                        pass
            try:
                engine = self._engine_locked(shard)
                if engine.num_surviving > 0:
                    probe_query = np.asarray(
                        engine.tree.dataset.values)[0]
                    engine.knn(probe_query, k=1, num_workers=1)
            except CorruptionError as error:
                shard.engine = None
                self._board.record_persistent(index, error)
                return False
            except Exception as error:  # noqa: BLE001 — probe failed, stay out
                self._board.record_transient(index, error)
                return False
        self._board.readmit(index)
        _SHARD_READMITS.labels(shard=str(index)).inc()
        return True

    def _note_quarantine(self, shard_index: "int | None" = None) -> None:
        """A shard just tripped: count it, make sure the probe loop runs."""
        if shard_index is not None:
            _SHARD_QUARANTINES.labels(shard=str(shard_index)).inc()
        if self._closed or not self._health.auto_probe:
            return
        with self._probe_thread_lock:
            if self._probe_thread is None or not self._probe_thread.is_alive():
                self._probe_thread = threading.Thread(
                    target=self._probe_loop, name="repro-shard-probe",
                    daemon=True)
                self._probe_thread.start()
        self._probe_wake.set()

    def _probe_loop(self) -> None:
        while not self._closed:
            quarantined = self._board.quarantined_indices()
            if not quarantined:
                self._probe_wake.wait()
                self._probe_wake.clear()
                continue
            for index in quarantined:
                if self._closed:
                    return
                try:
                    self.probe_shard(index)
                except Exception:  # noqa: BLE001 — the loop must survive
                    pass
            self._close_event.wait(self._health.probe_interval_s)

    # ---------------------------------------------------------- persistence

    def save(self) -> "ShardedIndex":
        """Persist every loaded shard's snapshot and the root manifest."""
        with self._write_lock:
            for shard in self._shards:
                if shard.engine is not None:
                    with shard.lock:
                        shard.engine.save(shard.path)
                        shard.num_surviving_hint = shard.engine.num_surviving
            self._write_manifest(self.path, self._manifest_dict())
        return self

    def _manifest_dict(self) -> dict:
        return {
            "format": _FORMAT_NAME,
            "version": SHARDED_FORMAT_VERSION,
            "num_shards": len(self._shards),
            "series_length": self._series_length,
            "index_type": self._index_type,
            "next_global": self._next_global,
            "shards": [
                {
                    "dir": shard.path.name,
                    "globals": self._globals_to_manifest(shard.globals_map),
                    "num_surviving": int(shard.num_surviving_hint),
                }
                for shard in self._shards
            ],
        }

    @staticmethod
    def _read_manifest(path: Path) -> dict:
        manifest_path = Path(path) / _MANIFEST_NAME
        try:
            payload = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise IndexError_(
                f"no sharded index at {path}: missing {_MANIFEST_NAME}"
            ) from None
        except (OSError, ValueError) as error:
            raise CorruptionError(
                f"unreadable sharded manifest at {manifest_path}: {error}"
            ) from None
        if not isinstance(payload, dict) \
                or payload.get("format") != _FORMAT_NAME:
            raise CorruptionError(
                f"{manifest_path} is not a sharded index manifest")
        if int(payload.get("version", 0)) > SHARDED_FORMAT_VERSION:
            raise IndexError_(
                f"sharded manifest version {payload.get('version')} is newer "
                f"than this library supports ({SHARDED_FORMAT_VERSION})")
        return payload

    @staticmethod
    def _write_manifest(path: Path, manifest: dict) -> None:
        # Temp-sibling + atomic rename: a crash leaves the old complete
        # manifest or the new one, never a torn mix (same protocol as the
        # snapshot layer, built from the fsio primitives so fault tests can
        # sweep it).
        temp = Path(path) / (_MANIFEST_NAME + ".tmp")
        final = Path(path) / _MANIFEST_NAME
        fsio.write_bytes(temp, json.dumps(manifest, indent=2).encode())
        fsio.fsync_path(temp)
        fsio.rename(temp, final)
        fsio.fsync_dir(path)

    @staticmethod
    def _globals_from_manifest(spec: dict) -> np.ndarray:
        if "ids" in spec:
            return np.asarray(spec["ids"], dtype=np.int64)
        start = int(spec["start"])
        return np.arange(start, start + int(spec["count"]), dtype=np.int64)

    @staticmethod
    def _globals_to_manifest(globals_map: np.ndarray) -> dict:
        globals_map = np.asarray(globals_map, dtype=np.int64)
        if globals_map.size == 0:
            return {"start": 0, "count": 0}
        start = int(globals_map[0])
        if np.array_equal(globals_map,
                          np.arange(start, start + globals_map.size)):
            return {"start": start, "count": int(globals_map.size)}
        return {"ids": [int(value) for value in globals_map]}

    def close(self) -> None:
        """Stop the probe loop, the scatter pool, and every loaded engine."""
        self._closed = True
        self._probe_wake.set()
        self._close_event.set()
        thread = self._probe_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=1.0)
        executor = self._executor
        if executor is not None:
            executor.shutdown(wait=False)
        for shard in self._shards:
            engine = shard.engine
            if engine is not None:
                try:
                    engine.close()
                except Exception:  # noqa: BLE001 — best-effort teardown
                    pass
