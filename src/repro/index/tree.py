"""The MESSI-style tree index, generic over a symbolic summarization.

MESSI (with SAX words) and SOFA (with SFA words) share the same index
structure: a root whose children are the 1-bit-per-dimension prefixes of the
words, binary inner nodes obtained by appending one bit to one dimension, and
leaves holding the full-resolution words plus pointers to the raw series.
The only differences are which summarization produces the words and which
per-dimension weights enter the lower bound — both are encapsulated in the
:class:`~repro.transforms.base.SymbolicSummarization` passed to the tree.

Construction follows the paper's two index stages (Figure 5):

1. summarize every series into full-resolution words (parallelisable in
   chunks), group them into per-root-child buffers;
2. build each root subtree independently from its buffer (parallelisable per
   subtree), splitting any node that exceeds ``leaf_size`` by appending one bit
   to the dimension that balances the two children best.

Timings of both stages are recorded per work item so the virtual-core
simulator can replay them for any number of workers (Figure 7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import IndexError_, InvalidParameterError
from repro.core.series import Dataset
from repro.core.simd import batch_lower_bound, batch_lower_bound_multi
from repro.index.buffers import SummaryBuffer, fill_buffers
from repro.index.node import InnerNode, LeafNode, Node, root_child_word
from repro.transforms.base import SymbolicSummarization

#: Node-splitting policies supported by the tree.
SPLIT_POLICIES = ("balanced", "round-robin")


@dataclass
class BuildTimings:
    """Measured single-threaded costs of every construction work item."""

    learn_time: float = 0.0
    transform_chunk_times: list[float] = field(default_factory=list)
    subtree_times: list[float] = field(default_factory=list)

    @property
    def transform_time(self) -> float:
        return float(sum(self.transform_chunk_times))

    @property
    def tree_time(self) -> float:
        return float(sum(self.subtree_times))

    @property
    def total_time(self) -> float:
        return self.learn_time + self.transform_time + self.tree_time


class TreeIndex:
    """A GEMINI tree index over symbolic words (the shared MESSI/SOFA core).

    Parameters
    ----------
    summarization:
        An *unfitted* symbolic summarization (``SAX`` for MESSI, ``SFA`` for
        SOFA).  ``build`` fits it on the indexed dataset.
    leaf_size:
        Maximum number of series per leaf before the leaf splits (20 000 in the
        paper; scaled-down datasets use smaller values).
    split_policy:
        ``"balanced"`` chooses the dimension whose next bit splits the node
        most evenly (the iSAX2.0/MESSI heuristic); ``"round-robin"`` cycles
        through dimensions in order.
    transform_chunks:
        Number of chunks the summarization stage is divided into; each chunk is
        one work item for the virtual-core simulator.
    """

    def __init__(self, summarization: SymbolicSummarization, leaf_size: int = 100,
                 split_policy: str = "balanced", transform_chunks: int = 36) -> None:
        if leaf_size < 1:
            raise InvalidParameterError(f"leaf_size must be >= 1, got {leaf_size}")
        if split_policy not in SPLIT_POLICIES:
            raise InvalidParameterError(
                f"split_policy must be one of {SPLIT_POLICIES}, got '{split_policy}'"
            )
        if transform_chunks < 1:
            raise InvalidParameterError("transform_chunks must be >= 1")
        self.summarization = summarization
        self.leaf_size = leaf_size
        self.split_policy = split_policy
        self.transform_chunks = transform_chunks

        self.dataset: Dataset | None = None
        self.root_children: dict[tuple[int, ...], Node] = {}
        self.timings: BuildTimings = BuildTimings()
        self._words: np.ndarray | None = None
        # Leaf directory: every leaf plus its node-level quantization intervals
        # stacked into two arrays so query-time leaf pruning is one batched
        # lower-bound kernel call (see ``leaf_lower_bounds``).
        self.leaf_nodes: list[LeafNode] = []
        self._leaf_lower: np.ndarray | None = None
        self._leaf_upper: np.ndarray | None = None
        self._leaf_positions: dict[int, int] = {}
        self._leaf_offsets: np.ndarray | None = None
        self._leaf_sizes: np.ndarray | None = None
        self._series_lower: np.ndarray | None = None
        self._series_upper: np.ndarray | None = None
        self._series_rows: np.ndarray | None = None

    # ------------------------------------------------------------ building

    @property
    def is_built(self) -> bool:
        return self.dataset is not None and bool(self.root_children)

    @property
    def num_series(self) -> int:
        if self.dataset is None:
            raise IndexError_("index has not been built yet")
        return self.dataset.num_series

    def build(self, dataset: Dataset) -> "TreeIndex":
        """Fit the summarization, summarize all series and grow the tree."""
        if not isinstance(dataset, Dataset):
            dataset = Dataset(np.asarray(dataset, dtype=np.float64))
        self.dataset = dataset
        timings = BuildTimings()

        start = time.perf_counter()
        self.summarization.fit(dataset)
        timings.learn_time = time.perf_counter() - start

        words = self._summarize_in_chunks(dataset, timings)
        self._words = words

        buffers = fill_buffers(words, self.summarization.bits)
        self.root_children = {}
        for buffer in buffers:
            start = time.perf_counter()
            subtree = self._build_subtree(buffer)
            timings.subtree_times.append(time.perf_counter() - start)
            self.root_children[buffer.key] = subtree
        self._build_leaf_directory()
        self.timings = timings
        return self

    def _build_leaf_directory(self) -> None:
        """Stack every leaf's node-level intervals for batched query pruning.

        The directory also keeps a flat, per-series view (intervals and dataset
        row of every indexed series, concatenated across leaves) used by the
        searcher when the tree degenerates into very small leaves.
        """
        self.leaf_nodes = self.leaves()
        lower_rows = []
        upper_rows = []
        for leaf in self.leaf_nodes:
            lower, upper = self.summarization.bins.intervals(leaf.symbols, leaf.bits)
            lower_rows.append(lower)
            upper_rows.append(upper)
        self._leaf_lower = np.vstack(lower_rows)
        self._leaf_upper = np.vstack(upper_rows)
        self._leaf_positions = {id(leaf): position
                                for position, leaf in enumerate(self.leaf_nodes)}
        self._leaf_sizes = np.array([leaf.size for leaf in self.leaf_nodes],
                                    dtype=np.int64)
        self._leaf_offsets = np.concatenate(
            [[0], np.cumsum(self._leaf_sizes[:-1])]).astype(np.int64)
        self._series_lower = np.vstack([leaf.lower for leaf in self.leaf_nodes])
        self._series_upper = np.vstack([leaf.upper for leaf in self.leaf_nodes])
        self._series_rows = np.concatenate([leaf.indices for leaf in self.leaf_nodes])

    @property
    def average_leaf_size(self) -> float:
        """Mean number of series per leaf (used to pick the refinement strategy)."""
        if not self.leaf_nodes:
            return 0.0
        return self.num_series / len(self.leaf_nodes)

    def all_series_lower_bounds(self, query_summary: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Squared lower bounds between query summaries and every indexed series.

        Returns ``(bounds, rows)`` where ``rows[i]`` is the dataset row the
        ``i``-th bound belongs to.  A 1-D ``query_summary`` yields 1-D bounds;
        a ``(Q, l)`` summary matrix yields a ``(Q, num_series)`` bound matrix
        from one multi-query kernel call.
        """
        if self._series_lower is None:
            raise IndexError_("index has not been built yet")
        summaries = np.asarray(query_summary, dtype=np.float64)
        if summaries.ndim == 2:
            bounds = batch_lower_bound_multi(summaries, self._series_lower,
                                             self._series_upper,
                                             self.summarization.weights)
        else:
            bounds = batch_lower_bound(summaries, self._series_lower, self._series_upper,
                                       self.summarization.weights)
        return bounds, self._series_rows

    def _summarize_in_chunks(self, dataset: Dataset, timings: BuildTimings) -> np.ndarray:
        """Stage-1 summarization, chunked so each chunk is one simulator task."""
        chunks = np.array_split(np.arange(dataset.num_series),
                                min(self.transform_chunks, dataset.num_series))
        word_blocks = []
        for chunk in chunks:
            if chunk.size == 0:
                continue
            start = time.perf_counter()
            word_blocks.append(self.summarization.words(dataset.values[chunk]))
            timings.transform_chunk_times.append(time.perf_counter() - start)
        return np.vstack(word_blocks)

    def _build_subtree(self, buffer: SummaryBuffer) -> Node:
        """Build the subtree of one root child from its buffer."""
        bits_per_symbol = self.summarization.bits
        root_symbols = np.asarray(buffer.key, dtype=np.int64)
        root_bits = np.ones(len(buffer.key), dtype=np.int64)
        return self._grow(buffer.indices, buffer.words, root_symbols, root_bits,
                          bits_per_symbol)

    def _grow(self, indices: np.ndarray, words: np.ndarray, symbols: np.ndarray,
              bits: np.ndarray, max_bits: int) -> Node:
        if indices.shape[0] <= self.leaf_size or bool(np.all(bits >= max_bits)):
            return self._make_leaf(indices, words, symbols, bits)

        split_dimension, mask = self._choose_split(words, bits, max_bits)
        if split_dimension is None:
            # Every remaining dimension is degenerate (all series share the
            # same next bit everywhere): the node cannot be split further.
            return self._make_leaf(indices, words, symbols, bits)

        left_symbols = symbols.copy()
        right_symbols = symbols.copy()
        left_bits = bits.copy()
        right_bits = bits.copy()
        left_symbols[split_dimension] = (symbols[split_dimension] << 1) | 0
        right_symbols[split_dimension] = (symbols[split_dimension] << 1) | 1
        left_bits[split_dimension] += 1
        right_bits[split_dimension] += 1

        node = InnerNode(symbols=symbols, bits=bits, split_dimension=split_dimension)
        node.left = self._grow(indices[~mask], words[~mask], left_symbols, left_bits, max_bits)
        node.right = self._grow(indices[mask], words[mask], right_symbols, right_bits, max_bits)
        return node

    def _choose_split(self, words: np.ndarray, bits: np.ndarray, max_bits: int
                      ) -> tuple[int | None, np.ndarray | None]:
        """Pick the dimension to split on and return the right-child mask."""
        candidates = np.flatnonzero(bits < max_bits)
        if self.split_policy == "round-robin":
            # Split the least-refined dimension first, in index order.
            candidates = candidates[np.argsort(bits[candidates], kind="stable")]
            for dimension in candidates:
                mask = self._next_bit(words, bits, dimension, max_bits).astype(bool)
                ones = int(mask.sum())
                if 0 < ones < mask.shape[0]:
                    return int(dimension), mask
            return None, None

        best_dimension = None
        best_mask = None
        best_imbalance = None
        for dimension in candidates:
            mask = self._next_bit(words, bits, dimension, max_bits).astype(bool)
            ones = int(mask.sum())
            if ones == 0 or ones == mask.shape[0]:
                continue
            imbalance = abs(mask.shape[0] - 2 * ones)
            # Prefer balanced splits; among equals prefer coarser dimensions so
            # cardinalities grow evenly across the word (as in iSAX2.0).
            key = (imbalance, int(bits[dimension]))
            if best_imbalance is None or key < best_imbalance:
                best_imbalance = key
                best_dimension = int(dimension)
                best_mask = mask
        return best_dimension, best_mask

    @staticmethod
    def _next_bit(words: np.ndarray, bits: np.ndarray, dimension: int, max_bits: int
                  ) -> np.ndarray:
        """The next (not yet used) bit of every word in ``dimension``."""
        shift = max_bits - int(bits[dimension]) - 1
        return (words[:, dimension] >> shift) & 1

    def _make_leaf(self, indices: np.ndarray, words: np.ndarray, symbols: np.ndarray,
                   bits: np.ndarray) -> LeafNode:
        lower, upper = self.summarization.bins.intervals(words)
        return LeafNode(symbols=symbols, bits=bits, indices=indices.astype(np.int64),
                        words=words, lower=lower, upper=upper)

    # ---------------------------------------------------------- persistence

    def save(self, path) -> "TreeIndex":
        """Write this built index as a versioned snapshot directory.

        See :mod:`repro.index.persistence` for the on-disk layout.  Returns
        ``self`` so saving can be chained after :meth:`build`.
        """
        from repro.index.persistence import save_tree

        save_tree(self, path)
        return self

    @classmethod
    def load(cls, path, mmap: bool = True) -> "TreeIndex":
        """Load a snapshot back into a fully built tree.

        ``mmap=True`` memory-maps the large payload arrays (values, words,
        quantization intervals) read-only instead of copying them; loaded
        trees answer queries bit-identically to freshly built ones.
        """
        from repro.index.persistence import load_tree

        return load_tree(path, mmap=mmap)

    # ----------------------------------------------------------- inspection

    def leaves(self) -> list[LeafNode]:
        """Every leaf of the index."""
        result: list[LeafNode] = []
        for subtree in self.root_children.values():
            result.extend(subtree.iter_leaves())
        return result

    def node_lower_bound(self, query_summary: np.ndarray, node: Node) -> float:
        """Squared lower bound between a query summary and a node's region."""
        return self.summarization.mindist(query_summary, node.symbols, node.bits)

    def leaf_lower_bounds(self, query_summary: np.ndarray) -> np.ndarray:
        """Squared lower bounds between query summaries and every leaf's region.

        One vectorized kernel call over the leaf directory — the query-time
        analogue of MESSI's parallel subtree traversal.  A 1-D summary yields
        one bound per leaf; a ``(Q, l)`` summary matrix yields the full
        ``(Q, num_leaves)`` bound matrix of the batched engine.
        """
        if self._leaf_lower is None:
            raise IndexError_("index has not been built yet")
        summaries = np.asarray(query_summary, dtype=np.float64)
        if summaries.ndim == 2:
            return batch_lower_bound_multi(summaries, self._leaf_lower, self._leaf_upper,
                                           self.summarization.weights)
        return batch_lower_bound(summaries, self._leaf_lower, self._leaf_upper,
                                 self.summarization.weights)

    def series_lower_bounds(self, query_summary: np.ndarray, leaf: LeafNode) -> np.ndarray:
        """Squared lower bounds between query summaries and every series of a leaf."""
        summaries = np.asarray(query_summary, dtype=np.float64)
        if summaries.ndim == 2:
            return batch_lower_bound_multi(summaries, leaf.lower, leaf.upper,
                                           self.summarization.weights)
        return batch_lower_bound(summaries, leaf.lower, leaf.upper,
                                 self.summarization.weights)

    def leaf_position(self, leaf: LeafNode) -> int:
        """Position of ``leaf`` in the leaf directory (``leaf_nodes`` order)."""
        try:
            return self._leaf_positions[id(leaf)]
        except KeyError:
            raise IndexError_("leaf does not belong to this index") from None

    def series_directory(self) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                        np.ndarray, np.ndarray]:
        """The flat per-series directory backing batched refinement.

        Returns ``(lower, upper, rows, leaf_offsets, leaf_sizes)``: the
        per-series quantization intervals and dataset rows of every indexed
        series concatenated in leaf order, plus each leaf's starting offset
        and size in those arrays.  The batched engine gathers arbitrary
        (query, leaf) work sets from these arrays instead of re-stacking leaf
        contents per refinement call.
        """
        if self._series_lower is None:
            raise IndexError_("index has not been built yet")
        return (self._series_lower, self._series_upper, self._series_rows,
                self._leaf_offsets, self._leaf_sizes)

    def approximate_leaf(self, query_word: np.ndarray,
                         query_summary: np.ndarray) -> LeafNode | None:
        """The leaf whose region contains the query word (approximate descent).

        Descends from the root child matching the query's 1-bit prefix; when no
        such child exists the leaf with the smallest lower bound (from the leaf
        directory) is returned instead.  This is step 1 of exact search and the
        seed step of the batched engine.
        """
        bits = self.summarization.bits
        key = root_child_word(query_word >> (bits - 1), None)
        node = self.root_children.get(key)
        if node is None:
            if not self.leaf_nodes:
                return None
            bounds = self.leaf_lower_bounds(query_summary)
            return self.leaf_nodes[int(np.argmin(bounds))]
        while not node.is_leaf():
            dimension = node.split_dimension
            used_bits = int(node.bits[dimension]) + 1
            bit = (int(query_word[dimension]) >> (bits - used_bits)) & 1
            child = node.right if bit else node.left
            if child is None:
                child = node.left or node.right
            node = child
        return node

    def __len__(self) -> int:
        return self.num_series
