"""The MESSI-style tree index, generic over a symbolic summarization.

MESSI (with SAX words) and SOFA (with SFA words) share the same index
structure: a root whose children are the 1-bit-per-dimension prefixes of the
words, binary inner nodes obtained by appending one bit to one dimension, and
leaves holding the full-resolution words plus pointers to the raw series.
The only differences are which summarization produces the words and which
per-dimension weights enter the lower bound — both are encapsulated in the
:class:`~repro.transforms.base.SymbolicSummarization` passed to the tree.

Construction follows the paper's two index stages (Figure 5), and actually
exploits their parallel structure:

1. summarize every series into full-resolution words — the chunks are mapped
   over a :class:`~repro.parallel.pool.WorkerPool` (the FFT / ``searchsorted``
   kernels release the GIL) and grouped into per-root-child buffers;
2. build each root subtree independently from its buffer — one pool work item
   per root child, dispatched largest-buffer-first (the simulator's greedy
   schedule), splitting any node that exceeds ``leaf_size`` by appending one
   bit to the dimension that balances the two children best.  The default
   ``"vectorized"`` builder grows each subtree a whole *frontier* of nodes per
   pass (vectorized bit extraction, split scoring and stable partitioning)
   instead of recursing node by node; the seed ``"recursive"`` builder is kept
   as the reference implementation.

The built tree is bit-identical for every ``num_workers`` and for both
builders: same shape, same leaf payloads, same directory arrays, same
query answers.  Timings of both stages are still recorded per work item so
the virtual-core simulator can replay them for any number of workers
(Figure 7), and ``BuildTimings.wall_time`` records the measured elapsed
parallel wall clock alongside the per-item costs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import IndexError_, InvalidParameterError
from repro.core.series import Dataset
from repro.core.simd import batch_lower_bound, batch_lower_bound_multi
from repro.index.buffers import SummaryBuffer, fill_buffers
from repro.index.node import InnerNode, LeafNode, Node, root_child_word
from repro.parallel.pool import WorkerPool, resolve_num_workers
from repro.transforms.base import SymbolicSummarization

#: Node-splitting policies supported by the tree.
SPLIT_POLICIES = ("balanced", "round-robin")

#: Subtree builders: the vectorized frontier splitter (default) and the seed
#: recursive reference implementation (kept for regression benchmarks and
#: bit-identity tests).
BUILDERS = ("vectorized", "recursive")


@dataclass
class BuildTimings:
    """Measured single-threaded costs of every construction work item."""

    learn_time: float = 0.0
    transform_chunk_times: list[float] = field(default_factory=list)
    subtree_times: list[float] = field(default_factory=list)
    #: Measured elapsed wall clock of the whole build.  With one worker this
    #: tracks ``total_time`` (the sum of per-item costs); with several workers
    #: it is the parallel makespan the virtual-core simulator estimates.
    wall_time: float = 0.0

    @property
    def transform_time(self) -> float:
        return float(sum(self.transform_chunk_times))

    @property
    def tree_time(self) -> float:
        return float(sum(self.subtree_times))

    @property
    def total_time(self) -> float:
        return self.learn_time + self.transform_time + self.tree_time


class TreeIndex:
    """A GEMINI tree index over symbolic words (the shared MESSI/SOFA core).

    Parameters
    ----------
    summarization:
        An *unfitted* symbolic summarization (``SAX`` for MESSI, ``SFA`` for
        SOFA).  ``build`` fits it on the indexed dataset.
    leaf_size:
        Maximum number of series per leaf before the leaf splits (20 000 in the
        paper; scaled-down datasets use smaller values).
    split_policy:
        ``"balanced"`` chooses the dimension whose next bit splits the node
        most evenly (the iSAX2.0/MESSI heuristic); ``"round-robin"`` cycles
        through dimensions in order.
    transform_chunks:
        Number of chunks the summarization stage is divided into; each chunk is
        one work item for the virtual-core simulator and the worker pool.
    num_workers:
        Worker threads used by both construction stages.  ``None`` (the
        default) falls back to the process default
        (:func:`repro.parallel.pool.default_num_workers`, settable through the
        ``REPRO_NUM_WORKERS`` environment variable).  The built index is
        bit-identical for every worker count.
    builder:
        ``"vectorized"`` (default) grows subtrees frontier-at-a-time with
        vectorized splitting; ``"recursive"`` is the seed per-node reference
        builder.  Both produce bit-identical trees.
    """

    def __init__(self, summarization: SymbolicSummarization, leaf_size: int = 100,
                 split_policy: str = "balanced", transform_chunks: int = 36,
                 num_workers: "int | None" = None,
                 builder: str = "vectorized") -> None:
        if leaf_size < 1:
            raise InvalidParameterError(f"leaf_size must be >= 1, got {leaf_size}")
        if split_policy not in SPLIT_POLICIES:
            raise InvalidParameterError(
                f"split_policy must be one of {SPLIT_POLICIES}, got '{split_policy}'"
            )
        if transform_chunks < 1:
            raise InvalidParameterError("transform_chunks must be >= 1")
        if num_workers is not None and num_workers < 1:
            raise InvalidParameterError(
                f"num_workers must be >= 1 or None, got {num_workers}"
            )
        if builder not in BUILDERS:
            raise InvalidParameterError(
                f"builder must be one of {BUILDERS}, got '{builder}'"
            )
        self.summarization = summarization
        self.leaf_size = leaf_size
        self.split_policy = split_policy
        self.transform_chunks = transform_chunks
        self.num_workers = num_workers
        self.builder = builder

        self.dataset: Dataset | None = None
        self.root_children: dict[tuple[int, ...], Node] = {}
        self.timings: BuildTimings = BuildTimings()
        self._words: np.ndarray | None = None
        # Leaf directory: every leaf plus its node-level quantization intervals
        # stacked into two arrays so query-time leaf pruning is one batched
        # lower-bound kernel call (see ``leaf_lower_bounds``).
        self.leaf_nodes: list[LeafNode] = []
        self._leaf_lower: np.ndarray | None = None
        self._leaf_upper: np.ndarray | None = None
        self._leaf_positions: dict[int, int] = {}
        self._leaf_offsets: np.ndarray | None = None
        self._leaf_sizes: np.ndarray | None = None
        self._series_lower: np.ndarray | None = None
        self._series_upper: np.ndarray | None = None
        self._series_rows: np.ndarray | None = None

    # ------------------------------------------------------------ building

    @property
    def is_built(self) -> bool:
        return self.dataset is not None and bool(self.root_children)

    @property
    def num_series(self) -> int:
        if self.dataset is None:
            raise IndexError_("index has not been built yet")
        return self.dataset.num_series

    def build(self, dataset: Dataset,
              num_workers: "int | None" = None) -> "TreeIndex":
        """Fit the summarization, summarize all series and grow the tree.

        ``num_workers`` overrides the constructor's worker count for this
        build only (``None`` keeps it).  The built index — tree shape, leaf
        payloads, directory arrays, query answers — is bit-identical for
        every worker count.
        """
        if not isinstance(dataset, Dataset):
            dataset = Dataset(np.asarray(dataset, dtype=np.float64))
        self.dataset = dataset
        workers = resolve_num_workers(
            self.num_workers if num_workers is None else num_workers)
        pool = WorkerPool(workers)
        timings = BuildTimings()
        wall_start = time.perf_counter()

        start = time.perf_counter()
        self.summarization.fit(dataset)
        timings.learn_time = time.perf_counter() - start

        words = self._summarize_in_chunks(dataset, timings, pool)
        self._words = words

        buffers = fill_buffers(words, self.summarization.bits)
        build_subtree = (self._build_subtree if self.builder == "recursive"
                         else self._build_subtree_bulk)

        def timed_subtree(buffer: SummaryBuffer) -> tuple[Node, float]:
            subtree_start = time.perf_counter()
            subtree = build_subtree(buffer)
            return subtree, time.perf_counter() - subtree_start

        # One work item per root child.  ``fill_buffers`` orders the buffers
        # largest first, so FIFO pickup by the pool's workers realizes the
        # greedy longest-processing-time-first schedule the virtual-core
        # simulator replays; results are reassembled in buffer order, so the
        # root-children dict (and every downstream array) is deterministic.
        subtrees = pool.map(timed_subtree, buffers)
        self.root_children = {}
        for buffer, (subtree, elapsed) in zip(buffers, subtrees):
            timings.subtree_times.append(elapsed)
            self.root_children[buffer.key] = subtree
        self._build_leaf_directory()
        timings.wall_time = time.perf_counter() - wall_start
        self.timings = timings
        return self

    def clone_unbuilt(self) -> "TreeIndex":
        """A fresh, unbuilt tree with this tree's configuration.

        The summarization is cloned *unfitted*
        (:meth:`~repro.transforms.base.SymbolicSummarization.clone_unfitted`),
        so building the clone re-learns it on whatever dataset it is given —
        exactly what a scratch build would do.  Compaction of a dynamic index
        uses this to merge its delta through the parallel build pipeline while
        staying bit-identical to a fresh build on the surviving series.
        """
        return TreeIndex(self.summarization.clone_unfitted(),
                         leaf_size=self.leaf_size,
                         split_policy=self.split_policy,
                         transform_chunks=self.transform_chunks,
                         num_workers=self.num_workers,
                         builder=self.builder)

    def _build_leaf_directory(self) -> None:
        """Stack every leaf's node-level intervals for batched query pruning.

        The directory also keeps a flat, per-series view (intervals and dataset
        row of every indexed series, concatenated across leaves) used by the
        searcher when the tree degenerates into very small leaves.
        """
        self.leaf_nodes = self.leaves()
        self._leaf_positions = {id(leaf): position
                                for position, leaf in enumerate(self.leaf_nodes)}
        self._leaf_sizes = np.array([leaf.size for leaf in self.leaf_nodes],
                                    dtype=np.int64)
        self._leaf_offsets = np.concatenate(
            [[0], np.cumsum(self._leaf_sizes[:-1])]).astype(np.int64)
        self._series_rows = np.concatenate([leaf.indices for leaf in self.leaf_nodes])
        if self.builder == "recursive":
            # Seed reference path: one node-level intervals call per leaf,
            # per-series intervals already computed per leaf by `_make_leaf`.
            lower_rows = []
            upper_rows = []
            for leaf in self.leaf_nodes:
                lower, upper = self.summarization.bins.intervals(leaf.symbols,
                                                                 leaf.bits)
                lower_rows.append(lower)
                upper_rows.append(upper)
            self._leaf_lower = np.vstack(lower_rows)
            self._leaf_upper = np.vstack(upper_rows)
            self._series_lower = np.vstack([leaf.lower for leaf in self.leaf_nodes])
            self._series_upper = np.vstack([leaf.upper for leaf in self.leaf_nodes])
            return
        # Vectorized path.  Every leaf sits at its own refinement, so the
        # node-level intervals of all leaves come from one batched call over
        # the stacked (symbols, bits) matrices — bit-identical to the
        # per-leaf loop of the reference path.
        node_symbols = np.vstack([leaf.symbols for leaf in self.leaf_nodes])
        node_bits = np.vstack([leaf.bits for leaf in self.leaf_nodes])
        self._leaf_lower, self._leaf_upper = (
            self.summarization.bins.intervals_batch(node_symbols, node_bits))
        # The per-series intervals of all leaves (deferred by
        # `_fill_leaf_payloads`) likewise come from one full-resolution
        # intervals call over the leaf-ordered words — a single gather from
        # the word matrix rather than one vstack copy per leaf; each leaf
        # then points at its contiguous slice, the exact layout a loaded
        # snapshot restores.
        stacked_words = self._words[self._series_rows]
        self._series_lower, self._series_upper = (
            self.summarization.bins.intervals(stacked_words))
        offsets = self._leaf_offsets.tolist()
        sizes = self._leaf_sizes.tolist()
        for leaf, offset, size in zip(self.leaf_nodes, offsets, sizes):
            leaf.lower = self._series_lower[offset:offset + size]
            leaf.upper = self._series_upper[offset:offset + size]

    @property
    def average_leaf_size(self) -> float:
        """Mean number of series per leaf (used to pick the refinement strategy)."""
        if not self.leaf_nodes:
            return 0.0
        return self.num_series / len(self.leaf_nodes)

    def all_series_lower_bounds(self, query_summary: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Squared lower bounds between query summaries and every indexed series.

        Returns ``(bounds, rows)`` where ``rows[i]`` is the dataset row the
        ``i``-th bound belongs to.  A 1-D ``query_summary`` yields 1-D bounds;
        a ``(Q, l)`` summary matrix yields a ``(Q, num_series)`` bound matrix
        from one multi-query kernel call.
        """
        if self._series_lower is None:
            raise IndexError_("index has not been built yet")
        summaries = np.asarray(query_summary, dtype=np.float64)
        if summaries.ndim == 2:
            bounds = batch_lower_bound_multi(summaries, self._series_lower,
                                             self._series_upper,
                                             self.summarization.weights)
        else:
            bounds = batch_lower_bound(summaries, self._series_lower, self._series_upper,
                                       self.summarization.weights)
        return bounds, self._series_rows

    def _summarize_in_chunks(self, dataset: Dataset, timings: BuildTimings,
                             pool: WorkerPool) -> np.ndarray:
        """Stage-1 summarization, chunked so each chunk is one simulator task.

        Chunks are mapped over the worker pool (the FFT and ``searchsorted``
        kernels release the GIL); each chunk's cost is timed inside the worker
        and the blocks are reassembled in chunk order, so the word matrix is
        identical for any worker count.  Per-item costs are faithful
        single-threaded work measurements only at ``num_workers=1`` — inside
        concurrent workers they include contention wait — which is why
        anything feeding the virtual-core replay builds single-worker (see
        :meth:`repro.evaluation.workloads.WorkloadRunner.make_method`).
        """
        chunks = [chunk for chunk in
                  np.array_split(np.arange(dataset.num_series),
                                 min(self.transform_chunks, dataset.num_series))
                  if chunk.size]
        values = dataset.values

        def timed_chunk(chunk: np.ndarray) -> tuple[np.ndarray, float]:
            start = time.perf_counter()
            block = self.summarization.words(values[chunk])
            return block, time.perf_counter() - start

        blocks = pool.map(timed_chunk, chunks)
        timings.transform_chunk_times.extend(elapsed for _, elapsed in blocks)
        return np.vstack([block for block, _ in blocks])

    def _build_subtree(self, buffer: SummaryBuffer) -> Node:
        """Build one root subtree recursively (the seed reference builder)."""
        bits_per_symbol = self.summarization.bits
        root_symbols = np.asarray(buffer.key, dtype=np.int64)
        root_bits = np.ones(len(buffer.key), dtype=np.int64)
        return self._grow(buffer.indices, buffer.words, root_symbols, root_bits,
                          bits_per_symbol)

    def _build_subtree_bulk(self, buffer: SummaryBuffer) -> Node:
        """Build one root subtree iteratively, splitting whole frontiers per pass.

        The recursive builder pays Python for every node: a `_choose_split`
        loop over dimensions plus two boolean-mask copies of the node's rows.
        This builder keeps a single permutation over the buffer's rows,
        grouped by frontier node, and handles every node of a tree level
        together — next-bit extraction, split scoring and the stable
        left/right partition are each one vectorized operation over all rows
        of the frontier (the argsort-plus-boundaries grouping of
        :func:`~repro.index.buffers.fill_buffers`), so per-pass Python work is
        O(nodes), not O(rows x dimensions).  The produced tree, leaves and
        payload arrays are bit-identical to the recursive builder's.
        """
        max_bits = self.summarization.bits
        words = buffer.words
        num_rows, dims = words.shape

        if num_rows <= self.leaf_size:
            # Whole-buffer leaf (the common case on degenerate collections
            # whose root fan-out shatters the data): skip the frontier
            # machinery entirely.
            leaf = LeafNode(symbols=np.asarray(buffer.key, dtype=np.int64),
                            bits=np.ones(dims, dtype=np.int64))
            self._fill_leaf_payloads(buffer, [leaf], [np.arange(num_rows)])
            return leaf

        dim_range = np.arange(dims)
        unsplittable = np.iinfo(np.int64).max

        # Rows of all active (frontier) nodes, grouped into contiguous
        # segments; `starts`/`sizes` delimit the segment of each node.
        order = np.arange(num_rows)
        starts = np.zeros(1, dtype=np.int64)
        sizes = np.array([num_rows], dtype=np.int64)
        symbols_matrix = np.asarray(buffer.key, dtype=np.int64)[None, :].copy()
        bits_matrix = np.ones((1, dims), dtype=np.int64)
        # (parent InnerNode or None for the subtree root, side) per node.
        links: list[tuple[InnerNode | None, int]] = [(None, 0)]

        root: Node | None = None
        pending_leaves: list[LeafNode] = []
        leaf_segments: list[np.ndarray] = []

        while starts.size:
            num_nodes = starts.shape[0]
            segment_of_row = np.repeat(np.arange(num_nodes), sizes)

            # Next (not yet used) bit of every row in every dimension;
            # exhausted dimensions produce a garbage bit that `valid` masks.
            shifts = np.maximum(max_bits - bits_matrix - 1, 0)
            next_bits = (words[order] >> shifts[segment_of_row]) & 1
            ones = np.add.reduceat(next_bits, starts, axis=0)

            valid = ((bits_matrix < max_bits)
                     & (ones > 0) & (ones < sizes[:, None]))
            if self.split_policy == "round-robin":
                # First valid dimension in (bits used, dimension index) order.
                score = bits_matrix * dims + dim_range[None, :]
            else:
                # Most balanced split; ties prefer coarser, then earlier
                # dimensions — the exact `_choose_split` total order.
                score = ((np.abs(sizes[:, None] - 2 * ones) * (max_bits + 1)
                          + bits_matrix) * dims + dim_range[None, :])
            score = np.where(valid, score, unsplittable)
            split_dim = np.argmin(score, axis=1)
            can_split = score[np.arange(num_nodes), split_dim] != unsplittable
            is_leaf = ((sizes <= self.leaf_size)
                       | np.all(bits_matrix >= max_bits, axis=1)
                       | ~can_split)

            # ---- materialize this pass's nodes and link them to parents.
            nodes: list[Node] = []
            for position in range(num_nodes):
                if is_leaf[position]:
                    node = LeafNode(symbols=symbols_matrix[position],
                                    bits=bits_matrix[position])
                    pending_leaves.append(node)
                    leaf_segments.append(
                        order[starts[position]:starts[position] + sizes[position]])
                else:
                    node = InnerNode(symbols=symbols_matrix[position],
                                     bits=bits_matrix[position],
                                     split_dimension=int(split_dim[position]))
                nodes.append(node)
                parent, side = links[position]
                if parent is None:
                    root = node
                elif side == 0:
                    parent.left = node
                else:
                    parent.right = node

            split_positions = np.flatnonzero(~is_leaf)
            if split_positions.size == 0:
                break

            # ---- stable left/right partition of every splitting node's rows:
            # rows are already grouped by node in original relative order, so
            # one stable sort on (node, appended bit) reproduces the
            # `indices[~mask]` / `indices[mask]` copies of the recursive path.
            keep = ~is_leaf[segment_of_row]
            appended_bit = next_bits[np.arange(order.shape[0]),
                                     split_dim[segment_of_row]]
            kept_rows = order[keep]
            partition = np.argsort(segment_of_row[keep] * 2 + appended_bit[keep],
                                   kind="stable")
            order = kept_rows[partition]

            right_sizes = ones[split_positions, split_dim[split_positions]]
            child_sizes = np.empty(2 * split_positions.size, dtype=np.int64)
            child_sizes[0::2] = sizes[split_positions] - right_sizes
            child_sizes[1::2] = right_sizes
            starts = np.concatenate([[0], np.cumsum(child_sizes[:-1])]).astype(np.int64)
            sizes = child_sizes

            # ---- child words: append a 0/1 bit to the split dimension.
            parent_symbols = symbols_matrix[split_positions]
            split_dims = split_dim[split_positions]
            symbols_matrix = np.repeat(parent_symbols, 2, axis=0)
            bits_matrix = np.repeat(bits_matrix[split_positions], 2, axis=0)
            left_rows = 2 * np.arange(split_positions.size)
            promoted = parent_symbols[np.arange(split_positions.size), split_dims] << 1
            symbols_matrix[left_rows, split_dims] = promoted
            symbols_matrix[left_rows + 1, split_dims] = promoted | 1
            bits_matrix[left_rows, split_dims] += 1
            bits_matrix[left_rows + 1, split_dims] += 1
            links = []
            for position in split_positions:
                inner = nodes[position]
                links.append((inner, 0))
                links.append((inner, 1))

        self._fill_leaf_payloads(buffer, pending_leaves, leaf_segments)
        return root

    def _fill_leaf_payloads(self, buffer: SummaryBuffer,
                            leaves: list[LeafNode],
                            segments: list[np.ndarray]) -> None:
        """Attach row indices and words to a subtree's freshly built leaves.

        The per-series quantization intervals (``leaf.lower`` / ``leaf.upper``
        in `_make_leaf`) are *not* computed here: the vectorized pipeline
        defers them to :meth:`_build_leaf_directory`, which derives the
        intervals of every leaf of every subtree in one batched call.
        """
        if not leaves:
            return
        stacked_rows = np.concatenate(segments)
        stacked_words = buffer.words[stacked_rows]
        stacked_indices = buffer.indices[stacked_rows].astype(np.int64)
        offset = 0
        for leaf, segment in zip(leaves, segments):
            stop = offset + segment.shape[0]
            leaf.indices = stacked_indices[offset:stop]
            leaf.words = stacked_words[offset:stop]
            offset = stop

    def _grow(self, indices: np.ndarray, words: np.ndarray, symbols: np.ndarray,
              bits: np.ndarray, max_bits: int) -> Node:
        if indices.shape[0] <= self.leaf_size or bool(np.all(bits >= max_bits)):
            return self._make_leaf(indices, words, symbols, bits)

        split_dimension, mask = self._choose_split(words, bits, max_bits)
        if split_dimension is None:
            # Every remaining dimension is degenerate (all series share the
            # same next bit everywhere): the node cannot be split further.
            return self._make_leaf(indices, words, symbols, bits)

        left_symbols = symbols.copy()
        right_symbols = symbols.copy()
        left_bits = bits.copy()
        right_bits = bits.copy()
        left_symbols[split_dimension] = (symbols[split_dimension] << 1) | 0
        right_symbols[split_dimension] = (symbols[split_dimension] << 1) | 1
        left_bits[split_dimension] += 1
        right_bits[split_dimension] += 1

        node = InnerNode(symbols=symbols, bits=bits, split_dimension=split_dimension)
        node.left = self._grow(indices[~mask], words[~mask], left_symbols, left_bits, max_bits)
        node.right = self._grow(indices[mask], words[mask], right_symbols, right_bits, max_bits)
        return node

    def _choose_split(self, words: np.ndarray, bits: np.ndarray, max_bits: int
                      ) -> tuple[int | None, np.ndarray | None]:
        """Pick the dimension to split on and return the right-child mask."""
        candidates = np.flatnonzero(bits < max_bits)
        if self.split_policy == "round-robin":
            # Split the least-refined dimension first, in index order.
            candidates = candidates[np.argsort(bits[candidates], kind="stable")]
            for dimension in candidates:
                mask = self._next_bit(words, bits, dimension, max_bits).astype(bool)
                ones = int(mask.sum())
                if 0 < ones < mask.shape[0]:
                    return int(dimension), mask
            return None, None

        best_dimension = None
        best_mask = None
        best_imbalance = None
        for dimension in candidates:
            mask = self._next_bit(words, bits, dimension, max_bits).astype(bool)
            ones = int(mask.sum())
            if ones == 0 or ones == mask.shape[0]:
                continue
            imbalance = abs(mask.shape[0] - 2 * ones)
            # Prefer balanced splits; among equals prefer coarser dimensions so
            # cardinalities grow evenly across the word (as in iSAX2.0).
            key = (imbalance, int(bits[dimension]))
            if best_imbalance is None or key < best_imbalance:
                best_imbalance = key
                best_dimension = int(dimension)
                best_mask = mask
        return best_dimension, best_mask

    @staticmethod
    def _next_bit(words: np.ndarray, bits: np.ndarray, dimension: int, max_bits: int
                  ) -> np.ndarray:
        """The next (not yet used) bit of every word in ``dimension``."""
        shift = max_bits - int(bits[dimension]) - 1
        return (words[:, dimension] >> shift) & 1

    def _make_leaf(self, indices: np.ndarray, words: np.ndarray, symbols: np.ndarray,
                   bits: np.ndarray) -> LeafNode:
        lower, upper = self.summarization.bins.intervals(words)
        return LeafNode(symbols=symbols, bits=bits, indices=indices.astype(np.int64),
                        words=words, lower=lower, upper=upper)

    # ---------------------------------------------------------- persistence

    def save(self, path) -> "TreeIndex":
        """Write this built index as a versioned snapshot directory.

        See :mod:`repro.index.persistence` for the on-disk layout.  Returns
        ``self`` so saving can be chained after :meth:`build`.
        """
        from repro.index.persistence import save_tree

        save_tree(self, path)
        return self

    @classmethod
    def load(cls, path, mmap: bool = True, verify: str = "lazy") -> "TreeIndex":
        """Load a snapshot back into a fully built tree.

        ``mmap=True`` memory-maps the large payload arrays (values, words,
        quantization intervals) read-only instead of copying them; loaded
        trees answer queries bit-identically to freshly built ones.
        ``verify`` controls checksum verification of the payload arrays
        (``"eager"``, ``"lazy"`` or ``"off"``; see
        :func:`repro.index.persistence.load_tree`).
        """
        from repro.index.persistence import load_tree

        return load_tree(path, mmap=mmap, verify=verify)

    # ----------------------------------------------------------- inspection

    def leaves(self) -> list[LeafNode]:
        """Every leaf of the index."""
        result: list[LeafNode] = []
        for subtree in self.root_children.values():
            result.extend(subtree.iter_leaves())
        return result

    def node_lower_bound(self, query_summary: np.ndarray, node: Node) -> float:
        """Squared lower bound between a query summary and a node's region."""
        return self.summarization.mindist(query_summary, node.symbols, node.bits)

    def leaf_lower_bounds(self, query_summary: np.ndarray) -> np.ndarray:
        """Squared lower bounds between query summaries and every leaf's region.

        One vectorized kernel call over the leaf directory — the query-time
        analogue of MESSI's parallel subtree traversal.  A 1-D summary yields
        one bound per leaf; a ``(Q, l)`` summary matrix yields the full
        ``(Q, num_leaves)`` bound matrix of the batched engine.
        """
        if self._leaf_lower is None:
            raise IndexError_("index has not been built yet")
        summaries = np.asarray(query_summary, dtype=np.float64)
        if summaries.ndim == 2:
            return batch_lower_bound_multi(summaries, self._leaf_lower, self._leaf_upper,
                                           self.summarization.weights)
        return batch_lower_bound(summaries, self._leaf_lower, self._leaf_upper,
                                 self.summarization.weights)

    def series_lower_bounds(self, query_summary: np.ndarray, leaf: LeafNode) -> np.ndarray:
        """Squared lower bounds between query summaries and every series of a leaf."""
        summaries = np.asarray(query_summary, dtype=np.float64)
        if summaries.ndim == 2:
            return batch_lower_bound_multi(summaries, leaf.lower, leaf.upper,
                                           self.summarization.weights)
        return batch_lower_bound(summaries, leaf.lower, leaf.upper,
                                 self.summarization.weights)

    def leaf_position(self, leaf: LeafNode) -> int:
        """Position of ``leaf`` in the leaf directory (``leaf_nodes`` order)."""
        try:
            return self._leaf_positions[id(leaf)]
        except KeyError:
            raise IndexError_("leaf does not belong to this index") from None

    def series_directory(self) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                        np.ndarray, np.ndarray]:
        """The flat per-series directory backing batched refinement.

        Returns ``(lower, upper, rows, leaf_offsets, leaf_sizes)``: the
        per-series quantization intervals and dataset rows of every indexed
        series concatenated in leaf order, plus each leaf's starting offset
        and size in those arrays.  The batched engine gathers arbitrary
        (query, leaf) work sets from these arrays instead of re-stacking leaf
        contents per refinement call.
        """
        if self._series_lower is None:
            raise IndexError_("index has not been built yet")
        return (self._series_lower, self._series_upper, self._series_rows,
                self._leaf_offsets, self._leaf_sizes)

    def approximate_leaf(self, query_word: np.ndarray,
                         query_summary: np.ndarray) -> LeafNode | None:
        """The leaf whose region contains the query word (approximate descent).

        Descends from the root child matching the query's 1-bit prefix; when no
        such child exists the leaf with the smallest lower bound (from the leaf
        directory) is returned instead.  This is step 1 of exact search and the
        seed step of the batched engine.
        """
        bits = self.summarization.bits
        key = root_child_word(query_word >> (bits - 1), None)
        node = self.root_children.get(key)
        if node is None:
            if not self.leaf_nodes:
                return None
            bounds = self.leaf_lower_bounds(query_summary)
            return self.leaf_nodes[int(np.argmin(bounds))]
        while not node.is_leaf():
            dimension = node.split_dimension
            used_bits = int(node.bits[dimension]) + 1
            bit = (int(query_word[dimension]) >> (bits - used_bits)) & 1
            child = node.right if bit else node.left
            if child is None:
                child = node.left or node.right
            node = child
        return node

    def __len__(self) -> int:
        return self.num_series
