"""Summary buffers used during bulk index construction.

MESSI's index-construction phase first computes the symbolic summaries of all
series into per-root-child buffers and only then builds each subtree from its
buffer (Figure 5, Stage 1).  Keeping the two phases separate makes subtree
construction embarrassingly parallel — each buffer belongs to exactly one
subtree and one worker — and it is also what the virtual-core simulation uses
as its unit of work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SummaryBuffer:
    """All series that fall under one root child (one 1-bit-per-dimension prefix)."""

    key: tuple[int, ...]
    indices: np.ndarray  # dataset row indices
    words: np.ndarray    # full-resolution words of those rows

    @property
    def size(self) -> int:
        return self.indices.shape[0]


def fill_buffers(words: np.ndarray, bits: int) -> list[SummaryBuffer]:
    """Group full-resolution words into per-root-child buffers.

    Parameters
    ----------
    words:
        Full-resolution words of every series, shape ``(num_series, word_length)``.
    bits:
        Bits per symbol of the full-resolution words.

    Returns
    -------
    list of :class:`SummaryBuffer`, ordered by descending size so that the
    greedy worker assignment of the simulator (longest first) matches the order
    MESSI's work queue would drain them in.
    """
    words = np.asarray(words, dtype=np.int64)
    if words.ndim != 2:
        raise ValueError(f"expected a 2-D word matrix, got shape {words.shape}")
    top_bits = words >> (bits - 1)
    if words.shape[1] <= 63:
        # Encode each 1-bit prefix row as a single integer key for fast grouping.
        packed = np.zeros(words.shape[0], dtype=np.int64)
        for dimension in range(words.shape[1]):
            packed = (packed << 1) | top_bits[:, dimension]
        order = np.argsort(packed, kind="stable")
        sorted_keys = packed[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    else:
        # One bit per dimension no longer fits an int64 (the top bit would be
        # shifted out, silently merging distinct prefixes): pack the prefix
        # bits into bytes and group on an opaque fixed-width bytes view, whose
        # lexicographic order equals the numeric order of the packed integer.
        packed_bytes = np.ascontiguousarray(
            np.packbits(top_bits.astype(np.uint8), axis=1))
        row_keys = packed_bytes.view(
            np.dtype((np.void, packed_bytes.shape[1]))).reshape(-1)
        order = np.argsort(row_keys, kind="stable")
        sorted_keys = row_keys[order]
        boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1

    # Hand every buffer zero-copy views of the words/indices sorted once:
    # degenerate collections produce thousands of tiny buffers, and one gather
    # per buffer used to dominate the grouping cost.
    order = order.astype(np.int64, copy=False)
    sorted_words = words[order]
    starts = np.concatenate([[0], boundaries]).astype(np.int64)
    stops = np.concatenate([boundaries, [order.shape[0]]]).astype(np.int64)
    keys = top_bits[order[starts]].tolist()
    buffers = [SummaryBuffer(key=tuple(key), indices=order[start:stop],
                             words=sorted_words[start:stop])
               for key, start, stop in zip(keys, starts.tolist(), stops.tolist())]
    buffers.sort(key=lambda buffer: buffer.size, reverse=True)
    return buffers
