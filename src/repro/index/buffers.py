"""Summary buffers used during bulk index construction.

MESSI's index-construction phase first computes the symbolic summaries of all
series into per-root-child buffers and only then builds each subtree from its
buffer (Figure 5, Stage 1).  Keeping the two phases separate makes subtree
construction embarrassingly parallel — each buffer belongs to exactly one
subtree and one worker — and it is also what the virtual-core simulation uses
as its unit of work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SummaryBuffer:
    """All series that fall under one root child (one 1-bit-per-dimension prefix)."""

    key: tuple[int, ...]
    indices: np.ndarray  # dataset row indices
    words: np.ndarray    # full-resolution words of those rows

    @property
    def size(self) -> int:
        return self.indices.shape[0]


def fill_buffers(words: np.ndarray, bits: int) -> list[SummaryBuffer]:
    """Group full-resolution words into per-root-child buffers.

    Parameters
    ----------
    words:
        Full-resolution words of every series, shape ``(num_series, word_length)``.
    bits:
        Bits per symbol of the full-resolution words.

    Returns
    -------
    list of :class:`SummaryBuffer`, ordered by descending size so that the
    greedy worker assignment of the simulator (longest first) matches the order
    MESSI's work queue would drain them in.
    """
    words = np.asarray(words, dtype=np.int64)
    if words.ndim != 2:
        raise ValueError(f"expected a 2-D word matrix, got shape {words.shape}")
    top_bits = words >> (bits - 1)
    # Encode each 1-bit prefix row as a single integer key for fast grouping.
    packed = np.zeros(words.shape[0], dtype=np.int64)
    for dimension in range(words.shape[1]):
        packed = (packed << 1) | top_bits[:, dimension]
    order = np.argsort(packed, kind="stable")
    sorted_keys = packed[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    groups = np.split(order, boundaries)

    buffers = []
    for group in groups:
        key = tuple(int(bit) for bit in top_bits[group[0]])
        buffers.append(SummaryBuffer(key=key, indices=group.astype(np.int64),
                                     words=words[group]))
    buffers.sort(key=lambda buffer: buffer.size, reverse=True)
    return buffers
