"""Batched multi-query exact search: one engine pass for a whole workload.

:class:`~repro.index.search.ExactSearcher` answers queries one at a time, so a
workload of ``Q`` queries pays the Python-level orchestration (tree descent,
leaf queueing, kernel launches) ``Q`` times even though the underlying NumPy
kernels would happily process all queries at once.  At reproduction scale that
per-query interpreter overhead — not kernel arithmetic — dominates wall-clock.

:class:`BatchSearcher` vectorizes across *queries* as well as candidates, the
NumPy analogue of packing several queries into the SIMD lanes of the paper's
AVX kernels:

1. all queries are z-normalized and summarized in one pass;
2. the full ``query x leaf`` lower-bound matrix comes from a single
   multi-query kernel call (:func:`repro.core.simd.batch_lower_bound_multi`),
   and each query's private leaf visiting order is derived from it once;
3. every query keeps a running top-k frontier (its best-so-far, BSF); each
   round the still-active queries nominate the next window of their own
   unvisited leaves below their BSF — exactly the leaves the per-query engine
   would visit — and queries whose remaining leaves all exceed their BSF drop
   out of the batch;
4. the nominated (query, leaf) pairs of a round are evaluated together: one
   ragged pair kernel call (:func:`repro.core.simd.batch_lower_bound_pairs`)
   filters per-series lower bounds with *no* cross-product amplification, and
   one shared ``pairwise_squared_euclidean`` BLAS GEMM refines every
   surviving candidate of every query at once.

The answers are the same exact k-NN sets the sequential searcher returns —
per query, the visited/pruned decisions follow the identical GEMINI logic —
and the reported results are bit-identical because both engines package their
winners through :func:`repro.index.search.finalize_result`, which recomputes
distances on a canonical row order.

Per-query :class:`~repro.index.search.SearchStats` are still produced; work
counters (lower bounds, exact distances, visited/pruned leaves) are exact per
query, while the timing fields hold each query's *share* of the shared
batched calls (elapsed time divided by the number of queries served), so
summing per-query totals recovers the batch wall-clock.

``knn_batch(..., num_workers=n)`` shards the workload across a
:class:`~repro.parallel.pool.WorkerPool`; the heavy kernels release the GIL
inside BLAS, so shards overlap on real cores.  When the batch is *smaller*
than the pool — where query sharding would leave cores idle — the engine
falls back to the per-query searcher's intra-query parallelism instead: each
query's own leaf queue is drained by all ``n`` workers against a shared
best-so-far (see :meth:`repro.index.search.ExactSearcher.knn`), with answers
bit-identical either way.

Like the per-query engine, the batched engine can fuse a dynamic overlay
(:class:`~repro.index.dynamic.DeltaView`, provided by a ``delta_source``
callable): buffered delta series join every query's candidate set through the
same multi-query lower-bound kernels (one extra shared refinement round right
after the seed round), and tombstoned rows are masked to ``+inf`` so they are
never nominated.  Answers remain bit-identical to a scratch rebuild on the
surviving rows.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.distance import pairwise_squared_euclidean
from repro.core.errors import SearchError, ValidationError
from repro.core.normalization import znormalize_batch
from repro.core.simd import batch_lower_bound_multi, batch_lower_bound_pairs
from repro.index.search import (
    ExactSearcher,
    SearchResult,
    SearchStats,
    deadline_expired,
    finalize_result,
    resolve_deadline,
    validated_count,
)
from repro.index.tree import TreeIndex
from repro.parallel.pool import WorkerPool, chunk_indices, resolve_num_workers

#: Cap on ``num_queries x num_series`` cells a single engine pass may hold.
#: The flat path materializes a few dense matrices of that shape (bounds,
#: visiting orders), so very large workloads over very large collections are
#: transparently split into query shards that respect this budget instead of
#: allocating O(Q x N) at once.
_MAX_SHARD_CELLS = 4_000_000


def _round_window(base_window: int, num_queries: int, num_active: int,
                  num_items: int) -> int:
    """Adaptive per-round window width.

    The round's total budget (``base_window`` items for each query of the
    batch) is shared by the remaining active queries: straggler queries get
    proportionally wider windows, so the tail of the batch finishes in a few
    large rounds instead of many tiny ones.
    """
    return min(num_items, max(base_window, (base_window * num_queries) // num_active))


def _nominate_window(orders: np.ndarray, sorted_bounds: np.ndarray,
                     pointers: np.ndarray, active_queries: np.ndarray,
                     num_items: int, window: int, thresholds: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One round of frontier nominations for the active queries.

    Each active query examines the next ``window`` entries of its private
    visiting order (``orders``/``sorted_bounds`` rows) starting at its
    pointer.  Because bounds are ascending within a row, the count of window
    bounds below the query's BSF is also the index of its first prunable
    entry — everything before it is nominated, and a count short of the
    window means the query is finished.

    Returns ``(pair_query, pair_item, cuts)``: the nominated (query, item)
    pairs in query-major order, plus each active query's consumed-entry count.
    """
    window_range = np.arange(window)
    window_index = pointers[active_queries, None] + window_range[None, :]
    valid = window_index < num_items
    clipped = np.minimum(window_index, num_items - 1)
    positions = np.take_along_axis(orders[active_queries], clipped, axis=1)
    window_bounds = np.where(
        valid, np.take_along_axis(sorted_bounds[active_queries], clipped, axis=1),
        np.inf)
    cuts = (window_bounds < thresholds[:, None]).sum(axis=1)
    eligible = window_range[None, :] < cuts[:, None]
    pair_query_row, pair_window_column = np.nonzero(eligible)
    return (active_queries[pair_query_row],
            positions[pair_query_row, pair_window_column], cuts)


def _expand_pairs(pair_query: np.ndarray, pair_leaf: np.ndarray,
                  leaf_offsets: np.ndarray, leaf_sizes: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Expand (query, leaf) pairs into (query, series-directory-column) pairs.

    Every nominated leaf contributes one instance per stored series; the
    returned arrays stay query-major so downstream per-query grouping keeps
    working on contiguous slices.
    """
    sizes = leaf_sizes[pair_leaf]
    ends = np.cumsum(sizes)
    instance_query = np.repeat(pair_query, sizes)
    instance_column = (np.arange(ends[-1]) - np.repeat(ends - sizes, sizes)
                       + np.repeat(leaf_offsets[pair_leaf], sizes))
    return instance_query, instance_column


class _QueryFrontier:
    """Running top-k tables of every query in the batch.

    ``squared[q]`` holds query ``q``'s k best squared distances in ascending
    order (padded with ``inf`` until k answers exist), so the BSF threshold is
    an O(1) lookup of the last column.  Merging a batch of offers is one
    lexicographic sort under (distance², row), the same total order as the
    sequential searcher's bounded heap — on tied distances the smaller
    dataset row wins in both engines, so the selected sets match no matter
    how the refinement schedules differ.
    """

    def __init__(self, num_queries: int, k: int) -> None:
        self.k = k
        self.squared = np.full((num_queries, k), np.inf, dtype=np.float64)
        self.rows = np.full((num_queries, k), -1, dtype=np.int64)

    def threshold(self, query: int) -> float:
        return float(self.squared[query, -1])

    def thresholds(self, queries: np.ndarray) -> np.ndarray:
        return self.squared[queries, -1]

    def offer_pairs(self, pair_query: np.ndarray, squared: np.ndarray,
                    rows: np.ndarray) -> None:
        """Merge a round's candidate pairs into every affected query's top-k.

        ``pair_query`` must be sorted (pairs are produced query-major).  The
        ragged per-query offers are padded into one rectangle so the whole
        round costs a single sort instead of one Python-level merge per query.
        """
        unique_queries, counts = np.unique(pair_query, return_counts=True)
        width = int(counts.max())
        ends = np.cumsum(counts)
        # Column of each pair inside its query's padded row.
        slot = np.arange(pair_query.shape[0]) - np.repeat(ends - counts, counts)
        padded_squared = np.full((unique_queries.shape[0], self.k + width), np.inf)
        padded_rows = np.full((unique_queries.shape[0], self.k + width), -1,
                              dtype=np.int64)
        padded_squared[:, : self.k] = self.squared[unique_queries]
        padded_rows[:, : self.k] = self.rows[unique_queries]
        query_of_pair = np.repeat(np.arange(unique_queries.shape[0]), counts)
        padded_squared[query_of_pair, self.k + slot] = squared
        padded_rows[query_of_pair, self.k + slot] = rows
        order = np.lexsort((padded_rows, padded_squared), axis=1)[:, : self.k]
        self.squared[unique_queries] = np.take_along_axis(padded_squared, order, axis=1)
        self.rows[unique_queries] = np.take_along_axis(padded_rows, order, axis=1)


class BatchSearcher:
    """Answers exact k-NN queries for whole query batches over a built tree.

    Parameters
    ----------
    index:
        A built :class:`~repro.index.tree.TreeIndex`.
    normalize_queries:
        z-normalize incoming queries (the paper's setting).
    flat_refinement_threshold:
        Same meaning as in :class:`~repro.index.search.ExactSearcher`: below
        this average leaf size the engine filters-and-refines over the flat
        per-series directory instead of walking leaves.  The batched default
        (4.0) is higher than the sequential one (1.5) on purpose: the flat
        path's fixed cost — the full ``query x series`` bound matrix — is
        amortized over the whole batch, so the crossover against the per-leaf
        machinery sits at a larger average leaf size.  Both paths return
        identical exact answers.
    group_target:
        Target number of series each query contributes to a shared refinement
        round on the tree path (defaults to ``max(leaf_size, 64)``, matching
        the sequential searcher's leaf grouping).  Larger values mean fewer,
        bigger rounds: less per-round overhead, but BSF thresholds refresh
        less often.
    flat_block_size:
        Per-query candidate nomination budget per round on the flat path
        (matches the sequential flat search's block size).
    delta_source:
        Optional zero-argument callable returning the current
        :class:`~repro.index.dynamic.DeltaView` of a dynamic index (or
        ``None`` when there are no pending writes).  When set, every batch
        answers over *tree ∪ delta − tombstones*.
    intra_searcher:
        Optional already-configured
        :class:`~repro.index.search.ExactSearcher` over the same index,
        used by the small-batch intra-query fallback.  Owners that hold a
        per-query engine anyway (``ExactSearcher.knn_batch``, the dynamic
        index's generation state) pass it here so the fallback shares that
        engine — and its persistent worker pool — instead of building a
        duplicate; when omitted, one is created lazily on first use.
    """

    def __init__(self, index: TreeIndex, normalize_queries: bool = True,
                 flat_refinement_threshold: float = 4.0,
                 group_target: int | None = None, flat_block_size: int = 128,
                 delta_source=None,
                 intra_searcher: "ExactSearcher | None" = None) -> None:
        if not index.is_built:
            raise SearchError("the index must be built before searching")
        if group_target is not None and group_target < 1:
            raise SearchError(f"group_target must be >= 1, got {group_target}")
        if flat_block_size < 1:
            raise SearchError(f"flat_block_size must be >= 1, got {flat_block_size}")
        self.index = index
        self.normalize_queries = normalize_queries
        self._delta_source = delta_source
        self.flat_refinement_threshold = flat_refinement_threshold
        self.group_target = group_target if group_target is not None else max(index.leaf_size, 64)
        self.flat_block_size = flat_block_size
        # Per-query engine for the intra-query fallback (used when a batch
        # is smaller than the worker pool); lazily built unless shared in.
        self._intra_searcher = intra_searcher
        # Hoisted out of the per-shard / per-round paths; re-captured once
        # per batch in case the tree was rebuilt in place (fit assigns fresh
        # weight arrays).
        self._summarization = index.summarization
        self._weights = index.summarization.weights

    # ------------------------------------------------------------- public

    def knn_batch(self, queries: np.ndarray, k: int = 1,
                  num_workers: "int | None" = None,
                  timeout_s: "float | None" = None) -> list[SearchResult]:
        """Exact k nearest neighbours of every query row, answered as a batch.

        Returns one :class:`~repro.index.search.SearchResult` per query, in
        input order, identical to calling
        :meth:`~repro.index.search.ExactSearcher.knn` per query.
        ``num_workers > 1`` splits the batch into query shards processed on a
        thread pool (the BLAS kernels release the GIL); a batch smaller than
        the pool is answered query by query with intra-query workers instead,
        so the spare cores refine leaves rather than idling.  ``None`` means
        the ``REPRO_NUM_WORKERS`` process default.

        ``timeout_s`` bounds the whole batch: once the budget runs out the
        still-active queries stop nominating leaves and finalize their
        best-so-far with ``stats.timed_out=True`` (reported distances stay
        exact; a timed-out set may miss a closer unrefined series).  Queries
        that finished before the deadline are unaffected.

        An **empty batch** (shape ``(0, l)``) is answered with ``[]`` — a
        contractual no-op, validated like any other batch so malformed empty
        inputs still raise typed errors.

        Every returned result carries the *batch's* wall time in
        ``stats.wall_time_s``: the latency each caller of the batched call
        actually observed (a micro-batched server request waits for its whole
        batch), as opposed to the per-query share encoded in the timing
        fields.
        """
        wall_start = time.perf_counter()
        results = self._knn_batch_timed(queries, k, num_workers, timeout_s)
        wall_time = time.perf_counter() - wall_start
        for result in results:
            result.stats.wall_time_s = wall_time
        return results

    def _knn_batch_timed(self, queries: np.ndarray, k: int,
                         num_workers: "int | None",
                         timeout_s: "float | None") -> list[SearchResult]:
        k = validated_count(k)
        deadline = resolve_deadline(timeout_s)
        num_workers = resolve_num_workers(num_workers)
        # Capture the dynamic overlay once per batch so every shard (possibly
        # on another pool thread) answers over the same consistent snapshot.
        delta = self._delta_source() if self._delta_source is not None else None
        available = self.index.num_series if delta is None else delta.num_surviving
        if k > available:
            raise SearchError(
                f"k={k} exceeds the number of "
                f"{'indexed' if delta is None else 'surviving'} series ({available})"
            )
        try:
            queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        except (TypeError, ValueError) as error:
            raise ValidationError(f"queries are not numeric: {error}") from None
        if queries.ndim != 2 or queries.shape[1] != self.index.dataset.series_length:
            raise ValidationError(
                f"queries must be rows of length {self.index.dataset.series_length}, "
                f"got shape {queries.shape}"
            )
        if not np.isfinite(queries).all():
            raise ValidationError("queries contain NaN or infinite values")
        num_queries = queries.shape[0]
        if num_queries == 0:
            return []
        self._summarization = self.index.summarization
        if self._summarization.weights is not self._weights:
            self._weights = self._summarization.weights
        if num_workers > num_queries:
            # A batch of 2 on an 8-worker pool would leave 6 workers idle
            # under query sharding; intra-query parallelism puts every
            # worker on each query's own leaf queue instead.  Answer
            # equivalence rests on the established cross-engine contract
            # (knn_batch == per-query knn): both engines select under the
            # total order (distance², row) and finalize through the
            # canonical recompute, which is what the exact-tie property
            # tests pin down — not on refining every row with one kernel,
            # since the two engines' kernels have differed since the
            # batched engine was introduced.
            return self._intra_query_fallback(queries, k, num_workers, delta,
                                              deadline)
        # Shard for workers, and in any case keep each pass's dense
        # query x series state under the _MAX_SHARD_CELLS budget.
        cell_cap = max(1, _MAX_SHARD_CELLS // max(1, self.index.num_series))
        num_shards = min(num_queries,
                         max(min(num_workers, num_queries),
                             -(-num_queries // cell_cap)))
        if num_shards == 1:
            return self._search_shard(queries, k, delta, deadline)
        shards = [shard for shard in chunk_indices(num_queries, num_shards)
                  if shard.size]
        pool = WorkerPool(num_workers)
        parts = pool.map(
            lambda shard: self._search_shard(queries[shard], k, delta, deadline),
            shards)
        return [result for part in parts for result in part]

    def _intra_query_fallback(self, queries: np.ndarray, k: int,
                              num_workers: int, delta,
                              deadline: "float | None" = None
                              ) -> list[SearchResult]:
        """Answer a small batch query by query with intra-query workers.

        Queries run one after another, each with the full worker pool on its
        own surviving-leaf queue, over the one delta snapshot captured for
        the batch.  Owners share their per-query engine through the
        ``intra_searcher`` constructor parameter; a standalone
        ``BatchSearcher`` builds one lazily with its own configuration.
        """
        searcher = self._intra_searcher
        if searcher is None:
            searcher = ExactSearcher(
                self.index, normalize_queries=self.normalize_queries,
                flat_refinement_threshold=self.flat_refinement_threshold)
            self._intra_searcher = searcher
        return [searcher._knn_under_delta(query, k, num_workers, delta,
                                          deadline=deadline)
                for query in queries]

    # -------------------------------------------------------------- engine

    def _search_shard(self, queries: np.ndarray, k: int, delta=None,
                      deadline: "float | None" = None) -> list[SearchResult]:
        if self.normalize_queries:
            queries = znormalize_batch(queries)
        num_queries = queries.shape[0]
        num_available = (self.index.num_series if delta is None
                         else delta.num_surviving)
        summaries = self._summarization.transform_batch(queries)
        stats = [SearchStats(num_series=num_available) for _ in range(num_queries)]
        frontier = _QueryFrontier(num_queries, k)

        if self.index.average_leaf_size < self.flat_refinement_threshold:
            self._flat_search(queries, summaries, frontier, stats, delta,
                              deadline)
        else:
            self._tree_search(queries, summaries, frontier, stats, delta,
                              deadline)

        values = self.index.dataset.values
        results = []
        for query_index, query in enumerate(queries):
            rows = frontier.rows[query_index]
            if stats[query_index].timed_out:
                # A timed-out query may not have filled its top-k yet; drop
                # the -1 padding so finalization only sees real winners.
                rows = rows[rows >= 0]
            results.append(finalize_result(query, values, rows,
                                           stats[query_index], delta=delta))
        return results

    # ------------------------------------------------------------ tree path

    def _tree_search(self, queries: np.ndarray, summaries: np.ndarray,
                     frontier: _QueryFrontier, stats: list[SearchStats],
                     delta=None, deadline: "float | None" = None) -> None:
        index = self.index
        num_leaves = len(index.leaf_nodes)
        num_queries = queries.shape[0]
        series_lower, series_upper, series_rows, leaf_offsets, leaf_sizes = (
            index.series_directory())
        weights = self._weights

        visited = np.zeros(num_queries, dtype=np.int64)
        checked = np.zeros(num_queries, dtype=np.int64)

        # ---- traversal: the full query x leaf bound matrix in one kernel
        # call, plus each query's private leaf visiting order.
        start = time.perf_counter()
        leaf_bounds = index.leaf_lower_bounds(summaries)
        orders = np.argsort(leaf_bounds, axis=1, kind="stable")
        sorted_bounds = np.take_along_axis(leaf_bounds, orders, axis=1)
        traversal_share = (time.perf_counter() - start) / max(1, num_queries)
        for stat in stats:
            stat.traversal_time = traversal_share

        # ---- seed: refine every query's most promising leaf (the first of
        # its visiting order) in one shared call.  The sequential searcher
        # seeds by descending the tree along the query's own word; any seed
        # yields the same exact answer, and the smallest-lower-bound leaf is
        # at least as promising, so the batched engine seeds straight from the
        # bound matrix instead of Q Python tree walks.  The BSF is still
        # infinite, so every series of a seed leaf is refined.
        start = time.perf_counter()
        seed_positions = orders[:, 0].copy()
        instance_query, instance_column = _expand_pairs(
            np.arange(num_queries), seed_positions, leaf_offsets, leaf_sizes)
        if delta is not None and delta.base_alive is not None:
            alive = delta.base_alive[series_rows[instance_column]]
            instance_query = instance_query[alive]
            instance_column = instance_column[alive]
        if instance_query.size:
            self._refine_pairs(queries, instance_query, series_rows[instance_column],
                               frontier, stats, delta)
        visited += 1
        checked += np.bincount(instance_query, minlength=num_queries)

        # The delta buffer is one shared extra refinement round right after
        # the seed: every query's surviving delta series (same multi-query
        # lower-bound kernel, tombstones masked to +inf) are refined together,
        # so the BSF is tight before the leaf rounds start nominating.
        if delta is not None and delta.rows.size:
            delta_bounds = batch_lower_bound_multi(summaries, delta.lower,
                                                   delta.upper, weights)
            delta_bounds[:, ~delta.alive] = np.inf
            checked += delta.rows.shape[0]
            pair_query_delta, pair_delta_column = np.nonzero(
                delta_bounds < frontier.thresholds(
                    np.arange(num_queries))[:, None])
            if pair_query_delta.size:
                self._refine_pairs(queries, pair_query_delta,
                                   delta.rows[pair_delta_column],
                                   frontier, stats, delta)
        seed_share = (time.perf_counter() - start) / max(1, num_queries)
        initial_thresholds = frontier.thresholds(np.arange(num_queries))
        below_initial = (sorted_bounds < initial_thresholds[:, None]).sum(axis=1)
        for query_index, stat in enumerate(stats):
            stat.nodes_pruned = num_leaves - int(below_initial[query_index])
            stat.approximate_time = seed_share

        # ---- shared refinement rounds.  Each round every active query
        # consumes the next window of its own leaf order (below its BSF), and
        # the union of nominated (query, leaf) pairs is evaluated with one
        # pair kernel call and one GEMM.
        average_leaf = max(1.0, float(leaf_sizes.mean()) if leaf_sizes.size else 1.0)
        base_window = max(4, int(np.ceil(self.group_target / average_leaf)))
        pointers = np.ones(num_queries, dtype=np.int64)  # position 0 was the seed
        active = np.ones(num_queries, dtype=bool)
        while True:
            active_queries = np.flatnonzero(active)
            if active_queries.size == 0:
                break
            if deadline_expired(deadline):
                # The seed round above already refined every query's most
                # promising leaf, so each still-active query finalizes the
                # best-so-far it has instead of an empty answer.
                for query_index in active_queries:
                    stats[query_index].timed_out = True
                break
            round_start = time.perf_counter()
            window = _round_window(base_window, num_queries, active_queries.size,
                                   num_leaves)
            pair_query, pair_leaf, cuts = _nominate_window(
                orders, sorted_bounds, pointers, active_queries, num_leaves,
                window, frontier.thresholds(active_queries))
            if pair_leaf.size:
                visited += np.bincount(pair_query, minlength=num_queries)
                instance_query, instance_column = _expand_pairs(
                    pair_query, pair_leaf, leaf_offsets, leaf_sizes)
                bounds = batch_lower_bound_pairs(summaries[instance_query],
                                                 series_lower[instance_column],
                                                 series_upper[instance_column], weights)
                checked += np.bincount(instance_query, minlength=num_queries)
                survivors = bounds < frontier.thresholds(instance_query)
                if delta is not None and delta.base_alive is not None:
                    survivors &= delta.base_alive[series_rows[instance_column]]
                if survivors.any():
                    self._refine_pairs(queries, instance_query[survivors],
                                       series_rows[instance_column[survivors]],
                                       frontier, stats, delta)
            pointers[active_queries] += cuts
            finished = active_queries[cuts < window]
            for query_index in finished:
                stats[query_index].leaves_pruned_in_queue += max(
                    0, int(below_initial[query_index]) - int(pointers[query_index]))
            active[finished] = False
            round_share = (time.perf_counter() - round_start) / active_queries.size
            for query_index in active_queries:
                stats[query_index].leaf_times.append(round_share)
        for query_index, stat in enumerate(stats):
            stat.leaves_visited += int(visited[query_index])
            stat.series_lower_bounds += int(checked[query_index])

    # ------------------------------------------------------------ flat path

    def _flat_search(self, queries: np.ndarray, summaries: np.ndarray,
                     frontier: _QueryFrontier, stats: list[SearchStats],
                     delta=None, deadline: "float | None" = None) -> None:
        """Filter-and-refine over the flat directory, batched across queries.

        The per-series bounds of every query come from one multi-query kernel
        call; rounds then work like the tree path with each directory entry
        acting as a singleton leaf whose bound is already known, so no pair
        kernel is needed inside the rounds.  A dynamic ``delta`` appends its
        buffered series as extra directory columns (same multi-query kernel)
        and masks tombstoned entries to ``+inf``.
        """
        index = self.index
        num_queries = queries.shape[0]
        start = time.perf_counter()
        bounds, rows = index.all_series_lower_bounds(summaries)
        if delta is not None:
            if delta.base_alive is not None:
                bounds[:, ~delta.base_alive[rows]] = np.inf
            if delta.rows.size:
                delta_bounds = batch_lower_bound_multi(summaries, delta.lower,
                                                       delta.upper, self._weights)
                delta_bounds[:, ~delta.alive] = np.inf
                bounds = np.concatenate([bounds, delta_bounds], axis=1)
                rows = np.concatenate([rows, delta.rows])
        orders = np.argsort(bounds, axis=1, kind="stable")
        sorted_bounds = np.take_along_axis(bounds, orders, axis=1)
        num_entries = rows.shape[0]
        traversal_share = (time.perf_counter() - start) / max(1, num_queries)
        for stat in stats:
            stat.traversal_time = traversal_share
            stat.series_lower_bounds += num_entries

        pointers = np.zeros(num_queries, dtype=np.int64)
        active = np.ones(num_queries, dtype=bool)
        first_round = True
        while True:
            active_queries = np.flatnonzero(active)
            if active_queries.size == 0:
                return
            if not first_round and deadline_expired(deadline):
                # The first round always runs (the flat path's counterpart of
                # the tree path's seed-leaf refinement), so even a zero budget
                # finalizes a real best-so-far instead of an empty answer.
                for query_index in active_queries:
                    stats[query_index].timed_out = True
                return
            first_round = False
            round_start = time.perf_counter()
            window = _round_window(self.flat_block_size, num_queries,
                                   active_queries.size, num_entries)
            pair_query, pair_column, cuts = _nominate_window(
                orders, sorted_bounds, pointers, active_queries, num_entries,
                window, frontier.thresholds(active_queries))
            if pair_column.size:
                self._refine_pairs(queries, pair_query, rows[pair_column],
                                   frontier, stats, delta)
            pointers[active_queries] += cuts
            active[active_queries[cuts < window]] = False
            round_share = (time.perf_counter() - round_start) / active_queries.size
            for query_index in active_queries:
                stats[query_index].leaf_times.append(round_share)

    # ------------------------------------------------------- shared refine

    def _refine_pairs(self, queries: np.ndarray, pair_query: np.ndarray,
                      pair_rows: np.ndarray, frontier: _QueryFrontier,
                      stats: list[SearchStats], delta=None) -> None:
        """True distances for the surviving (query, series) pairs of a round.

        When many queries share candidates, one ``pairwise_squared_euclidean``
        GEMM covers the distinct queries against the distinct candidate series
        and each pair's distance is gathered from the rectangle.  When sharing
        is low the rectangle mostly computes distances nobody asked for, so
        the pairs are instead evaluated directly with one elementwise kernel
        over the gathered (query, series) rows.  ``pair_query`` must be sorted
        (pairs are produced query-major).  ``pair_rows`` may point into the
        dynamic delta buffer; ``delta.gather`` resolves those rows.
        """
        values = self.index.dataset.values
        unique_queries, counts = np.unique(pair_query, return_counts=True)
        unique_rows, column_of_pair = np.unique(pair_rows, return_inverse=True)
        if 4 * pair_rows.shape[0] >= unique_queries.shape[0] * unique_rows.shape[0]:
            candidates = (values[unique_rows] if delta is None
                          else delta.gather(values, unique_rows))
            squared = pairwise_squared_euclidean(queries[unique_queries],
                                                 candidates)
            row_of_pair = np.searchsorted(unique_queries, pair_query)
            distances = squared[row_of_pair, column_of_pair]
        else:
            gathered = (values[pair_rows] if delta is None
                        else delta.gather(values, pair_rows))
            difference = gathered - queries[pair_query]
            distances = np.einsum("ij,ij->i", difference, difference)
        # Vectorized pre-filter: pairs strictly above their query's current
        # k-th best can never enter that query's top-k (a pair *at* the
        # threshold still can, by winning the smaller-row tie-break), so
        # dropping them shrinks the padded merge rectangle without changing
        # the retained sets.
        surviving = distances <= frontier.thresholds(pair_query)
        if surviving.any():
            frontier.offer_pairs(pair_query[surviving], distances[surviving],
                                 pair_rows[surviving])
        for position, query_index in enumerate(unique_queries):
            stats[query_index].exact_distances += int(counts[position])
