"""repro — a Python reproduction of the SOFA exact similarity-search system.

The package implements the SymbOlic Fourier Approximation index (SOFA) from
"Fast and Exact Similarity Search in Less than a Blink of an Eye" (ICDE 2025)
together with every substrate it depends on: the SFA and iSAX summarizations,
the MESSI-style tree index, the GEMINI exact-search engine, SIMD-style
lower-bound kernels, scan and brute-force baselines, synthetic stand-ins for
the paper's 17-dataset benchmark, and the evaluation machinery (TLB, pruning
power, critical-difference ranks, virtual-core scaling).

Quickstart
----------
>>> from repro import SofaIndex, load_dataset, split_queries
>>> dataset = load_dataset("LenDB", num_series=500)
>>> index_set, queries = split_queries(dataset, num_queries=10)
>>> index = SofaIndex(leaf_size=50).build(index_set)
>>> result = index.nearest_neighbor(queries[0])
>>> result.nearest_distance >= 0.0
True
"""

from repro.baselines import FlatL2Index, SerialScan, UcrSuiteScan
from repro.core import (
    CorruptionError,
    Dataset,
    PartialResultError,
    ReproError,
    ShardError,
    ValidationError,
    WalError,
    euclidean,
    squared_euclidean,
    tightness_of_lower_bound,
    znormalize,
    znormalize_batch,
    znormalized_euclidean,
)
from repro.datasets import (
    dataset_names,
    generate_ucr_like_suite,
    high_frequency_names,
    load_benchmark_suite,
    load_dataset,
    perturbed_queries,
    split_queries,
)
from repro.evaluation import WorkloadRunner, critical_difference, evaluate_tlb, tlb_study
from repro.index import (
    BatchSearcher,
    DynamicIndex,
    ExactSearcher,
    MessiIndex,
    RetryPolicy,
    SearchResult,
    ShardedIndex,
    SofaIndex,
    TreeIndex,
    WriteAheadLog,
    compute_structure_stats,
    load_index,
    save_index,
)
from repro.obs import MetricsRegistry, SlowQueryLog, Trace, get_registry
from repro.transforms import DFT, PAA, SAX, SFA, HierarchicalBins

__version__ = "0.1.0"

__all__ = [
    "BatchSearcher",
    "CorruptionError",
    "DFT",
    "Dataset",
    "DynamicIndex",
    "ExactSearcher",
    "FlatL2Index",
    "HierarchicalBins",
    "MessiIndex",
    "MetricsRegistry",
    "PAA",
    "PartialResultError",
    "SAX",
    "SFA",
    "ReproError",
    "RetryPolicy",
    "SearchResult",
    "SerialScan",
    "ShardError",
    "ShardedIndex",
    "SlowQueryLog",
    "SofaIndex",
    "Trace",
    "TreeIndex",
    "UcrSuiteScan",
    "ValidationError",
    "WalError",
    "WorkloadRunner",
    "WriteAheadLog",
    "__version__",
    "compute_structure_stats",
    "critical_difference",
    "dataset_names",
    "euclidean",
    "evaluate_tlb",
    "generate_ucr_like_suite",
    "get_registry",
    "high_frequency_names",
    "load_benchmark_suite",
    "load_dataset",
    "load_index",
    "perturbed_queries",
    "save_index",
    "split_queries",
    "squared_euclidean",
    "tightness_of_lower_bound",
    "tlb_study",
    "znormalize",
    "znormalize_batch",
    "znormalized_euclidean",
]
