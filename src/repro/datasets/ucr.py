"""A UCR-archive-like suite of small, diverse datasets for the TLB ablation.

The ablation study of the paper (Tables V and VI, Figures 14 and 15) uses the
~120 datasets of the UCR time-series archive.  The archive itself cannot ship
with the reproduction, so this module generates a suite of small datasets with
deliberately diverse statistical and spectral profiles: different generator
families, lengths, trends, noise levels and distribution shapes.  Each suite
entry provides a train split (used to learn SFA) and a test split (used as
queries), mirroring how the paper uses the archive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.series import Dataset
from repro.datasets.synthetic import (
    embedding_vectors,
    mixed_frequency,
    oscillatory,
    random_walk,
    red_noise,
    seismic_events,
    smooth_signal,
)


@dataclass
class UcrLikeDataset:
    """One entry of the UCR-like suite: a named train/test pair."""

    name: str
    train: Dataset
    test: Dataset


def _profiles() -> list[dict]:
    """Generator configurations spanning the axes the UCR archive covers."""
    profiles = []
    lengths = (64, 96, 128, 160, 256)
    for i, length in enumerate(lengths):
        profiles.append({"name": f"Walk{length}", "length": length,
                         "generator": random_walk, "kwargs": {}})
        profiles.append({"name": f"Smooth{length}", "length": length,
                         "generator": smooth_signal,
                         "kwargs": {"cutoff_fraction": 0.04 + 0.03 * i}})
        profiles.append({"name": f"Osc{length}", "length": length,
                         "generator": oscillatory,
                         "kwargs": {"min_frequency": 0.06 + 0.04 * (i % 3),
                                    "noise_level": 0.1 + 0.1 * (i % 2)}})
        profiles.append({"name": f"Seis{length}", "length": length,
                         "generator": seismic_events,
                         "kwargs": {"dominant_frequency": 0.1 + 0.15 * (i % 3)}})
        profiles.append({"name": f"Red{length}", "length": length,
                         "generator": red_noise,
                         "kwargs": {"exponent": 1.0 + 0.4 * (i % 3)}})
        profiles.append({"name": f"Vec{length}", "length": length,
                         "generator": embedding_vectors,
                         "kwargs": {"non_negative": bool(i % 2), "sparsity": 0.2 * (i % 2)}})
        profiles.append({"name": f"Mix{length}", "length": length,
                         "generator": mixed_frequency,
                         "kwargs": {"high_energy_fraction": 0.2 + 0.15 * i}})
    return profiles


def generate_ucr_like_suite(num_datasets: int | None = None, train_size: int = 200,
                            test_size: int = 50, seed: int = 0) -> list[UcrLikeDataset]:
    """Generate the UCR-like suite.

    Parameters
    ----------
    num_datasets:
        Number of suite entries (defaults to all ~35 profiles).
    train_size, test_size:
        Number of series per split.
    seed:
        Base seed; every entry uses a distinct derived seed.
    """
    profiles = _profiles()
    if num_datasets is not None:
        profiles = profiles[:num_datasets]
    suite = []
    for offset, profile in enumerate(profiles):
        generator = profile["generator"]
        length = profile["length"]
        train_values = generator(train_size, length, seed=seed + 2 * offset,
                                 **profile["kwargs"])
        test_values = generator(test_size, length, seed=seed + 2 * offset + 1,
                                **profile["kwargs"])
        suite.append(UcrLikeDataset(
            name=profile["name"],
            train=Dataset(train_values, name=f"{profile['name']}-train"),
            test=Dataset(test_values, name=f"{profile['name']}-test"),
        ))
    return suite
