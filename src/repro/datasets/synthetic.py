"""Synthetic data-series generators standing in for the paper's 17 datasets.

The paper's benchmark spans seismology (ETHZ, Iquique, LenDB, NEIC, OBS,
SCEDC, STEAD, TXED, PNW, OBST2024, Meier2019JGR, ISC-EHB), astronomy (Astro),
neuroscience (SALD) and vector benchmarks (SIFT1b, BigANN, Deep1B).  Those raw
collections total 1 TB and cannot ship with a reproduction, so this module
provides generators for each *family* of signals.  The property that matters
for SOFA-versus-MESSI behaviour is where the variance of a series sits in the
frequency spectrum (Figures 1, 12 and 13 of the paper), so every generator is
parameterized by how much energy it puts into high-frequency structure.

All generators return a 2-D ``float64`` array with one series per row and are
deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _check_shape(num_series: int, length: int) -> None:
    if num_series < 1:
        raise InvalidParameterError(f"num_series must be >= 1, got {num_series}")
    if length < 8:
        raise InvalidParameterError(f"length must be >= 8, got {length}")


def random_walk(num_series: int, length: int, seed: int | None = 0) -> np.ndarray:
    """Cumulative-sum random walks: the classic low-frequency benchmark signal."""
    _check_shape(num_series, length)
    rng = _rng(seed)
    steps = rng.standard_normal((num_series, length))
    return np.cumsum(steps, axis=1)


def smooth_signal(num_series: int, length: int, cutoff_fraction: float = 0.05,
                  seed: int | None = 0) -> np.ndarray:
    """Low-pass-filtered noise: smooth series such as fMRI-derived curves (SALD).

    ``cutoff_fraction`` is the fraction of the spectrum that is kept; smaller
    values give smoother series.
    """
    _check_shape(num_series, length)
    if not 0.0 < cutoff_fraction <= 1.0:
        raise InvalidParameterError("cutoff_fraction must be in (0, 1]")
    rng = _rng(seed)
    noise = rng.standard_normal((num_series, length))
    spectrum = np.fft.rfft(noise, axis=1)
    cutoff = max(2, int(cutoff_fraction * spectrum.shape[1]))
    spectrum[:, cutoff:] = 0.0
    return np.fft.irfft(spectrum, n=length, axis=1)


def red_noise(num_series: int, length: int, exponent: float = 1.5,
              seed: int | None = 0) -> np.ndarray:
    """Power-law (1/f^exponent) noise: AGN-style long-term variability (Astro)."""
    _check_shape(num_series, length)
    rng = _rng(seed)
    white = rng.standard_normal((num_series, length))
    spectrum = np.fft.rfft(white, axis=1)
    frequencies = np.fft.rfftfreq(length)
    frequencies[0] = frequencies[1]  # avoid division by zero at DC
    spectrum *= frequencies ** (-exponent / 2.0)
    return np.fft.irfft(spectrum, n=length, axis=1)


def seismic_events(num_series: int, length: int, dominant_frequency: float = 0.08,
                   noise_level: float = 0.3, event_probability: float = 0.9,
                   seed: int | None = 0) -> np.ndarray:
    """Seismogram-like bursts: background noise plus damped oscillation arrivals.

    ``dominant_frequency`` is the centre frequency of the P-wave burst as a
    fraction of the Nyquist frequency; seismic networks with broadband,
    high-sample-rate instruments (LenDB, SCEDC) are modelled with larger
    values, teleseismic/low-frequency catalogues with smaller values.
    """
    _check_shape(num_series, length)
    if not 0.0 < dominant_frequency <= 1.0:
        raise InvalidParameterError("dominant_frequency must be in (0, 1]")
    rng = _rng(seed)
    positions = np.arange(length)
    series = noise_level * rng.standard_normal((num_series, length))
    has_event = rng.random(num_series) < event_probability
    onsets = rng.integers(length // 8, length // 2, size=num_series)
    frequencies = dominant_frequency * (0.6 + 0.8 * rng.random(num_series))
    decays = rng.uniform(0.02, 0.08, size=num_series)
    amplitudes = rng.uniform(1.0, 4.0, size=num_series)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=num_series)
    for row in range(num_series):
        if not has_event[row]:
            continue
        offset = positions - onsets[row]
        envelope = np.where(offset >= 0, np.exp(-decays[row] * offset), 0.0)
        carrier = np.sin(np.pi * frequencies[row] * offset + phases[row])
        series[row] += amplitudes[row] * envelope * carrier
    return series


def oscillatory(num_series: int, length: int, min_frequency: float = 0.08,
                max_frequency: float = 0.25, noise_level: float = 0.2,
                seed: int | None = 0) -> np.ndarray:
    """High-frequency oscillation mixtures: the regime where PAA flat-lines.

    Each series is a sum of two sinusoids with per-series random frequencies
    (expressed as fractions of the Nyquist frequency) plus white noise; this is
    the kind of signal Figure 1 (top) shows PAA collapsing on.  The defaults
    put the energy around Fourier coefficients 10-32 of a 256-point series:
    far above what a 16-segment PAA can represent, but still within the window
    of coefficients SFA selects from.
    """
    _check_shape(num_series, length)
    if not 0.0 < min_frequency <= max_frequency <= 1.0:
        raise InvalidParameterError("need 0 < min_frequency <= max_frequency <= 1")
    rng = _rng(seed)
    positions = np.arange(length)
    frequencies = rng.uniform(min_frequency, max_frequency, size=(num_series, 2))
    phases = rng.uniform(0.0, 2.0 * np.pi, size=(num_series, 2))
    amplitudes = rng.uniform(0.5, 1.5, size=(num_series, 2))
    series = noise_level * rng.standard_normal((num_series, length))
    for component in range(2):
        series += amplitudes[:, component, None] * np.sin(
            np.pi * frequencies[:, component, None] * positions[None, :]
            + phases[:, component, None]
        )
    return series


def embedding_vectors(num_series: int, length: int, non_negative: bool = False,
                      sparsity: float = 0.0, seed: int | None = 0) -> np.ndarray:
    """Vector-dataset stand-ins (SIFT1b, BigANN, Deep1B).

    Vector data has no ordering, so its "spectrum" is flat: independent values
    per position.  SIFT-style descriptors are non-negative and sparse
    (histograms of gradients); deep descriptors are dense and roughly Gaussian.
    """
    _check_shape(num_series, length)
    if not 0.0 <= sparsity < 1.0:
        raise InvalidParameterError("sparsity must be in [0, 1)")
    rng = _rng(seed)
    if non_negative:
        values = rng.gamma(shape=1.2, scale=1.0, size=(num_series, length))
    else:
        values = rng.standard_normal((num_series, length))
    if sparsity > 0.0:
        mask = rng.random((num_series, length)) < sparsity
        values = np.where(mask, 0.0, values)
    return values


def mixed_frequency(num_series: int, length: int, high_energy_fraction: float = 0.5,
                    seed: int | None = 0) -> np.ndarray:
    """A tunable blend of a random walk and high-frequency oscillation.

    ``high_energy_fraction`` ∈ [0, 1] controls how much of the total variance
    lives in the high-frequency component, which is the single knob the
    Figure 13 correlation experiment sweeps.
    """
    _check_shape(num_series, length)
    if not 0.0 <= high_energy_fraction <= 1.0:
        raise InvalidParameterError("high_energy_fraction must be in [0, 1]")
    rng = _rng(seed)
    low = random_walk(num_series, length, seed=rng.integers(2**31))
    high = oscillatory(num_series, length, seed=rng.integers(2**31))
    low = low / low.std(axis=1, keepdims=True)
    high = high / high.std(axis=1, keepdims=True)
    return (np.sqrt(1.0 - high_energy_fraction) * low
            + np.sqrt(high_energy_fraction) * high)


def clustered(generator, num_series: int, length: int, num_clusters: int = 50,
              within_cluster_noise: float = 0.25, seed: int | None = 0,
              **generator_kwargs) -> np.ndarray:
    """Generate series clustered around templates drawn from ``generator``.

    The paper's collections contain hundreds of millions of series, so any
    query has near neighbours that are much closer than the average pairwise
    distance — the property that makes lower-bound pruning effective.  A
    scaled-down i.i.d. sample loses that property (all pairwise distances
    concentrate), so the registry generates *clustered* data instead: a set of
    template series from the family generator, and each output series is a
    randomly chosen template plus white noise.  The within-cluster noise level
    controls how close the nearest neighbours are.
    """
    _check_shape(num_series, length)
    if num_clusters < 1:
        raise InvalidParameterError(f"num_clusters must be >= 1, got {num_clusters}")
    if within_cluster_noise < 0:
        raise InvalidParameterError("within_cluster_noise must be non-negative")
    rng = _rng(seed)
    num_clusters = min(num_clusters, num_series)
    templates = generator(num_clusters, length, seed=rng.integers(2**31),
                          **generator_kwargs)
    # Normalise template scale so the noise level means the same thing for
    # every family.
    scales = templates.std(axis=1, keepdims=True)
    scales[scales == 0] = 1.0
    templates = templates / scales
    assignments = rng.integers(0, num_clusters, size=num_series)
    noise = within_cluster_noise * rng.standard_normal((num_series, length))
    return templates[assignments] + noise


#: Mapping from family name to generator, used by the dataset registry.
GENERATORS = {
    "random-walk": random_walk,
    "smooth": smooth_signal,
    "red-noise": red_noise,
    "seismic": seismic_events,
    "oscillatory": oscillatory,
    "embedding": embedding_vectors,
    "mixed": mixed_frequency,
}
