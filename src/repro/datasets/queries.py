"""Query-set generation.

The paper pairs every dataset with 100 held-out query series that are never
indexed.  Two strategies are supported here:

* ``split``   — hold out rows of the generated dataset (the default; it is
  what the paper does with the real collections);
* ``perturb`` — create queries by adding noise to randomly chosen indexed
  series, which produces queries whose nearest neighbour is known by
  construction and is useful for correctness tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DatasetError
from repro.core.normalization import znormalize_batch
from repro.core.series import Dataset


def split_queries(dataset: Dataset, num_queries: int = 100,
                  seed: int = 0) -> tuple[Dataset, Dataset]:
    """Hold out ``num_queries`` rows as the query set; return (index, queries)."""
    return dataset.split(num_queries, rng=np.random.default_rng(seed))


def perturbed_queries(dataset: Dataset, num_queries: int = 100, noise_level: float = 0.1,
                      seed: int = 0) -> tuple[Dataset, np.ndarray]:
    """Queries built by perturbing random indexed series.

    Returns ``(queries, source_rows)`` where ``source_rows[i]`` is the row of
    ``dataset`` that query ``i`` was derived from.  With small ``noise_level``
    the source row is almost always the exact nearest neighbour, which gives
    the tests a ground truth that does not require a brute-force scan.
    """
    if num_queries < 1:
        raise DatasetError("num_queries must be >= 1")
    if noise_level < 0:
        raise DatasetError("noise_level must be non-negative")
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, dataset.num_series, size=num_queries)
    base = dataset.values[rows]
    noisy = base + noise_level * rng.standard_normal(base.shape)
    queries = Dataset(znormalize_batch(noisy), name=f"{dataset.name}-perturbed-queries",
                      normalize=False)
    return queries, rows
