"""Synthetic stand-ins for the paper's benchmark datasets and query sets."""

from repro.datasets.queries import perturbed_queries, split_queries
from repro.datasets.registry import (
    DATASET_SPECS,
    DatasetSpec,
    dataset_names,
    get_spec,
    high_frequency_names,
    load_benchmark_suite,
    load_dataset,
)
from repro.datasets.synthetic import (
    GENERATORS,
    embedding_vectors,
    mixed_frequency,
    oscillatory,
    random_walk,
    red_noise,
    seismic_events,
    smooth_signal,
)
from repro.datasets.ucr import UcrLikeDataset, generate_ucr_like_suite

__all__ = [
    "DATASET_SPECS",
    "DatasetSpec",
    "GENERATORS",
    "UcrLikeDataset",
    "dataset_names",
    "embedding_vectors",
    "generate_ucr_like_suite",
    "get_spec",
    "high_frequency_names",
    "load_benchmark_suite",
    "load_dataset",
    "mixed_frequency",
    "oscillatory",
    "perturbed_queries",
    "random_walk",
    "red_noise",
    "seismic_events",
    "smooth_signal",
    "split_queries",
]
