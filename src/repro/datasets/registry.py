"""Registry of the paper's 17 benchmark datasets (Table I), scaled down.

Each entry records the dataset's name, its series length from Table I, the
synthetic family standing in for the original collection, the generator
parameters chosen to match the original's spectral character, and a scaled
number of series (the originals range from 0.5 M to 100 M series; the
reproduction defaults to a few thousand so every experiment runs on a laptop).

The ``high_frequency`` flag marks the datasets the paper identifies as
high-frequency / high-variance signals on which SOFA shows its largest gains
over MESSI (LenDB, SCEDC, Meier2019JGR, SIFT1b, OBS, BigANN, Iquique — the
left side of Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import DatasetError
from repro.core.series import Dataset
from repro.datasets.synthetic import GENERATORS, clustered


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one benchmark dataset and how to synthesise it."""

    name: str
    family: str
    series_length: int
    paper_num_series: int
    default_num_series: int
    generator_kwargs: dict = field(default_factory=dict)
    high_frequency: bool = False
    domain: str = "seismology"
    #: Ratio of series per cluster template when generating clustered data;
    #: clustering stands in for the density of the original billion-scale
    #: collections (see :func:`repro.datasets.synthetic.clustered`).
    cluster_ratio: int = 20
    within_cluster_noise: float = 0.25

    def generate(self, num_series: int | None = None, seed: int = 0,
                 normalize: bool = True, clustered_data: bool = True) -> Dataset:
        """Materialise the dataset as a :class:`~repro.core.series.Dataset`.

        ``clustered_data=False`` generates independent series instead, which is
        useful for distribution-level analyses (Figure 1) but removes the
        near-neighbour density that the query benchmarks rely on.
        """
        if self.family not in GENERATORS:
            raise DatasetError(f"unknown generator family '{self.family}'")
        count = num_series or self.default_num_series
        generator = GENERATORS[self.family]
        if clustered_data:
            num_clusters = max(2, count // self.cluster_ratio)
            values = clustered(generator, count, self.series_length,
                               num_clusters=num_clusters,
                               within_cluster_noise=self.within_cluster_noise,
                               seed=seed, **self.generator_kwargs)
        else:
            values = generator(count, self.series_length, seed=seed,
                               **self.generator_kwargs)
        metadata = {
            "family": self.family,
            "domain": self.domain,
            "high_frequency": self.high_frequency,
            "paper_num_series": self.paper_num_series,
        }
        return Dataset(values, name=self.name, normalize=normalize, metadata=metadata)


def _spec(name: str, family: str, length: int, paper_count: int, scaled: int,
          high_frequency: bool = False, domain: str = "seismology",
          **kwargs) -> DatasetSpec:
    return DatasetSpec(name=name, family=family, series_length=length,
                       paper_num_series=paper_count, default_num_series=scaled,
                       generator_kwargs=kwargs, high_frequency=high_frequency,
                       domain=domain)


#: The 17 datasets of Table I.  Series lengths match the paper; counts are scaled.
# Frequencies are fractions of the Nyquist frequency; for a 256-point series a
# fraction f corresponds to Fourier coefficient ~128·f.  High-gain datasets
# (the left side of Figure 12) concentrate their energy around coefficients
# 9-16 — above what a 16-segment PAA can represent but inside the coefficient
# window SFA selects from — while low-gain datasets stay below coefficient ~8.
DATASET_SPECS: tuple[DatasetSpec, ...] = (
    _spec("Astro", "red-noise", 256, 100_000_000, 4000, domain="astronomy",
          exponent=1.8),
    _spec("BigANN", "embedding", 100, 100_000_000, 4000, high_frequency=True,
          domain="vectors", non_negative=True, sparsity=0.35),
    _spec("Deep1b", "smooth", 96, 100_000_000, 4000, domain="vectors",
          cutoff_fraction=0.12),
    _spec("ETHZ", "seismic", 256, 4_999_932, 3000, dominant_frequency=0.05),
    _spec("Iquique", "seismic", 256, 578_853, 2000, high_frequency=True,
          dominant_frequency=0.08, noise_level=0.5),
    _spec("ISC_EHB_DepthPhases", "seismic", 256, 100_000_000, 4000,
          dominant_frequency=0.02, noise_level=0.2),
    _spec("LenDB", "oscillatory", 256, 37_345_260, 3000, high_frequency=True,
          min_frequency=0.08, max_frequency=0.125),
    _spec("Meier2019JGR", "oscillatory", 256, 6_361_998, 2500, high_frequency=True,
          min_frequency=0.07, max_frequency=0.115),
    _spec("NEIC", "seismic", 256, 93_473_541, 4000, dominant_frequency=0.03),
    _spec("OBS", "seismic", 256, 15_508_794, 3000, high_frequency=True,
          dominant_frequency=0.09, noise_level=0.5),
    _spec("OBST2024", "seismic", 256, 4_160_286, 2500, dominant_frequency=0.06,
          noise_level=0.4),
    _spec("PNW", "seismic", 256, 31_982_766, 3000, dominant_frequency=0.035),
    _spec("SALD", "smooth", 128, 100_000_000, 4000, domain="neuroscience",
          cutoff_fraction=0.06),
    _spec("SCEDC", "oscillatory", 256, 100_000_000, 4000, high_frequency=True,
          min_frequency=0.075, max_frequency=0.12, noise_level=0.3),
    _spec("SIFT1b", "embedding", 128, 100_000_000, 4000, high_frequency=True,
          domain="vectors", non_negative=True, sparsity=0.2),
    _spec("STEAD", "seismic", 256, 87_323_433, 4000, dominant_frequency=0.045),
    _spec("TXED", "seismic", 256, 35_851_641, 3000, dominant_frequency=0.04),
)


_SPEC_BY_NAME = {spec.name.lower(): spec for spec in DATASET_SPECS}


def dataset_names() -> list[str]:
    """Names of all 17 registered datasets, in Table I order."""
    return [spec.name for spec in DATASET_SPECS]


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset specification by (case-insensitive) name."""
    try:
        return _SPEC_BY_NAME[name.lower()]
    except KeyError:
        raise DatasetError(
            f"unknown dataset '{name}'; available: {', '.join(dataset_names())}"
        ) from None


def load_dataset(name: str, num_series: int | None = None, seed: int = 0,
                 normalize: bool = True) -> Dataset:
    """Generate the scaled-down stand-in for one of the 17 paper datasets."""
    return get_spec(name).generate(num_series=num_series, seed=seed, normalize=normalize)


def load_benchmark_suite(num_series: int | None = None, seed: int = 0,
                         names: "list[str] | None" = None) -> dict[str, Dataset]:
    """Generate every registered dataset (optionally restricted to ``names``)."""
    selected = names or dataset_names()
    suite = {}
    for offset, name in enumerate(selected):
        suite[name] = load_dataset(name, num_series=num_series,
                                   seed=seed + offset)
    return suite


def high_frequency_names() -> list[str]:
    """Datasets the paper identifies as high-frequency (largest SOFA gains)."""
    return [spec.name for spec in DATASET_SPECS if spec.high_frequency]
