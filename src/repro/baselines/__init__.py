"""Exact-search baselines: plain scan, UCR Suite-P analogue, FAISS FlatL2 analogue."""

from repro.baselines.flatl2 import BatchSearchResult, BatchSearchStats, FlatL2Index
from repro.baselines.serial_scan import SerialScan
from repro.baselines.ucr_suite import ScanResult, ScanStats, UcrSuiteScan

__all__ = [
    "BatchSearchResult",
    "BatchSearchStats",
    "FlatL2Index",
    "ScanResult",
    "ScanStats",
    "SerialScan",
    "UcrSuiteScan",
]
