"""FAISS ``IndexFlatL2`` analogue: exact brute force over mini-batches of queries.

FAISS answers exact L2 queries by computing the full distance matrix between a
batch of queries and the stored vectors with BLAS (MKL in the paper's setup)
and partially sorting each row.  It cannot parallelise a *single* query, so the
paper feeds it mini-batches with one query per core.

This reproduction follows the same structure: vectors and their squared norms
are stored at build time, queries are processed in mini-batches through one
matrix multiplication per batch, and ``numpy.argpartition`` plays the role of
FAISS's partial sort.  Per-batch wall times are recorded so the virtual-core
simulator can model the batch-parallel execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import SearchError
from repro.core.normalization import znormalize_batch
from repro.core.series import Dataset


@dataclass
class BatchSearchStats:
    """Per-mini-batch timings of a FlatL2 search."""

    batch_times: list[float] = field(default_factory=list)
    num_queries: int = 0

    @property
    def total_time(self) -> float:
        return float(sum(self.batch_times))


@dataclass
class BatchSearchResult:
    indices: np.ndarray    # (num_queries, k)
    distances: np.ndarray  # (num_queries, k)
    stats: BatchSearchStats


class FlatL2Index:
    """Exact L2 index: store vectors, answer queries by batched brute force.

    Parameters
    ----------
    batch_size:
        Number of queries per mini-batch (the paper uses one query per
        available core).
    """

    def __init__(self, batch_size: int = 36, normalize_queries: bool = True) -> None:
        if batch_size < 1:
            raise SearchError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.normalize_queries = normalize_queries
        self.dataset: Dataset | None = None
        self._norms: np.ndarray | None = None
        self.build_time: float = 0.0

    def build(self, dataset: "Dataset | np.ndarray") -> "FlatL2Index":
        """Store the vectors and pre-compute their squared norms."""
        start = time.perf_counter()
        self.dataset = dataset if isinstance(dataset, Dataset) else Dataset(dataset)
        self._norms = np.einsum("ij,ij->i", self.dataset.values, self.dataset.values)
        self.build_time = time.perf_counter() - start
        return self

    def _require_built(self) -> None:
        if self.dataset is None or self._norms is None:
            raise SearchError("FlatL2Index.build must be called before querying")

    def search(self, queries: np.ndarray, k: int = 1) -> BatchSearchResult:
        """Exact k-NN of a batch of queries (one query per row)."""
        self._require_built()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dataset.series_length:
            raise SearchError(
                f"queries must have length {self.dataset.series_length}, "
                f"got {queries.shape[1]}"
            )
        if k < 1 or k > self.dataset.num_series:
            raise SearchError(f"k must be in [1, {self.dataset.num_series}], got {k}")
        if self.normalize_queries:
            queries = znormalize_batch(queries)

        stats = BatchSearchStats(num_queries=queries.shape[0])
        all_indices = np.empty((queries.shape[0], k), dtype=np.int64)
        all_distances = np.empty((queries.shape[0], k), dtype=np.float64)
        values = self.dataset.values

        for start_row in range(0, queries.shape[0], self.batch_size):
            batch = queries[start_row:start_row + self.batch_size]
            start = time.perf_counter()
            query_norms = np.einsum("ij,ij->i", batch, batch)[:, None]
            squared = query_norms + self._norms[None, :] - 2.0 * (batch @ values.T)
            np.maximum(squared, 0.0, out=squared)
            if k < squared.shape[1]:
                top = np.argpartition(squared, k - 1, axis=1)[:, :k]
            else:
                top = np.tile(np.arange(squared.shape[1]), (squared.shape[0], 1))
            top_distances = np.take_along_axis(squared, top, axis=1)
            order = np.argsort(top_distances, axis=1, kind="stable")
            stats.batch_times.append(time.perf_counter() - start)

            rows = slice(start_row, start_row + batch.shape[0])
            all_indices[rows] = np.take_along_axis(top, order, axis=1)
            all_distances[rows] = np.sqrt(np.take_along_axis(top_distances, order, axis=1))

        return BatchSearchResult(indices=all_indices, distances=all_distances, stats=stats)

    def knn(self, query: np.ndarray, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Single-query convenience wrapper returning ``(indices, distances)``."""
        result = self.search(np.asarray(query, dtype=np.float64).reshape(1, -1), k=k)
        return result.indices[0], result.distances[0]

    def nearest_neighbor(self, query: np.ndarray) -> tuple[int, float]:
        indices, distances = self.knn(query, k=1)
        return int(indices[0]), float(distances[0])
