"""Plain sequential scan: the simplest exact baseline.

Computes the distance between the query and every series with one batched
kernel call and selects the k smallest.  It is the reference answer generator
used by the test suite to verify that every index and optimized baseline is
exact.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import squared_euclidean_batch
from repro.core.errors import SearchError
from repro.core.normalization import znormalize
from repro.core.series import Dataset


class SerialScan:
    """Exact k-NN by brute force over the whole dataset."""

    def __init__(self, normalize_queries: bool = True) -> None:
        self.normalize_queries = normalize_queries
        self.dataset: Dataset | None = None

    def build(self, dataset: "Dataset | np.ndarray") -> "SerialScan":
        """Store the dataset (a scan has no index structure to build)."""
        self.dataset = dataset if isinstance(dataset, Dataset) else Dataset(dataset)
        return self

    def knn(self, query: np.ndarray, k: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, distances)`` of the exact k nearest neighbours."""
        if self.dataset is None:
            raise SearchError("SerialScan.build must be called before querying")
        if k < 1 or k > self.dataset.num_series:
            raise SearchError(f"k must be in [1, {self.dataset.num_series}], got {k}")
        query = np.asarray(query, dtype=np.float64)
        if self.normalize_queries:
            query = znormalize(query)
        squared = squared_euclidean_batch(query, self.dataset.values)
        order = np.argsort(squared, kind="stable")[:k]
        return order.astype(np.int64), np.sqrt(squared[order])

    def nearest_neighbor(self, query: np.ndarray) -> tuple[int, float]:
        """Exact nearest neighbour of ``query`` as ``(index, distance)``."""
        indices, distances = self.knn(query, k=1)
        return int(indices[0]), float(distances[0])
