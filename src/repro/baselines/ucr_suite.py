"""UCR Suite-P analogue: a parallel, early-abandoning sequential scan.

UCR Suite-P (the paper's scan baseline) assigns each thread a contiguous
segment of the in-memory series array; every thread scans its segment
independently with SIMD distance kernels and early abandoning against its
local best-so-far, and the partial results are merged at the end.

The reproduction mirrors that structure: the dataset is partitioned into
chunks, each chunk is scanned with an early-abandoning kernel, per-chunk wall
times are recorded, and the final answer is the merge of the per-chunk bests.
The per-chunk times feed the virtual-core simulator to estimate multi-worker
query times.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.distance import squared_euclidean_batch, squared_euclidean_early_abandon
from repro.core.errors import SearchError
from repro.core.normalization import znormalize
from repro.core.series import Dataset
from repro.parallel.pool import chunk_indices


@dataclass
class ScanStats:
    """Per-chunk timings and work counters of one UCR-suite query."""

    chunk_times: list[float] = field(default_factory=list)
    exact_distances: int = 0
    early_abandons: int = 0

    @property
    def total_time(self) -> float:
        return float(sum(self.chunk_times))


@dataclass
class ScanResult:
    indices: np.ndarray
    distances: np.ndarray
    stats: ScanStats


class UcrSuiteScan:
    """Early-abandoning exact scan partitioned into per-worker chunks.

    Parameters
    ----------
    num_chunks:
        Number of data partitions; with ``p`` virtual workers the simulator
        assigns these chunks to workers (the paper uses one chunk per thread).
    block_size:
        Number of series whose distances are evaluated with one batched kernel
        call before the best-so-far is refreshed; this mimics the SIMD blocks
        of the original implementation while keeping early abandoning.
    """

    def __init__(self, num_chunks: int = 36, block_size: int = 64,
                 normalize_queries: bool = True) -> None:
        if num_chunks < 1:
            raise SearchError("num_chunks must be >= 1")
        if block_size < 1:
            raise SearchError("block_size must be >= 1")
        self.num_chunks = num_chunks
        self.block_size = block_size
        self.normalize_queries = normalize_queries
        self.dataset: Dataset | None = None

    def build(self, dataset: "Dataset | np.ndarray") -> "UcrSuiteScan":
        """Store the dataset; a scan needs no index structure."""
        self.dataset = dataset if isinstance(dataset, Dataset) else Dataset(dataset)
        return self

    def knn(self, query: np.ndarray, k: int = 1) -> ScanResult:
        """Exact k-NN with per-chunk early abandoning."""
        if self.dataset is None:
            raise SearchError("UcrSuiteScan.build must be called before querying")
        if k < 1 or k > self.dataset.num_series:
            raise SearchError(f"k must be in [1, {self.dataset.num_series}], got {k}")
        query = np.asarray(query, dtype=np.float64)
        if self.normalize_queries:
            query = znormalize(query)

        stats = ScanStats()
        values = self.dataset.values
        # Max-heap of the k best squared distances found so far (negated).
        heap: list[tuple[float, int]] = []

        for chunk in chunk_indices(self.dataset.num_series, self.num_chunks):
            if chunk.size == 0:
                continue
            start = time.perf_counter()
            self._scan_chunk(query, values, chunk, k, heap, stats)
            stats.chunk_times.append(time.perf_counter() - start)

        items = sorted((-negative, index) for negative, index in heap)
        indices = np.array([index for _, index in items], dtype=np.int64)
        distances = np.sqrt(np.array([squared for squared, _ in items]))
        return ScanResult(indices=indices, distances=distances, stats=stats)

    def nearest_neighbor(self, query: np.ndarray) -> ScanResult:
        return self.knn(query, k=1)

    # ------------------------------------------------------------ internals

    def _scan_chunk(self, query: np.ndarray, values: np.ndarray, chunk: np.ndarray,
                    k: int, heap: list[tuple[float, int]], stats: ScanStats) -> None:
        threshold = -heap[0][0] if len(heap) >= k else np.inf
        for block_start in range(0, chunk.size, self.block_size):
            block = chunk[block_start:block_start + self.block_size]
            if not np.isfinite(threshold):
                squared = squared_euclidean_batch(query, values[block])
                stats.exact_distances += block.size
                for row, distance in zip(block, squared):
                    threshold = self._offer(heap, k, float(distance), int(row))
            else:
                for row in block:
                    distance = squared_euclidean_early_abandon(query, values[row], threshold)
                    stats.exact_distances += 1
                    if distance < threshold:
                        threshold = self._offer(heap, k, distance, int(row))
                    else:
                        stats.early_abandons += 1

    @staticmethod
    def _offer(heap: list[tuple[float, int]], k: int, squared: float, row: int) -> float:
        """Push a candidate into the k-best heap and return the new threshold."""
        if len(heap) < k:
            heapq.heappush(heap, (-squared, row))
        elif squared < -heap[0][0]:
            heapq.heapreplace(heap, (-squared, row))
        return -heap[0][0] if len(heap) >= k else np.inf
