"""repro.obs — the observability substrate: metrics, tracing, slow-query log.

Three pieces, deliberately independent:

- :mod:`repro.obs.metrics` — a process-wide, thread-safe registry of
  counters, gauges and fixed-bucket histograms with per-thread
  accumulation (no hot-path lock contention) and Prometheus text
  exposition for ``GET /metrics``.
- :mod:`repro.obs.trace` — a per-query :class:`Trace` of named spans
  threaded through the search pipeline; off by default, near-zero cost
  when disabled.
- :mod:`repro.obs.slowlog` — a structured slow-query log emitting one
  JSON line (with the full span breakdown, when traced) per
  over-threshold query.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Span, Trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "SlowQueryLog",
    "Span",
    "Trace",
]
