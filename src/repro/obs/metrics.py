"""Process-wide metrics: counters, gauges, histograms, Prometheus exposition.

Serving a query takes tens of microseconds of engine time, so the
instrumentation that observes it must cost nanoseconds — a single shared
lock on the hot path would serialize exactly the concurrency the serving
layer exists to exploit.  Every :class:`Counter` and :class:`Histogram`
therefore accumulates into *per-thread cells*: a dict keyed by
``threading.get_ident()`` whose values are plain mutable lists.  An
increment is one dict lookup plus ``cell[0] += n`` — atomic enough under
the GIL because list-item augmented assignment on a float never yields —
and the registry lock is taken only the first time a given thread touches
a given metric.  Reads (:meth:`Counter.value`, :meth:`render`) sum the
cells without locking writers out; a scrape may catch a cell mid-update
and report a value a few increments stale, which is fine for monotonic
series — Prometheus semantics only require that successive scrapes never
go backwards, and cells are never removed or zeroed.

Cells are keyed by thread *ident*, which CPython recycles after a thread
exits.  Recycling is harmless here: a reused ident hands the new thread
the dead thread's cell, and since cells only ever accumulate into the same
monotonic total, attribution between threads is irrelevant.

The whole module is stdlib-only.  :meth:`MetricsRegistry.render` emits the
Prometheus text exposition format (version 0.0.4) so any scraper — or the
parser-based tests — can consume ``GET /metrics`` directly.

Disabling
---------
``registry.set_enabled(False)`` turns every ``inc``/``observe``/``set``
into an immediate return — the operator kill switch, and the
"uninstrumented" baseline that :mod:`benchmarks.bench_obs_overhead`
measures against.  The default registry honours ``REPRO_METRICS=0`` (or
``false``/``off``) at import time.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Callable, Iterable, Sequence

from repro.core.errors import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram bucket upper bounds, tuned for query latencies: from
#: half a millisecond (a small flat search) to ten seconds (a huge scatter
#: with retries).  ``+Inf`` is implicit — the render step appends it.
DEFAULT_LATENCY_BUCKETS: "tuple[float, ...]" = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_VALID_REST = _VALID_FIRST | set("0123456789")


def _check_name(name: str) -> str:
    if not name or name[0] not in _VALID_FIRST \
            or any(ch not in _VALID_REST for ch in name):
        raise InvalidParameterError(
            f"invalid metric name {name!r}: must match "
            f"[a-zA-Z_:][a-zA-Z0-9_:]*")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    if value != value:  # NaN (a dead callback gauge) must still render
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


class _Child:
    """Shared plumbing: one labelled time series inside a family."""

    __slots__ = ("_family",)

    def __init__(self, family: "_Family") -> None:
        self._family = family

    @property
    def _enabled(self) -> bool:
        return self._family.registry._enabled


class Counter(_Child):
    """A monotonically increasing sum, accumulated in per-thread cells."""

    __slots__ = ("_cells",)

    def __init__(self, family: "_Family") -> None:
        super().__init__(family)
        self._cells: "dict[int, list[float]]" = {}

    def inc(self, amount: float = 1.0) -> None:
        if not self._family.registry._enabled:
            return
        if amount < 0:
            raise InvalidParameterError(
                f"counters are monotonic; cannot inc by {amount}")
        cells = self._cells
        ident = threading.get_ident()
        cell = cells.get(ident)
        if cell is None:
            with self._family.registry._lock:
                cell = cells.setdefault(ident, [0.0])
        cell[0] += amount

    def value(self) -> float:
        return sum(cell[0] for cell in list(self._cells.values()))

    def _reset(self) -> None:
        self._cells.clear()


class Gauge(_Child):
    """A value that can go up and down — or be computed at scrape time.

    :meth:`set_function` turns the gauge into a *callback* gauge: the
    callable runs on every scrape, which is how cheap engine properties
    (WAL depth, delta size, tombstones) become time series without any
    write-path bookkeeping.
    """

    __slots__ = ("_value", "_fn", "_lock")

    def __init__(self, family: "_Family") -> None:
        super().__init__(family)
        self._value = 0.0
        self._fn: "Callable[[], float] | None" = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not self._family.registry._enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._family.registry._enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: "Callable[[], float]") -> None:
        """Compute the gauge by calling ``fn`` at every scrape."""
        with self._lock:
            self._fn = fn

    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:  # noqa: BLE001 — a dead callback must not kill /metrics
                return float("nan")
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Child):
    """Fixed cumulative buckets with per-thread accumulation.

    Each thread's cell is ``[counts, total, count]`` where ``counts`` has
    one slot per finite bucket plus the implicit ``+Inf``.  ``observe`` is
    a bisect plus three in-place updates — no locks after the first touch.
    """

    __slots__ = ("_cells",)

    def __init__(self, family: "_Family") -> None:
        super().__init__(family)
        self._cells: "dict[int, list]" = {}

    def observe(self, value: float) -> None:
        if not self._family.registry._enabled:
            return
        cells = self._cells
        ident = threading.get_ident()
        cell = cells.get(ident)
        if cell is None:
            with self._family.registry._lock:
                cell = cells.setdefault(
                    ident,
                    [[0] * (len(self._family.buckets) + 1), 0.0, 0])
        cell[0][bisect_left(self._family.buckets, value)] += 1
        cell[1] += value
        cell[2] += 1

    def snapshot(self) -> "tuple[list[int], float, int]":
        """(per-bucket counts, sum, count) summed over all threads."""
        counts = [0] * (len(self._family.buckets) + 1)
        total = 0.0
        count = 0
        for cell in list(self._cells.values()):
            for i, n in enumerate(cell[0]):
                counts[i] += n
            total += cell[1]
            count += cell[2]
        return counts, total, count

    def value(self) -> int:
        """Total number of observations (the ``_count`` series)."""
        return self.snapshot()[2]

    def _reset(self) -> None:
        self._cells.clear()


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One metric name: its metadata plus a child per label combination."""

    __slots__ = ("registry", "name", "help", "type", "labelnames",
                 "buckets", "_children")

    def __init__(self, registry: "MetricsRegistry", name: str, help_text: str,
                 metric_type: str, labelnames: "tuple[str, ...]",
                 buckets: "tuple[float, ...]") -> None:
        self.registry = registry
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: "dict[tuple[str, ...], _Child]" = {}

    def labels(self, **labelvalues: str):
        """The child for one label combination (created on first use)."""
        if tuple(sorted(labelvalues)) != tuple(sorted(self.labelnames)):
            raise InvalidParameterError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labelvalues)}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self.registry._lock:
                child = self._children.setdefault(
                    key, _TYPES[self.type](self))
        return child

    def _default_child(self):
        if self.labelnames:
            raise InvalidParameterError(
                f"metric {self.name!r} is labelled by "
                f"{list(self.labelnames)}; use .labels(...)")
        return self.labels()

    # Unlabelled families proxy the child API directly, so
    # ``registry.counter("x", "...").inc()`` just works.
    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def set_function(self, fn: "Callable[[], float]") -> None:
        self._default_child().set_function(fn)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def value(self) -> float:
        return self._default_child().value()

    def snapshot(self):
        return self._default_child().snapshot()

    def children(self) -> "dict[tuple[str, ...], _Child]":
        return dict(self._children)


class MetricsRegistry:
    """A process-wide set of metric families with Prometheus exposition.

    Creating the same family twice (same name, type, label names) returns
    the existing one, so modules can declare their metrics at import time
    without coordinating; re-declaring with *different* metadata raises.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._lock = threading.Lock()
        self._families: "dict[str, _Family]" = {}
        self._enabled = bool(enabled)

    # ------------------------------------------------------------ creation

    def _family(self, name: str, help_text: str, metric_type: str,
                labelnames: "Sequence[str]",
                buckets: "Sequence[float]" = ()) -> _Family:
        _check_name(name)
        labelnames = tuple(labelnames)
        for label in labelnames:
            _check_name(label)
        buckets = tuple(sorted(float(b) for b in buckets))
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.type != metric_type \
                        or existing.labelnames != labelnames \
                        or (metric_type == "histogram"
                            and existing.buckets != buckets):
                    raise InvalidParameterError(
                        f"metric {name!r} already registered as "
                        f"{existing.type} with labels "
                        f"{list(existing.labelnames)}")
                return existing
            family = _Family(self, name, help_text, metric_type,
                             labelnames, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str,
                labelnames: "Sequence[str]" = ()) -> _Family:
        """A monotonic counter family; name it ``*_total`` by convention."""
        return self._family(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str,
              labelnames: "Sequence[str]" = ()) -> _Family:
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(self, name: str, help_text: str,
                  labelnames: "Sequence[str]" = (),
                  buckets: "Sequence[float]" = DEFAULT_LATENCY_BUCKETS,
                  ) -> _Family:
        if not buckets:
            raise InvalidParameterError("histogram needs at least one bucket")
        return self._family(name, help_text, "histogram", labelnames, buckets)

    # ------------------------------------------------------------- control

    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        """Kill switch: when off, every write is an immediate return."""
        self._enabled = bool(enabled)

    def reset(self) -> None:
        """Zero every child (tests and benchmarks; never in production)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            for child in family.children().values():
                child._reset()

    def families(self) -> "list[_Family]":
        with self._lock:
            return list(self._families.values())

    # ---------------------------------------------------------- exposition

    def render(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: "list[str]" = []
        for family in sorted(self.families(), key=lambda f: f.name):
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.type}")
            for key in sorted(family.children()):
                child = family.children().get(key)
                if child is None:
                    continue
                label_str = ",".join(
                    f'{name}="{_escape_label_value(value)}"'
                    for name, value in zip(family.labelnames, key))
                if family.type == "histogram":
                    lines.extend(self._render_histogram(
                        family, child, label_str))
                else:
                    suffix = f"{{{label_str}}}" if label_str else ""
                    lines.append(
                        f"{family.name}{suffix} "
                        f"{_format_value(child.value())}")
        return "\n".join(lines) + "\n" if lines else ""

    @staticmethod
    def _render_histogram(family: _Family, child: Histogram,
                          label_str: str) -> "Iterable[str]":
        counts, total, count = child.snapshot()
        cumulative = 0
        prefix = f"{label_str}," if label_str else ""
        for bound, bucket_count in zip(
                list(family.buckets) + [float("inf")], counts):
            cumulative += bucket_count
            yield (f'{family.name}_bucket{{{prefix}le='
                   f'"{_format_value(bound)}"}} {cumulative}')
        suffix = f"{{{label_str}}}" if label_str else ""
        yield f"{family.name}_sum{suffix} {_format_value(total)}"
        yield f"{family.name}_count{suffix} {count}"


_DEFAULT_REGISTRY = MetricsRegistry(
    enabled=os.environ.get("REPRO_METRICS", "1").strip().lower()
    not in ("0", "false", "off", "no"))


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (what ``GET /metrics`` renders)."""
    return _DEFAULT_REGISTRY
