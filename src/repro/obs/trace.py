"""Per-query tracing: named spans with wall time and work counters.

A :class:`Trace` answers "where did this query's 40 ms go".  The search
pipeline threads an optional trace through every layer; each layer that
does meaningful work records a span.  Tracing is off by default — every
instrumentation site is literally ``if trace is not None:``, so the
disabled cost is one pointer comparison per site.

Spans come in two kinds, and the distinction carries the accounting
contract:

``phase``
    An *exclusive* top-level segment of the query's wall time: the phases
    recorded by one engine call partition it, so ``sum(phases)`` must land
    within ~10% of the measured wall time (the acceptance gate; the gap is
    Python dispatch between phases).  Phase names per engine are listed in
    ``docs/observability.md``.

``detail``
    Overlapping or nested measurements — per-shard engine time inside a
    concurrent scatter, per-worker refinement, heap-offer counts.  Details
    never enter the phase sum; they explain it.

Counters ride on any span as keyword arguments (``leaves=12``,
``offers=4096``) and surface verbatim in :meth:`Trace.to_dict`, which is
what the slow-query log and the HTTP ``"trace"`` payload serialize.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "Trace"]


@dataclass
class Span:
    """One named measurement inside a trace."""

    name: str
    seconds: float
    kind: str = "phase"  # "phase" (exclusive) or "detail" (overlapping)
    counters: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        entry = {"name": self.name, "seconds": self.seconds,
                 "kind": self.kind}
        if self.counters:
            entry["counters"] = {
                key: (int(value) if isinstance(value, (int, bool))
                      else float(value))
                for key, value in self.counters.items()}
        return entry


class Trace:
    """A thread-safe, append-only list of spans for one query.

    The lock only matters for detail spans recorded from worker threads
    (parallel refinement, concurrent shard futures); phases are appended
    from the single thread driving the query.
    """

    __slots__ = ("_lock", "_spans")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: "list[Span]" = []

    # ------------------------------------------------------------ recording

    def add_phase(self, name: str, seconds: float, **counters) -> None:
        """Record one exclusive top-level segment of the query's wall time."""
        with self._lock:
            self._spans.append(Span(name, float(seconds), "phase", counters))

    def add_detail(self, name: str, seconds: float = 0.0, **counters) -> None:
        """Record an overlapping/nested measurement (excluded from the sum)."""
        with self._lock:
            self._spans.append(Span(name, float(seconds), "detail", counters))

    @contextmanager
    def phase(self, name: str, **counters):
        """Time a ``with`` block as a phase span."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add_phase(name, time.perf_counter() - start, **counters)

    @contextmanager
    def detail(self, name: str, **counters):
        """Time a ``with`` block as a detail span."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add_detail(name, time.perf_counter() - start, **counters)

    # ------------------------------------------------------------ reporting

    @property
    def spans(self) -> "list[Span]":
        with self._lock:
            return list(self._spans)

    def breakdown(self) -> "dict[str, float]":
        """Phase seconds merged by name, in first-recorded order."""
        merged: "dict[str, float]" = {}
        for span in self.spans:
            if span.kind == "phase":
                merged[span.name] = merged.get(span.name, 0.0) + span.seconds
        return merged

    def phase_seconds(self) -> float:
        """Total time across phase spans — compare against wall time."""
        return sum(self.breakdown().values())

    def to_dict(self) -> dict:
        """JSON-ready form: span list plus the merged phase breakdown."""
        return {
            "spans": [span.to_dict() for span in self.spans],
            "phases": self.breakdown(),
            "phase_seconds": self.phase_seconds(),
        }
