"""Structured slow-query log: one JSON line per over-threshold query.

Latency histograms say *that* the p99 moved; the slow-query log says
*why*, one query at a time.  :meth:`SlowQueryLog.observe` is called by the
serving layer after every query with its wall time, its
:class:`~repro.index.search.SearchStats`, and (when the request was
traced) its :class:`~repro.obs.trace.Trace`; queries at or above the
threshold produce an entry that is kept in a bounded in-memory ring
(:meth:`recent`, for tests and ad-hoc inspection) and, when a path is
configured, appended as one JSON line to a file an operator can tail.

Entry format (all times in seconds)::

    {"ts": ..., "index": "lendb", "k": 5, "wall_time_s": 0.041,
     "timed_out": false, "partial": false, "num_workers": 4,
     "breakdown": {"approximate_s": ..., "traversal_s": ...,
                   "refinement_s": ..., "engine_wall_s": ...},
     "work": {"leaves_visited": ..., "series_lower_bounds": ...,
              "exact_distances": ...},
     "phases": {...}, "spans": [...]}        # only when traced
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path

from repro.core.errors import InvalidParameterError

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Record queries whose wall time meets ``threshold_s``.

    Parameters
    ----------
    threshold_s:
        Queries at or above this wall time are logged.
    path:
        Optional file to append one JSON line per slow query to.  Opened
        per write — slow queries are rare by construction, and per-write
        opens survive log rotation without any signal handling.
    capacity:
        Size of the in-memory ring served by :meth:`recent`.
    """

    def __init__(self, threshold_s: float, path: "str | Path | None" = None,
                 capacity: int = 256) -> None:
        if not (threshold_s > 0):
            raise InvalidParameterError(
                f"slow-query threshold must be > 0, got {threshold_s}")
        if capacity < 1:
            raise InvalidParameterError(
                f"slow-query log capacity must be >= 1, got {capacity}")
        self.threshold_s = float(threshold_s)
        self._path = Path(path) if path is not None else None
        self._entries: "deque[dict]" = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._logged = 0

    def observe(self, *, index: str, wall_time_s: float, k: int,
                stats=None, trace=None) -> "dict | None":
        """Log the query if slow; returns the entry, or ``None`` if fast."""
        if wall_time_s < self.threshold_s:
            return None
        entry = {
            "ts": time.time(),
            "index": index,
            "k": int(k),
            "wall_time_s": float(wall_time_s),
        }
        if stats is not None:
            entry.update({
                "timed_out": bool(stats.timed_out),
                "partial": bool(stats.partial),
                "num_workers": int(stats.num_workers),
                "breakdown": {
                    "approximate_s": float(stats.approximate_time),
                    "traversal_s": float(stats.traversal_time),
                    "refinement_s": float(stats.refinement_time),
                    "engine_wall_s": float(stats.wall_time_s),
                },
                "work": {
                    "leaves_visited": int(stats.leaves_visited),
                    "series_lower_bounds": int(stats.series_lower_bounds),
                    "exact_distances": int(stats.exact_distances),
                },
            })
        if trace is not None:
            traced = trace.to_dict()
            entry["phases"] = traced["phases"]
            entry["spans"] = traced["spans"]
        line = json.dumps(entry, separators=(",", ":"))
        with self._lock:
            self._entries.append(entry)
            self._logged += 1
            if self._path is not None:
                try:
                    with self._path.open("a", encoding="utf-8") as handle:
                        handle.write(line + "\n")
                except OSError:
                    # Telemetry must never fail the query it describes.
                    pass
        return entry

    def recent(self) -> "list[dict]":
        """The most recent entries, oldest first."""
        with self._lock:
            return list(self._entries)

    @property
    def logged(self) -> int:
        """Total slow queries observed (including ones evicted from the ring)."""
        with self._lock:
            return self._logged
