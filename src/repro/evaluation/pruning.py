"""Pruning-power evaluation.

The paper connects TLB differences to pruning power: for the SCEDC dataset a
24-percentage-point TLB gap translates into pruning 98 % of all series at the
first level of the tree versus 38 % for MESSI.  This module measures that
quantity directly: the fraction of candidate series whose lower bound to the
query already exceeds the true nearest-neighbour distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distance import squared_euclidean_batch
from repro.core.series import Dataset
from repro.transforms.base import SymbolicSummarization


@dataclass
class PruningRecord:
    """Pruning power of one method on one dataset."""

    method: str
    dataset: str
    pruning_power: float


def evaluate_pruning_power(summarization: SymbolicSummarization, train: Dataset,
                           queries: Dataset, fit: bool = True) -> float:
    """Mean fraction of series pruned by the summarization's lower bound.

    For every query the true 1-NN distance is computed by brute force and used
    as the pruning threshold, modelling a search whose best-so-far has already
    converged (the most favourable and method-independent comparison point).
    """
    if fit:
        summarization.fit(train)
    words = summarization.words(train)
    fractions = []
    for query in queries.values:
        query_summary = summarization.transform(query)
        lower = summarization.mindist_batch(query_summary, words)
        true = squared_euclidean_batch(query, train.values)
        threshold = true.min()
        fractions.append(float(np.mean(lower > threshold)))
    return float(np.mean(fractions))
