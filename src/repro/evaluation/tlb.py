"""Tightness-of-lower-bound (TLB) evaluation for the ablation study.

The paper's ablation (Section V-E) measures, for each summarization variant
and alphabet size, the mean ratio of the lower-bound distance between a query
and a candidate to their true Euclidean distance.  The query side uses the
*numeric* summary (PAA values or Fourier components) and the candidate side
the *symbolic* word, exactly as the index does at query time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distance import squared_euclidean_batch
from repro.core.lower_bounds import tightness_of_lower_bound
from repro.core.series import Dataset
from repro.transforms.base import SymbolicSummarization
from repro.transforms.sax import SAX
from repro.transforms.sfa import SFA


@dataclass
class TlbRecord:
    """TLB of one (method, dataset, alphabet size) combination."""

    method: str
    dataset: str
    alphabet_size: int
    tlb: float


def evaluate_tlb(summarization: SymbolicSummarization, train: Dataset, queries: Dataset,
                 max_pairs_per_query: int | None = None, seed: int = 0) -> float:
    """Mean TLB of one fitted summarization on a train/query pair.

    For every query the lower bound to every train series (or to a random
    subset of ``max_pairs_per_query`` of them) is divided by the true distance;
    the mean over all pairs is returned.
    """
    summarization.fit(train)
    train_words = summarization.words(train)
    rng = np.random.default_rng(seed)

    ratios_lower: list[np.ndarray] = []
    ratios_true: list[np.ndarray] = []
    for query in queries.values:
        query_summary = summarization.transform(query)
        if max_pairs_per_query is not None and max_pairs_per_query < train.num_series:
            rows = rng.choice(train.num_series, size=max_pairs_per_query, replace=False)
        else:
            rows = np.arange(train.num_series)
        lower = np.sqrt(summarization.mindist_batch(query_summary, train_words[rows]))
        true = np.sqrt(squared_euclidean_batch(query, train.values[rows]))
        ratios_lower.append(lower)
        ratios_true.append(true)
    return tightness_of_lower_bound(np.concatenate(ratios_lower), np.concatenate(ratios_true))


def make_ablation_method(method: str, word_length: int = 16,
                         alphabet_size: int = 256) -> SymbolicSummarization:
    """Instantiate one of the five ablation variants of Figure 14.

    Supported names: ``"iSAX"``, ``"SFA ED"``, ``"SFA ED +VAR"``, ``"SFA EW"``,
    ``"SFA EW +VAR"``.
    """
    if method == "iSAX":
        return SAX(word_length=word_length, alphabet_size=alphabet_size)
    parts = method.split()
    if parts[0] != "SFA" or parts[1] not in ("ED", "EW"):
        raise ValueError(f"unknown ablation method '{method}'")
    binning = "equi-depth" if parts[1] == "ED" else "equi-width"
    variance = "+VAR" in method
    return SFA(word_length=word_length, alphabet_size=alphabet_size, binning=binning,
               variance_selection=variance, sample_fraction=1.0)


ABLATION_METHODS = ("iSAX", "SFA ED", "SFA ED +VAR", "SFA EW", "SFA EW +VAR")


def tlb_study(datasets: "dict[str, tuple[Dataset, Dataset]]",
              alphabet_sizes: "tuple[int, ...]" = (4, 8, 16, 32, 64, 128, 256),
              methods: "tuple[str, ...]" = ABLATION_METHODS,
              word_length: int = 16,
              max_pairs_per_query: int | None = 100) -> list[TlbRecord]:
    """Run the full TLB grid of Tables V/VI over named (train, query) pairs."""
    records = []
    for dataset_name, (train, queries) in datasets.items():
        effective_length = min(word_length, train.series_length)
        for alphabet_size in alphabet_sizes:
            for method in methods:
                summarization = make_ablation_method(method, effective_length, alphabet_size)
                tlb = evaluate_tlb(summarization, train, queries,
                                   max_pairs_per_query=max_pairs_per_query)
                records.append(TlbRecord(method=method, dataset=dataset_name,
                                         alphabet_size=alphabet_size, tlb=tlb))
    return records


def mean_tlb_table(records: "list[TlbRecord]") -> dict[str, dict[int, float]]:
    """Aggregate records into the {method: {alphabet_size: mean TLB}} table shape."""
    sums: dict[tuple[str, int], list[float]] = {}
    for record in records:
        sums.setdefault((record.method, record.alphabet_size), []).append(record.tlb)
    table: dict[str, dict[int, float]] = {}
    for (method, alphabet_size), values in sums.items():
        table.setdefault(method, {})[alphabet_size] = float(np.mean(values))
    return table
