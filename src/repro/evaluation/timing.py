"""Timing helpers used by the workload runner and the benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np


class Timer:
    """A context manager measuring wall-clock time in seconds.

    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class QueryTimings:
    """Collection of per-query times with the summary statistics the paper reports."""

    times: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.times.append(float(seconds))

    @property
    def mean(self) -> float:
        return float(np.mean(self.times)) if self.times else 0.0

    @property
    def median(self) -> float:
        return float(np.median(self.times)) if self.times else 0.0

    @property
    def total(self) -> float:
        return float(np.sum(self.times)) if self.times else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.times, q)) if self.times else 0.0

    def as_milliseconds(self) -> dict:
        """Mean/median in milliseconds, the unit used by Tables II-IV."""
        return {"mean_ms": 1000.0 * self.mean, "median_ms": 1000.0 * self.median}
