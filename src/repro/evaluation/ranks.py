"""Critical-difference analysis (Figure 15 of the paper).

The paper compares the mean TLB ranks of the five summarization variants with
a critical-difference diagram: methods are ranked per dataset, average ranks
are reported, a Friedman test checks whether any difference exists at all, and
pairwise Wilcoxon signed-rank tests with Holm correction group methods into
cliques that are statistically indistinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np
from scipy import stats


@dataclass
class CriticalDifferenceResult:
    """Average ranks, the Friedman p-value and the indistinguishable cliques."""

    methods: list[str]
    average_ranks: dict[str, float]
    friedman_pvalue: float
    cliques: list[tuple[str, ...]]

    def ordered_methods(self) -> list[str]:
        """Methods sorted by average rank (best, i.e. lowest, first)."""
        return sorted(self.methods, key=lambda method: self.average_ranks[method])


def compute_average_ranks(scores: "dict[str, list[float]]",
                          higher_is_better: bool = True) -> dict[str, float]:
    """Average rank of each method across datasets (rank 1 = best).

    ``scores[method]`` must list one score per dataset, with every method
    scored on the same datasets in the same order.  Ties receive their average
    rank, as in the standard Demšar procedure.
    """
    methods = list(scores)
    matrix = np.array([scores[method] for method in methods], dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise ValueError("each method needs at least one score")
    if len({len(values) for values in scores.values()}) != 1:
        raise ValueError("every method must be scored on the same number of datasets")
    oriented = -matrix if higher_is_better else matrix
    ranks = np.apply_along_axis(stats.rankdata, 0, oriented)
    average = ranks.mean(axis=1)
    return {method: float(rank) for method, rank in zip(methods, average)}


def friedman_test(scores: "dict[str, list[float]]") -> float:
    """p-value of the Friedman test over the per-dataset scores."""
    samples = [np.asarray(values, dtype=np.float64) for values in scores.values()]
    if len(samples) < 3:
        # The Friedman test needs at least three groups; fall back to Wilcoxon.
        if len(samples) == 2:
            return wilcoxon_pvalue(samples[0], samples[1])
        return 1.0
    _, pvalue = stats.friedmanchisquare(*samples)
    return float(pvalue)


def wilcoxon_pvalue(first: np.ndarray, second: np.ndarray) -> float:
    """Two-sided Wilcoxon signed-rank p-value, robust to all-zero differences."""
    differences = np.asarray(first, dtype=np.float64) - np.asarray(second, dtype=np.float64)
    if np.allclose(differences, 0.0):
        return 1.0
    _, pvalue = stats.wilcoxon(first, second, zero_method="zsplit")
    return float(pvalue)


def holm_correction(pvalues: "list[float]") -> list[float]:
    """Holm step-down correction of a list of p-values (order preserved)."""
    order = np.argsort(pvalues)
    corrected = np.empty(len(pvalues), dtype=np.float64)
    running_max = 0.0
    for position, index in enumerate(order):
        adjusted = (len(pvalues) - position) * pvalues[index]
        running_max = max(running_max, min(1.0, adjusted))
        corrected[index] = running_max
    return corrected.tolist()


def critical_difference(scores: "dict[str, list[float]]", alpha: float = 0.05,
                        higher_is_better: bool = True) -> CriticalDifferenceResult:
    """Full Figure 15-style analysis: ranks, Friedman test and Holm cliques."""
    methods = list(scores)
    average_ranks = compute_average_ranks(scores, higher_is_better=higher_is_better)
    friedman_pvalue = friedman_test(scores)

    pairs = list(combinations(methods, 2))
    raw_pvalues = [wilcoxon_pvalue(np.asarray(scores[a]), np.asarray(scores[b]))
                   for a, b in pairs]
    corrected = holm_correction(raw_pvalues)
    indistinguishable = {pair for pair, pvalue in zip(pairs, corrected) if pvalue >= alpha}

    cliques = _build_cliques(methods, average_ranks, indistinguishable)
    return CriticalDifferenceResult(methods=methods, average_ranks=average_ranks,
                                    friedman_pvalue=friedman_pvalue, cliques=cliques)


def _build_cliques(methods: list[str], average_ranks: dict[str, float],
                   indistinguishable: set) -> list[tuple[str, ...]]:
    """Maximal contiguous groups (by rank order) of pairwise-indistinguishable methods."""
    ordered = sorted(methods, key=lambda method: average_ranks[method])

    def linked(a: str, b: str) -> bool:
        return (a, b) in indistinguishable or (b, a) in indistinguishable

    cliques: list[tuple[str, ...]] = []
    for start in range(len(ordered)):
        group = [ordered[start]]
        for candidate in ordered[start + 1:]:
            if all(linked(candidate, member) for member in group):
                group.append(candidate)
            else:
                break
        if len(group) > 1:
            clique = tuple(group)
            if not any(set(clique).issubset(set(existing)) for existing in cliques):
                cliques.append(clique)
    return cliques
