"""Plain-text table formatting for the paper-style experiment outputs.

Every benchmark prints its result as a small aligned table so that the
``bench_output.txt`` transcript can be compared side by side with the paper's
tables and figures.  The formatting helpers here keep that output consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None,
                 float_format: str = "{:.3f}") -> str:
    """Render rows as an aligned monospace table.

    Floats are rendered with ``float_format``; everything else with ``str``.
    """
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, (float, np.floating)):
                rendered.append(float_format.format(float(cell)))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line([str(header) for header in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_milliseconds(seconds: float) -> str:
    """Seconds → a millisecond string, the unit of Tables II-IV."""
    return f"{1000.0 * seconds:.1f} ms"


def relative_to_baseline(times: "dict[str, float]", baseline: str) -> dict[str, float]:
    """Express every method's time as a fraction of the baseline (Figure 12)."""
    if baseline not in times:
        raise KeyError(f"baseline '{baseline}' missing from {sorted(times)}")
    reference = times[baseline]
    if reference <= 0:
        raise ValueError("baseline time must be positive")
    return {method: value / reference for method, value in times.items()}
