"""Workload runner: build every method on a dataset, run queries, model cores.

This module glues the indexes, baselines, dataset registry and virtual-core
simulator into the experiment loop used by most benchmarks: for each dataset
and method it builds the structure, answers a set of held-out queries, and
reports both the *measured* single-threaded times and the *simulated*
multi-worker times obtained by replaying the measured per-task costs through
:func:`repro.parallel.simulator.schedule_tasks`.

Method names follow the paper: ``"SOFA"``, ``"MESSI"``, ``"FAISS"`` (the
FlatL2 analogue) and ``"UCR-SUITE"`` (the parallel-scan analogue).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.flatl2 import FlatL2Index
from repro.baselines.ucr_suite import UcrSuiteScan
from repro.core.errors import InvalidParameterError
from repro.core.series import Dataset
from repro.evaluation.timing import QueryTimings
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex
from repro.parallel.simulator import DEFAULT_SYNC_OVERHEAD, SimulatedRun, schedule_tasks

#: Methods understood by the workload runner, in the order the paper lists them.
METHODS = ("FAISS", "MESSI", "SOFA", "UCR-SUITE")


@dataclass
class BuildRecord:
    """Construction cost of one method on one dataset at one core count."""

    dataset: str
    method: str
    cores: int
    learn_time: float
    transform_time: float
    tree_time: float
    total_time: float


@dataclass
class QueryRecord:
    """Query cost of one method on one dataset at one core count and one k."""

    dataset: str
    method: str
    cores: int
    k: int
    query_times: list[float] = field(default_factory=list)
    exact_correct: bool = True

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.query_times)) if self.query_times else 0.0

    @property
    def median_time(self) -> float:
        return float(np.median(self.query_times)) if self.query_times else 0.0


@dataclass
class WorkloadResult:
    """All build and query records produced by one runner invocation."""

    build_records: list[BuildRecord] = field(default_factory=list)
    query_records: list[QueryRecord] = field(default_factory=list)

    def query_record(self, dataset: str, method: str, cores: int, k: int = 1) -> QueryRecord:
        for record in self.query_records:
            if (record.dataset == dataset and record.method == method
                    and record.cores == cores and record.k == k):
                return record
        raise KeyError(f"no query record for {dataset}/{method}/{cores} cores/k={k}")

    def mean_query_times(self, method: str, cores: int, k: int = 1) -> QueryTimings:
        timings = QueryTimings()
        for record in self.query_records:
            if record.method == method and record.cores == cores and record.k == k:
                timings.times.extend(record.query_times)
        return timings


class WorkloadRunner:
    """Runs the paper's build-then-query workload on scaled-down datasets.

    Parameters
    ----------
    core_counts:
        Virtual core counts to simulate (the paper uses 9, 18 and 36).
    leaf_size:
        Leaf capacity of the tree indexes.
    word_length, alphabet_size:
        Summarization parameters (16 and 256 in the paper).
    sofa_kwargs:
        Extra keyword arguments forwarded to :class:`SofaIndex` (binning,
        sampling fraction, …), used by the ablation benchmarks.
    """

    def __init__(self, core_counts: tuple[int, ...] = (9, 18, 36), leaf_size: int = 100,
                 word_length: int = 16, alphabet_size: int = 256,
                 sofa_kwargs: dict | None = None,
                 sync_overhead: float = DEFAULT_SYNC_OVERHEAD) -> None:
        if not core_counts:
            raise InvalidParameterError("core_counts must not be empty")
        self.core_counts = tuple(core_counts)
        self.leaf_size = leaf_size
        self.word_length = word_length
        self.alphabet_size = alphabet_size
        self.sofa_kwargs = dict(sofa_kwargs or {})
        self.sync_overhead = sync_overhead

    # --------------------------------------------------------- method setup

    def make_method(self, method: str):
        """Instantiate one of the four competitors with the runner's parameters.

        The tree indexes are pinned to one build worker: the runner's job is
        to measure *single-threaded* per-task costs for the virtual-core
        replay, and per-item timings taken inside concurrent worker threads
        would include contention wait, inflating every simulated core count.
        """
        if method == "SOFA":
            # An explicit num_workers in sofa_kwargs wins over the pin.
            sofa_kwargs = {"num_workers": 1, **self.sofa_kwargs}
            return SofaIndex(word_length=self.word_length, alphabet_size=self.alphabet_size,
                             leaf_size=self.leaf_size, **sofa_kwargs)
        if method == "MESSI":
            return MessiIndex(word_length=self.word_length, alphabet_size=self.alphabet_size,
                              leaf_size=self.leaf_size, num_workers=1)
        if method == "FAISS":
            return FlatL2Index(batch_size=max(self.core_counts))
        if method == "UCR-SUITE":
            return UcrSuiteScan(num_chunks=max(self.core_counts))
        raise InvalidParameterError(f"unknown method '{method}'; expected one of {METHODS}")

    # ---------------------------------------------------------------- build

    def _simulate_build(self, dataset_name: str, method: str, instance) -> list[BuildRecord]:
        records = []
        for cores in self.core_counts:
            if method in ("SOFA", "MESSI"):
                timings = instance.timings
                run = SimulatedRun(num_workers=cores)
                run.add_phase("learning", [], serial_time=timings.learn_time,
                              sync_overhead=self.sync_overhead)
                run.add_phase("transform", timings.transform_chunk_times,
                              sync_overhead=self.sync_overhead)
                run.add_phase("tree", timings.subtree_times,
                              sync_overhead=self.sync_overhead, num_barriers=2)
                phase_times = run.phase_times()
                records.append(BuildRecord(
                    dataset=dataset_name, method=method, cores=cores,
                    learn_time=phase_times["learning"],
                    transform_time=phase_times["transform"],
                    tree_time=phase_times["tree"],
                    total_time=run.total_time,
                ))
            else:
                build_time = getattr(instance, "build_time", 0.0)
                schedule = schedule_tasks([build_time], cores,
                                          sync_overhead=self.sync_overhead)
                records.append(BuildRecord(
                    dataset=dataset_name, method=method, cores=cores,
                    learn_time=0.0, transform_time=0.0, tree_time=build_time,
                    total_time=schedule.total_time,
                ))
        return records

    # --------------------------------------------------------------- query

    def _measure_queries(self, method: str, instance, queries: Dataset, k: int,
                         reference: "list[tuple[int, float]] | None"
                         ) -> tuple[list[dict], bool]:
        """Run every query once and collect its per-task costs.

        Returns one work profile per query: ``{"serial": float, "tasks": list}``
        ready to be replayed by the simulator for any number of cores, plus an
        exactness flag against the optional brute-force reference.
        """
        profiles: list[dict] = []
        correct = True
        if method in ("SOFA", "MESSI"):
            for row, query in enumerate(queries.values):
                # Pinned to one search worker for the same reason builds are:
                # the replay needs uncontended single-threaded per-item costs,
                # whatever REPRO_NUM_WORKERS says.
                result = instance.knn(query, k=k, num_workers=1)
                stats = result.stats
                profiles.append({"serial": stats.approximate_time + stats.traversal_time,
                                 "tasks": list(stats.leaf_times)})
                if reference is not None and k == 1:
                    correct &= self._matches_reference(result.nearest_distance,
                                                       reference[row][1])
        elif method == "UCR-SUITE":
            for row, query in enumerate(queries.values):
                result = instance.knn(query, k=k)
                profiles.append({"serial": 0.0, "tasks": list(result.stats.chunk_times)})
                if reference is not None and k == 1:
                    correct &= self._matches_reference(float(result.distances[0]),
                                                       reference[row][1])
        elif method == "FAISS":
            batch_result = instance.search(queries.values, k=k)
            batch_size = instance.batch_size
            for batch_index, batch_time in enumerate(batch_result.stats.batch_times):
                start = batch_index * batch_size
                count = min(batch_size, queries.num_series - start)
                # The batch is embarrassingly parallel over its queries: each
                # query is one task of equal share of the batch's work.
                per_query = batch_time / count
                for _ in range(count):
                    profiles.append({"serial": 0.0, "tasks": [per_query] * count,
                                     "shared_batch": True})
            if reference is not None and k >= 1:
                for row in range(queries.num_series):
                    correct &= self._matches_reference(float(batch_result.distances[row, 0]),
                                                       reference[row][1])
        else:
            raise InvalidParameterError(f"unknown method '{method}'")
        return profiles, correct

    def _simulate_query_times(self, profiles: list[dict], cores: int) -> list[float]:
        """Replay measured work profiles at a given virtual core count."""
        times = []
        for profile in profiles:
            schedule = schedule_tasks(profile["tasks"], cores,
                                      serial_time=profile["serial"],
                                      sync_overhead=self.sync_overhead)
            times.append(schedule.total_time)
        return times

    @staticmethod
    def _matches_reference(distance: float, reference_distance: float,
                           rtol: float = 1e-6, atol: float = 1e-8) -> bool:
        return bool(np.isclose(distance, reference_distance, rtol=rtol, atol=atol))

    # ----------------------------------------------------------------- run

    def run_dataset(self, dataset: Dataset, queries: Dataset,
                    methods: tuple[str, ...] = METHODS, k_values: tuple[int, ...] = (1,),
                    reference: "list[tuple[int, float]] | None" = None) -> WorkloadResult:
        """Build every method once and answer every query at every core count."""
        result = WorkloadResult()
        for method in methods:
            instance = self.make_method(method)
            instance.build(dataset)
            result.build_records.extend(self._simulate_build(dataset.name, method, instance))
            for k in k_values:
                profiles, correct = self._measure_queries(method, instance, queries, k,
                                                          reference)
                for cores in self.core_counts:
                    times = self._simulate_query_times(profiles, cores)
                    result.query_records.append(QueryRecord(
                        dataset=dataset.name, method=method, cores=cores, k=k,
                        query_times=times, exact_correct=correct,
                    ))
        return result

    def run_suite(self, suite: "dict[str, tuple[Dataset, Dataset]]",
                  methods: tuple[str, ...] = METHODS,
                  k_values: tuple[int, ...] = (1,)) -> WorkloadResult:
        """Run :meth:`run_dataset` over a named suite of (index, query) pairs."""
        combined = WorkloadResult()
        for _, (dataset, queries) in suite.items():
            partial = self.run_dataset(dataset, queries, methods=methods, k_values=k_values)
            combined.build_records.extend(partial.build_records)
            combined.query_records.extend(partial.query_records)
        return combined
