"""Evaluation substrate: TLB, pruning power, timing, ranks, workload runner."""

from repro.evaluation.pruning import PruningRecord, evaluate_pruning_power
from repro.evaluation.ranks import (
    CriticalDifferenceResult,
    compute_average_ranks,
    critical_difference,
    friedman_test,
    holm_correction,
    wilcoxon_pvalue,
)
from repro.evaluation.reporting import format_milliseconds, format_table, relative_to_baseline
from repro.evaluation.timing import QueryTimings, Timer
from repro.evaluation.tlb import (
    ABLATION_METHODS,
    TlbRecord,
    evaluate_tlb,
    make_ablation_method,
    mean_tlb_table,
    tlb_study,
)
from repro.evaluation.workloads import (
    METHODS,
    BuildRecord,
    QueryRecord,
    WorkloadResult,
    WorkloadRunner,
)

__all__ = [
    "ABLATION_METHODS",
    "BuildRecord",
    "CriticalDifferenceResult",
    "METHODS",
    "PruningRecord",
    "QueryRecord",
    "QueryTimings",
    "Timer",
    "TlbRecord",
    "WorkloadResult",
    "WorkloadRunner",
    "compute_average_ranks",
    "critical_difference",
    "evaluate_pruning_power",
    "evaluate_tlb",
    "format_milliseconds",
    "format_table",
    "friedman_test",
    "holm_correction",
    "make_ablation_method",
    "mean_tlb_table",
    "relative_to_baseline",
    "tlb_study",
    "wilcoxon_pvalue",
]
