"""Euclidean distance kernels.

The library works with squared distances internally (cheaper, and order
preserving); public query APIs report true Euclidean distances.  The kernels
here implement:

* plain squared Euclidean distance between two series,
* the z-normalized Euclidean distance of Definition 2,
* an early-abandoning variant used during exact-search refinement, and
* batched one-against-many distances used by the brute-force baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core.normalization import znormalize


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two equal-length series."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"series lengths differ: {a.shape} vs {b.shape}")
    diff = a - b
    return float(np.dot(diff, diff))


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two equal-length series."""
    return float(np.sqrt(squared_euclidean(a, b)))


def znormalized_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """z-normalized Euclidean distance of Definition 2.

    Both series are z-normalized independently before the plain Euclidean
    distance is computed.
    """
    return euclidean(znormalize(a), znormalize(b))


def squared_euclidean_early_abandon(a: np.ndarray, b: np.ndarray, threshold: float,
                                    chunk: int = 16) -> float:
    """Squared ED with early abandoning against ``threshold``.

    The distance is accumulated in chunks; as soon as the partial sum exceeds
    ``threshold`` the (partial, already larger) sum is returned.  Callers only
    rely on the result being ``>= threshold`` in that case, which is all the
    best-so-far pruning logic of GEMINI needs.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"series lengths differ: {a.shape} vs {b.shape}")
    if chunk <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk}")
    total = 0.0
    for start in range(0, a.shape[0], chunk):
        diff = a[start:start + chunk] - b[start:start + chunk]
        total += float(np.dot(diff, diff))
        if total > threshold:
            return total
    return total


def squared_euclidean_batch(query: np.ndarray, collection: np.ndarray) -> np.ndarray:
    """Squared ED between one query and every row of ``collection``.

    Uses the expanded form ``‖q‖² + ‖x‖² − 2 q·x`` so the heavy lifting is a
    single matrix-vector product (the NumPy/BLAS analogue of the paper's SIMD
    and MKL usage).  Negative values caused by floating-point cancellation are
    clipped to zero.
    """
    query = np.asarray(query, dtype=np.float64)
    collection = np.asarray(collection, dtype=np.float64)
    if collection.ndim != 2 or query.ndim != 1:
        raise ValueError("expected a 1-D query and a 2-D collection")
    if collection.shape[1] != query.shape[0]:
        raise ValueError(
            f"length mismatch: query {query.shape[0]} vs collection {collection.shape[1]}"
        )
    query_norm = float(np.dot(query, query))
    collection_norms = np.einsum("ij,ij->i", collection, collection)
    cross = collection @ query
    distances = query_norm + collection_norms - 2.0 * cross
    return np.maximum(distances, 0.0)


#: Columns accumulated per step of :func:`squared_euclidean_batch_abandon`.
#: Fixed (not tuned per call) on purpose: a candidate row's reported distance
#: is a deterministic function of the query and the row alone, so engines
#: that refine the same candidate under different schedules (worker counts,
#: block compositions) always see bit-identical values.
ABANDON_COLUMN_CHUNK = 128


def squared_euclidean_batch_abandon(query: np.ndarray, collection: np.ndarray,
                                    threshold: float = np.inf,
                                    chunk: int = ABANDON_COLUMN_CHUNK) -> np.ndarray:
    """Blocked early-abandoning variant of :func:`squared_euclidean_batch`.

    The squared differences are accumulated over column chunks; after each
    chunk, rows whose partial sum already exceeds ``threshold`` are masked
    out of the remaining accumulation — the batched analogue of
    :func:`squared_euclidean_early_abandon`, worthwhile for long series where
    most candidates blow past the best-so-far within the first chunks.

    Returns one value per row: the exact chunk-accumulated squared distance
    for every row whose true distance is ``<= threshold``, and a partial sum
    that is already ``> threshold`` for abandoned rows.  Callers must treat
    any value ``> threshold`` as "worse than the best-so-far" — exactly what
    GEMINI pruning needs.  A surviving row's value never depends on
    ``threshold``, on the other rows in the call, or on how callers blocked
    the candidates, which is what lets the parallel search engine return
    bit-identical answers for every worker count.  (Unlike the expanded-form
    :func:`squared_euclidean_batch`, the accumulation is difference-based, so
    values may differ from that kernel by an ulp.)
    """
    query = np.asarray(query, dtype=np.float64)
    collection = np.asarray(collection, dtype=np.float64)
    if collection.ndim != 2 or query.ndim != 1:
        raise ValueError("expected a 1-D query and a 2-D collection")
    if collection.shape[1] != query.shape[0]:
        raise ValueError(
            f"length mismatch: query {query.shape[0]} vs collection {collection.shape[1]}"
        )
    if chunk <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk}")
    totals = np.zeros(collection.shape[0], dtype=np.float64)
    if collection.shape[0] == 0:
        return totals
    # ``active is None`` means every row is still in the running: chunks are
    # plain contiguous slices with no index-gather cost, so until the first
    # abandonment (always, at an infinite threshold) the kernel does no more
    # memory traffic than the plain batch kernel.
    active = None
    for start in range(0, query.shape[0], chunk):
        if active is None:
            difference = collection[:, start:start + chunk] - query[start:start + chunk]
            totals += np.einsum("ij,ij->i", difference, difference)
            surviving = totals <= threshold
            if not surviving.all():
                active = np.flatnonzero(surviving)
                if active.size == 0:
                    break
        else:
            difference = (collection[active, start:start + chunk]
                          - query[start:start + chunk])
            totals[active] += np.einsum("ij,ij->i", difference, difference)
            surviving = totals[active] <= threshold
            if not surviving.all():
                active = active[surviving]
                if active.size == 0:
                    break
    return totals


def pairwise_squared_euclidean(queries: np.ndarray, collection: np.ndarray) -> np.ndarray:
    """Squared ED between every query row and every collection row.

    Returns an array of shape ``(len(queries), len(collection))``.  This is the
    mini-batch kernel used by the FAISS-IndexFlatL2-style baseline.
    """
    queries = np.asarray(queries, dtype=np.float64)
    collection = np.asarray(collection, dtype=np.float64)
    if queries.ndim != 2 or collection.ndim != 2:
        raise ValueError("expected 2-D arrays for queries and collection")
    if queries.shape[1] != collection.shape[1]:
        raise ValueError(
            f"length mismatch: queries {queries.shape[1]} vs collection {collection.shape[1]}"
        )
    query_norms = np.einsum("ij,ij->i", queries, queries)[:, None]
    collection_norms = np.einsum("ij,ij->i", collection, collection)[None, :]
    cross = queries @ collection.T
    distances = query_norms + collection_norms - 2.0 * cross
    return np.maximum(distances, 0.0)
