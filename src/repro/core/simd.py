"""SIMD-style lower-bound distance kernels (Algorithm 3 of the paper).

The original system computes the SFA lower-bound distance with AVX intrinsics:
the query's Fourier coefficients are processed in chunks of 8 lanes, three
branch conditions (value above the candidate bin, below it, or inside it) are
evaluated as bitmaps, masked distances are blended branchlessly, and after each
chunk the partial sum is compared against the best-so-far distance so the
computation can abandon early.

Python cannot issue vector instructions directly, so this module reproduces the
*algorithm* with NumPy arrays standing in for SIMD registers:

* :func:`chunked_masked_lower_bound` mirrors Algorithm 3 lane for lane —
  chunks of ``lane_width`` values, UPPER/LOWER/ZERO masks, blend, per-chunk
  early abandoning.  It is the reference implementation used by the tests and
  the SIMD ablation benchmark.
* :func:`vectorized_lower_bound` computes the same quantity with whole-array
  operations and no early abandoning.
* :func:`batch_lower_bound` evaluates one query against *many* candidate words
  at once, which is the production path used inside index leaves.

All three operate on the generic "mindist" formulation of Equation 2: per
dimension the distance is zero when the query value falls inside the
candidate's quantization interval, otherwise it is the gap to the nearest
breakpoint.  A per-dimension weight vector accounts for the factor 2 of the
DFT lower bound (or ``n / l`` for PAA-based summaries), so the same kernels
serve both SOFA and MESSI.
"""

from __future__ import annotations

import numpy as np

#: Default number of lanes per simulated SIMD register (256-bit / float32).
DEFAULT_LANE_WIDTH = 8


def _validate_inputs(query: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                     weights: np.ndarray | None) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                                           np.ndarray]:
    query = np.asarray(query, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if query.ndim != 1:
        raise ValueError(f"query must be 1-D, got shape {query.shape}")
    if lower.shape != query.shape or upper.shape != query.shape:
        raise ValueError("query, lower and upper breakpoints must share one shape")
    if weights is None:
        weights = np.ones_like(query)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != query.shape:
            raise ValueError("weights must have the same shape as the query")
    return query, lower, upper, weights


def chunked_masked_lower_bound(query: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                               weights: np.ndarray | None = None,
                               best_so_far: float = np.inf,
                               lane_width: int = DEFAULT_LANE_WIDTH) -> float:
    """Squared lower-bound distance via the chunked, mask-based SIMD algorithm.

    Parameters
    ----------
    query:
        The query's numeric summary values (e.g. selected DFT coefficients).
    lower, upper:
        Per-dimension breakpoints of the candidate word's quantization
        intervals; ``-inf`` / ``+inf`` encode unbounded outer bins.
    weights:
        Per-dimension weight applied to the squared mindist (defaults to 1).
    best_so_far:
        Early-abandoning threshold: once the accumulated weighted sum exceeds
        it, the partial sum is returned immediately.
    lane_width:
        Number of values per simulated SIMD register (8 for 256-bit AVX).

    Returns
    -------
    float
        The weighted squared lower-bound distance, or a partial sum that is
        already ``> best_so_far`` when early abandoning triggered.
    """
    query, lower, upper, weights = _validate_inputs(query, lower, upper, weights)
    if lane_width <= 0:
        raise ValueError(f"lane_width must be positive, got {lane_width}")

    total = 0.0
    for start in range(0, query.shape[0], lane_width):
        stop = start + lane_width
        v_q = query[start:stop]
        v_lower = lower[start:stop]
        v_upper = upper[start:stop]
        v_weight = weights[start:stop]

        # Distances for the two non-zero branches (Eq. 2):
        # below the interval -> gap to the lower breakpoint,
        # above the interval -> gap to the upper breakpoint.
        dist_lower = v_lower - v_q
        dist_upper = v_q - v_upper

        # Branch bitmaps, exactly as in Algorithm 3 line 7.
        mask_lower = v_q < v_lower
        mask_upper = v_q >= v_upper
        # The ZERO mask (inside the interval) contributes nothing and is left
        # implicit: lanes not selected by either mask blend to zero.

        # Branchless blend (Algorithm 3 line 8): AND each branch result with
        # its mask, OR the lanes together.
        blended = np.where(mask_lower, dist_lower, 0.0) + np.where(mask_upper, dist_upper, 0.0)
        total += float(np.sum(v_weight * blended * blended))

        if total > best_so_far:
            return total
    return total


def vectorized_lower_bound(query: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                           weights: np.ndarray | None = None) -> float:
    """Squared lower-bound distance computed with whole-array operations."""
    query, lower, upper, weights = _validate_inputs(query, lower, upper, weights)
    below = np.maximum(lower - query, 0.0)
    above = np.maximum(query - upper, 0.0)
    gaps = below + above
    return float(np.sum(weights * gaps * gaps))


def scalar_lower_bound(query: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                       weights: np.ndarray | None = None,
                       best_so_far: float = np.inf) -> float:
    """Pure-Python scalar reference of Equation 2 (used for tests and ablation)."""
    query, lower, upper, weights = _validate_inputs(query, lower, upper, weights)
    total = 0.0
    for value, low, high, weight in zip(query, lower, upper, weights):
        if value < low:
            gap = low - value
        elif value >= high:
            gap = value - high
        else:
            gap = 0.0
        total += weight * gap * gap
        if total > best_so_far:
            return total
    return total


def batch_lower_bound(query: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                      weights: np.ndarray | None = None) -> np.ndarray:
    """Squared lower-bound distances of one query against many candidate words.

    Parameters
    ----------
    query:
        1-D array of the query's summary values, length ``l``.
    lower, upper:
        2-D arrays of shape ``(num_candidates, l)`` holding each candidate
        word's per-dimension interval breakpoints.
    weights:
        Optional per-dimension weights (length ``l``).

    Returns
    -------
    numpy.ndarray
        1-D array of squared lower-bound distances, one per candidate.
    """
    query = np.asarray(query, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if lower.ndim != 2 or upper.shape != lower.shape:
        raise ValueError("lower and upper must be 2-D arrays of identical shape")
    if lower.shape[1] != query.shape[0]:
        raise ValueError(
            f"dimension mismatch: query has {query.shape[0]} values, "
            f"candidates have {lower.shape[1]}"
        )
    if weights is None:
        weights = np.ones_like(query)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != query.shape:
            raise ValueError("weights must have the same shape as the query")
    below = np.maximum(lower - query[None, :], 0.0)
    above = np.maximum(query[None, :] - upper, 0.0)
    gaps = below + above
    return np.einsum("ij,j->i", gaps * gaps, weights)
