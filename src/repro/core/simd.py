"""SIMD-style lower-bound distance kernels (Algorithm 3 of the paper).

The original system computes the SFA lower-bound distance with AVX intrinsics:
the query's Fourier coefficients are processed in chunks of 8 lanes, three
branch conditions (value above the candidate bin, below it, or inside it) are
evaluated as bitmaps, masked distances are blended branchlessly, and after each
chunk the partial sum is compared against the best-so-far distance so the
computation can abandon early.

Python cannot issue vector instructions directly, so this module reproduces the
*algorithm* with NumPy arrays standing in for SIMD registers:

* :func:`chunked_masked_lower_bound` mirrors Algorithm 3 lane for lane —
  chunks of ``lane_width`` values, UPPER/LOWER/ZERO masks, blend, per-chunk
  early abandoning.  It is the reference implementation used by the tests and
  the SIMD ablation benchmark.
* :func:`vectorized_lower_bound` computes the same quantity with whole-array
  operations and no early abandoning.
* :func:`batch_lower_bound` evaluates one query against *many* candidate words
  at once, which is the production path used inside index leaves.
* :func:`batch_lower_bound_multi` evaluates *many* queries against *many*
  candidate words in one broadcasted call — the multi-query analogue of the
  paper's AVX lane packing, used by the batched search engine to amortize
  kernel launches across a whole query workload.
* :func:`batch_lower_bound_pairs` evaluates a ragged set of row-aligned
  (query, candidate) pairs in one call, which is how the batched engine
  checks exactly the pairs the per-query engine would have checked without
  cross-product work amplification.

All of these operate on the generic "mindist" formulation of Equation 2: per
dimension the distance is zero when the query value falls inside the
candidate's quantization interval, otherwise it is the gap to the nearest
breakpoint.  A per-dimension weight vector accounts for the factor 2 of the
DFT lower bound (or ``n / l`` for PAA-based summaries), so the same kernels
serve both SOFA and MESSI.
"""

from __future__ import annotations

import numpy as np

#: Default number of lanes per simulated SIMD register (256-bit / float32).
DEFAULT_LANE_WIDTH = 8


def _validate_inputs(query: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                     weights: np.ndarray | None) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                                           np.ndarray]:
    query = np.asarray(query, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if query.ndim != 1:
        raise ValueError(f"query must be 1-D, got shape {query.shape}")
    if lower.shape != query.shape or upper.shape != query.shape:
        raise ValueError("query, lower and upper breakpoints must share one shape")
    if weights is None:
        weights = np.ones_like(query)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != query.shape:
            raise ValueError("weights must have the same shape as the query")
    return query, lower, upper, weights


def chunked_masked_lower_bound(query: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                               weights: np.ndarray | None = None,
                               best_so_far: float = np.inf,
                               lane_width: int = DEFAULT_LANE_WIDTH) -> float:
    """Squared lower-bound distance via the chunked, mask-based SIMD algorithm.

    Parameters
    ----------
    query:
        The query's numeric summary values (e.g. selected DFT coefficients).
    lower, upper:
        Per-dimension breakpoints of the candidate word's quantization
        intervals; ``-inf`` / ``+inf`` encode unbounded outer bins.
    weights:
        Per-dimension weight applied to the squared mindist (defaults to 1).
    best_so_far:
        Early-abandoning threshold: once the accumulated weighted sum exceeds
        it, the partial sum is returned immediately.
    lane_width:
        Number of values per simulated SIMD register (8 for 256-bit AVX).

    Returns
    -------
    float
        The weighted squared lower-bound distance, or a partial sum that is
        already ``> best_so_far`` when early abandoning triggered.
    """
    query, lower, upper, weights = _validate_inputs(query, lower, upper, weights)
    if lane_width <= 0:
        raise ValueError(f"lane_width must be positive, got {lane_width}")

    total = 0.0
    for start in range(0, query.shape[0], lane_width):
        stop = start + lane_width
        v_q = query[start:stop]
        v_lower = lower[start:stop]
        v_upper = upper[start:stop]
        v_weight = weights[start:stop]

        # Distances for the two non-zero branches (Eq. 2):
        # below the interval -> gap to the lower breakpoint,
        # above the interval -> gap to the upper breakpoint.
        dist_lower = v_lower - v_q
        dist_upper = v_q - v_upper

        # Branch bitmaps, exactly as in Algorithm 3 line 7.
        mask_lower = v_q < v_lower
        mask_upper = v_q >= v_upper
        # The ZERO mask (inside the interval) contributes nothing and is left
        # implicit: lanes not selected by either mask blend to zero.

        # Branchless blend (Algorithm 3 line 8): AND each branch result with
        # its mask, OR the lanes together.
        blended = np.where(mask_lower, dist_lower, 0.0) + np.where(mask_upper, dist_upper, 0.0)
        total += float(np.sum(v_weight * blended * blended))

        if total > best_so_far:
            return total
    return total


def vectorized_lower_bound(query: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                           weights: np.ndarray | None = None) -> float:
    """Squared lower-bound distance computed with whole-array operations."""
    query, lower, upper, weights = _validate_inputs(query, lower, upper, weights)
    below = np.maximum(lower - query, 0.0)
    above = np.maximum(query - upper, 0.0)
    gaps = below + above
    return float(np.sum(weights * gaps * gaps))


def scalar_lower_bound(query: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                       weights: np.ndarray | None = None,
                       best_so_far: float = np.inf) -> float:
    """Pure-Python scalar reference of Equation 2 (used for tests and ablation)."""
    query, lower, upper, weights = _validate_inputs(query, lower, upper, weights)
    total = 0.0
    for value, low, high, weight in zip(query, lower, upper, weights):
        if value < low:
            gap = low - value
        elif value >= high:
            gap = value - high
        else:
            gap = 0.0
        total += weight * gap * gap
        if total > best_so_far:
            return total
    return total


def batch_lower_bound(query: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                      weights: np.ndarray | None = None) -> np.ndarray:
    """Squared lower-bound distances of one query against many candidate words.

    Parameters
    ----------
    query:
        1-D array of the query's summary values, length ``l``.
    lower, upper:
        2-D arrays of shape ``(num_candidates, l)`` holding each candidate
        word's per-dimension interval breakpoints.
    weights:
        Optional per-dimension weights (length ``l``).

    Returns
    -------
    numpy.ndarray
        1-D array of squared lower-bound distances, one per candidate.
    """
    query = np.asarray(query, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if lower.ndim != 2 or upper.shape != lower.shape:
        raise ValueError("lower and upper must be 2-D arrays of identical shape")
    if lower.shape[1] != query.shape[0]:
        raise ValueError(
            f"dimension mismatch: query has {query.shape[0]} values, "
            f"candidates have {lower.shape[1]}"
        )
    if weights is None:
        weights = np.ones_like(query)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != query.shape:
            raise ValueError("weights must have the same shape as the query")
    below = np.maximum(lower - query[None, :], 0.0)
    above = np.maximum(query[None, :] - upper, 0.0)
    gaps = below + above
    return np.einsum("ij,j->i", gaps * gaps, weights)


#: Soft cap on the number of float64 elements the broadcasted ``(Q, C, l)``
#: temporaries of :func:`batch_lower_bound_multi` may hold at once (~0.5 MB,
#: so a chunk's working set stays inside the L2 cache; the kernel is
#: memory-bound and falls off a cliff once temporaries spill to DRAM).
_MULTI_CHUNK_ELEMENTS = 65_536


def batch_lower_bound_multi(queries: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                            weights: np.ndarray | None = None,
                            query_chunk: int | None = None) -> np.ndarray:
    """Squared lower-bound distances of many queries against many candidates.

    This is the multi-query generalisation of :func:`batch_lower_bound`: all
    ``Q x C`` mindist values are produced by broadcasting, so a whole query
    workload costs one kernel invocation instead of one per query.

    Parameters
    ----------
    queries:
        2-D array of shape ``(num_queries, l)`` of numeric query summaries.
    lower, upper:
        2-D arrays of shape ``(num_candidates, l)`` holding each candidate
        word's per-dimension interval breakpoints.
    weights:
        Optional per-dimension weights (length ``l``).
    query_chunk:
        Evaluate at most this many queries per broadcasted step so the
        ``(chunk, num_candidates, l)`` temporaries stay inside the L2 cache
        (the kernel is memory-bound).  Defaults to a size targeting ~0.5 MB
        of temporaries per chunk.

    Returns
    -------
    numpy.ndarray
        2-D array of shape ``(num_queries, num_candidates)``; row ``q`` equals
        ``batch_lower_bound(queries[q], lower, upper, weights)``.
    """
    queries = np.asarray(queries, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if queries.ndim != 2:
        raise ValueError(f"queries must be 2-D, got shape {queries.shape}")
    if lower.ndim != 2 or upper.shape != lower.shape:
        raise ValueError("lower and upper must be 2-D arrays of identical shape")
    if lower.shape[1] != queries.shape[1]:
        raise ValueError(
            f"dimension mismatch: queries have {queries.shape[1]} values, "
            f"candidates have {lower.shape[1]}"
        )
    if weights is None:
        weights = np.ones(queries.shape[1], dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (queries.shape[1],):
            raise ValueError("weights must be 1-D with one value per summary dimension")
    if query_chunk is None:
        per_query = max(1, lower.shape[0] * max(1, lower.shape[1]))
        query_chunk = max(1, _MULTI_CHUNK_ELEMENTS // per_query)
    elif query_chunk < 1:
        raise ValueError(f"query_chunk must be positive, got {query_chunk}")

    num_candidates = lower.shape[0]
    word_length = lower.shape[1]
    result = np.empty((queries.shape[0], num_candidates), dtype=np.float64)
    for start in range(0, queries.shape[0], query_chunk):
        block = queries[start:start + query_chunk]
        # The (chunk, C, l) temporaries are mutated in place — the kernel is
        # memory-bound, so avoiding intermediate allocations is what keeps it
        # competitive with per-query calls while amortizing launch overhead.
        gaps = lower[None, :, :] - block[:, None, :]
        np.maximum(gaps, 0.0, out=gaps)
        above = block[:, None, :] - upper[None, :, :]
        np.maximum(above, 0.0, out=above)
        gaps += above
        gaps *= gaps
        result[start:start + query_chunk] = (
            gaps.reshape(-1, word_length) @ weights
        ).reshape(block.shape[0], num_candidates)
    return result


def batch_lower_bound_pairs(query_rows: np.ndarray, lower: np.ndarray, upper: np.ndarray,
                            weights: np.ndarray | None = None) -> np.ndarray:
    """Squared lower bounds of row-aligned (query, candidate) pairs.

    Unlike :func:`batch_lower_bound_multi`, which evaluates the full cross
    product, this kernel evaluates exactly one pair per row: pair ``i``
    compares query summary ``query_rows[i]`` against the candidate interval
    ``(lower[i], upper[i])``.  The batched search engine uses it to evaluate a
    ragged set of surviving (query, leaf-series) pairs — the pairs the
    per-query engine would have checked — in one call, with no cross-product
    work amplification.

    Parameters
    ----------
    query_rows:
        2-D array of shape ``(num_pairs, l)``; one query summary per pair
        (typically a gather of a summary matrix, with repeats).
    lower, upper:
        2-D arrays of shape ``(num_pairs, l)``; one candidate interval per pair.
    weights:
        Optional per-dimension weights (length ``l``).

    Returns
    -------
    numpy.ndarray
        1-D array of ``num_pairs`` squared lower-bound distances.
    """
    query_rows = np.asarray(query_rows, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if query_rows.ndim != 2:
        raise ValueError(f"query_rows must be 2-D, got shape {query_rows.shape}")
    if lower.shape != query_rows.shape or upper.shape != query_rows.shape:
        raise ValueError("query_rows, lower and upper must share one shape")
    if weights is None:
        weights = np.ones(query_rows.shape[1], dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (query_rows.shape[1],):
            raise ValueError("weights must be 1-D with one value per summary dimension")
    gaps = lower - query_rows
    np.maximum(gaps, 0.0, out=gaps)
    above = query_rows - upper
    np.maximum(above, 0.0, out=above)
    gaps += above
    gaps *= gaps
    return gaps @ weights
