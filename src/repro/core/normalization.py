"""z-normalization utilities for data series.

The paper (like all prior work on exact data-series similarity search) uses
the z-normalized Euclidean distance.  In practice every series is normalised
once to zero mean and unit standard deviation, after which the plain Euclidean
distance between normalised series equals the z-normalized distance between
the originals.

Constant (zero-variance) series are mapped to the all-zero series, the common
convention in the UCR suite and the MESSI code base: a flat series carries no
shape information, and mapping it to zero keeps distances finite.
"""

from __future__ import annotations

import numpy as np

#: Relative threshold below which a standard deviation is treated as zero.
#: The comparison is relative to the magnitude of the values so that constant
#: series with large absolute values (whose computed std is rounding noise)
#: are still recognised as constant.
_EPSILON = 1e-8


def znormalize(series: np.ndarray, epsilon: float = _EPSILON) -> np.ndarray:
    """Return a z-normalized copy of a single 1-D series.

    Parameters
    ----------
    series:
        One-dimensional array of real values.
    epsilon:
        Relative threshold: standard deviations smaller than
        ``epsilon * max(1, |mean|)`` are treated as zero, in which case the
        normalised series is all zeros.
    """
    values = np.asarray(series, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {values.shape}")
    mean = values.mean()
    std = values.std()
    if std <= epsilon * max(1.0, abs(mean)):
        return np.zeros_like(values)
    return (values - mean) / std


def znormalize_batch(series: np.ndarray, epsilon: float = _EPSILON) -> np.ndarray:
    """Return a z-normalized copy of a batch of series (one per row)."""
    values = np.asarray(series, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D array of series, got shape {values.shape}")
    means = values.mean(axis=1, keepdims=True)
    stds = values.std(axis=1, keepdims=True)
    flat = stds <= epsilon * np.maximum(1.0, np.abs(means))
    safe_stds = np.where(flat, 1.0, stds)
    normalized = (values - means) / safe_stds
    if flat.any():
        normalized[flat[:, 0]] = 0.0
    return normalized


def is_znormalized(series: np.ndarray, atol: float = 1e-6) -> bool:
    """Check whether every row of ``series`` has ~zero mean and ~unit std.

    All-zero rows (the normalised form of constant series) also count as
    normalised.
    """
    values = np.atleast_2d(np.asarray(series, dtype=np.float64))
    means = values.mean(axis=1)
    stds = values.std(axis=1)
    zero_rows = np.abs(values).max(axis=1) <= atol
    ok = (np.abs(means) <= atol) & (np.abs(stds - 1.0) <= atol)
    return bool(np.all(ok | zero_rows))
