"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError`, so user
code can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` and friends) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class NotFittedError(ReproError):
    """Raised when a learned component is used before ``fit`` was called."""


class InvalidParameterError(ReproError):
    """Raised when a constructor or method receives an invalid parameter."""


class DatasetError(ReproError):
    """Raised for malformed or incompatible dataset inputs."""


class IndexError_(ReproError):
    """Raised for index construction or query failures.

    The trailing underscore avoids shadowing the built-in ``IndexError`` while
    keeping the name recognisable in tracebacks.
    """


class SearchError(ReproError):
    """Raised when a similarity-search query cannot be answered."""


class ValidationError(IndexError_, SearchError):
    """Raised when input values at the API boundary are unusable.

    Covers NaN/infinite values, non-numeric dtypes and wrong series lengths
    handed to ``knn`` / ``knn_batch`` / ``insert``.  It derives from *both*
    :class:`IndexError_` and :class:`SearchError` so callers that catch either
    family (queries historically raised ``SearchError``, writes
    ``IndexError_``) keep working.
    """


class UnknownIndexError(IndexError_):
    """Raised when a request names an index the serving layer does not hold.

    Kept in the core taxonomy (rather than inside :mod:`repro.serve`) so the
    error → HTTP-status map stays total over one hierarchy; the HTTP layer
    renders it as 404.
    """


class ReadOnlyIndexError(IndexError_):
    """Raised when a write (insert/delete/compact) targets a read-only index.

    Static snapshot-backed indexes are served build-once/read-many; mutating
    them requires loading a dynamic snapshot (or wrapping the index in a
    :class:`~repro.index.dynamic.DynamicIndex`).  The HTTP layer renders this
    as 409.
    """


class ShutdownError(ReproError):
    """Raised when a request reaches a component that is shutting down.

    The serving layer's micro-batch queue rejects submissions after
    ``close()`` with this type so late requests get a typed 503-style answer
    instead of hanging or crashing a worker.
    """


class ShardError(IndexError_):
    """Raised when one shard of a sharded index cannot answer.

    Wraps the shard's underlying failure (load race, timeout, worker death)
    after retries are exhausted; the message names the shard and the attempt
    count so operators can tell *which* partition is misbehaving.  Inside a
    scatter-gather query this is a per-shard verdict — the query itself still
    returns a partial answer under the ``degraded="allow"`` policy.
    """


class PartialResultError(SearchError):
    """Raised when a sharded query cannot be answered at full coverage.

    Carries the coverage accounting so callers (and the HTTP layer) can
    report exactly how much of the collection was reachable.  Raised when
    the ``degraded="forbid"`` policy rejects a partial answer, and always
    when *no* shard answered (there is nothing to return).
    """

    def __init__(self, message: str, *, shards_total: int = 0,
                 shards_answered: int = 0,
                 failures: "dict[int, str] | None" = None) -> None:
        super().__init__(message)
        self.shards_total = int(shards_total)
        self.shards_answered = int(shards_answered)
        self.failures = dict(failures or {})

    @property
    def coverage(self) -> float:
        if self.shards_total == 0:
            return 0.0
        return self.shards_answered / self.shards_total


class OverloadedError(ReproError):
    """Raised when a component sheds load instead of queueing more work.

    The serving layer's micro-batch queue rejects submissions beyond its
    configured backlog bound with this type; the HTTP layer renders it as
    503 with a ``Retry-After`` header so well-behaved clients back off
    instead of piling latency onto everyone.
    """


class DrainerError(ReproError):
    """Raised to submitters whose micro-batch drainer thread died.

    A drainer-level failure (anything escaping the per-batch handler) fails
    every pending item with this type — never a silent hang until timeout —
    and the queue restarts the drainer so later submissions keep working.
    """


class CorruptionError(IndexError_):
    """Raised when stored index data fails a checksum or is torn/truncated.

    The message always names the offending file (and offset, for WAL
    records), so operators can tell *which* artifact to restore.  Detection —
    never a silently wrong answer — is the contract the crash-safe storage
    layer makes about bit rot.
    """


class WalError(IndexError_):
    """Raised for write-ahead-log misuse or unreadable log state."""


class StorageFullError(ReproError):
    """Raised when a durable effect fails because the volume is out of space.

    Translated at the :mod:`repro.core.fsio` seam from ``ENOSPC`` / ``EDQUOT``
    so the WAL and the snapshot commit protocols surface one typed error
    instead of a raw :class:`OSError`.  The contract on this error is
    *old-or-new*: the on-disk state is either the pre-write state or the
    committed new one (a WAL append that hits it truncates its own torn tail
    before re-raising), so the caller can retry after freeing space without a
    repair step.  The HTTP layer renders it as 507 (Insufficient Storage).
    """
