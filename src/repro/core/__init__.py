"""Core substrate: series containers, distances, SIMD-style kernels, metrics."""

from repro.core.distance import (
    euclidean,
    pairwise_squared_euclidean,
    squared_euclidean,
    squared_euclidean_batch,
    squared_euclidean_early_abandon,
    znormalized_euclidean,
)
from repro.core.errors import (
    CorruptionError,
    DatasetError,
    DrainerError,
    InvalidParameterError,
    IndexError_,
    NotFittedError,
    OverloadedError,
    PartialResultError,
    ReadOnlyIndexError,
    ReproError,
    SearchError,
    ShardError,
    ShutdownError,
    UnknownIndexError,
    ValidationError,
    WalError,
)
from repro.core.lower_bounds import (
    check_lower_bound_property,
    pruning_power,
    tightness_of_lower_bound,
)
from repro.core.normalization import is_znormalized, znormalize, znormalize_batch
from repro.core.series import Dataset, GrowableArray
from repro.core.simd import (
    batch_lower_bound,
    chunked_masked_lower_bound,
    scalar_lower_bound,
    vectorized_lower_bound,
)

__all__ = [
    "CorruptionError",
    "Dataset",
    "DatasetError",
    "DrainerError",
    "GrowableArray",
    "IndexError_",
    "InvalidParameterError",
    "NotFittedError",
    "OverloadedError",
    "PartialResultError",
    "ReadOnlyIndexError",
    "ReproError",
    "SearchError",
    "ShardError",
    "ShutdownError",
    "UnknownIndexError",
    "ValidationError",
    "WalError",
    "batch_lower_bound",
    "check_lower_bound_property",
    "chunked_masked_lower_bound",
    "euclidean",
    "is_znormalized",
    "pairwise_squared_euclidean",
    "pruning_power",
    "scalar_lower_bound",
    "squared_euclidean",
    "squared_euclidean_batch",
    "squared_euclidean_early_abandon",
    "tightness_of_lower_bound",
    "vectorized_lower_bound",
    "znormalize",
    "znormalize_batch",
    "znormalized_euclidean",
]
