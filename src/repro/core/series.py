"""Dataset container for collections of equal-length data series.

A :class:`Dataset` wraps a 2-D ``float64`` array (one series per row) together
with a name and an optional pre-normalised view.  Indexes and baselines in
this library operate on ``Dataset`` objects so that normalisation happens
exactly once and the raw values stay available for exact-distance refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import DatasetError
from repro.core.normalization import znormalize_batch


class GrowableArray:
    """An append-only array with amortized-doubling capacity growth.

    Appending rows to a plain ``numpy`` array costs a full copy per append
    (``np.vstack`` reallocates everything), which turns an ingest stream of
    ``n`` single-series inserts into O(n²) copying.  ``GrowableArray`` keeps a
    backing buffer that at least doubles whenever it runs out of room, so a
    stream of appends costs amortized O(1) copies per row, and :attr:`view`
    exposes the rows appended so far as a zero-copy slice.

    Growth never mutates published rows: when the buffer is reallocated the
    old backing array is left intact, so :attr:`view` slices handed out
    earlier (e.g. to concurrent readers of the dynamic index) keep their
    values.

    Parameters
    ----------
    row_shape:
        Shape of a single row: ``()`` for a 1-D array of scalars, ``(l,)``
        for a matrix whose rows have ``l`` columns.
    dtype:
        Element dtype of the buffer (``float64`` by default).
    capacity:
        Initial number of pre-allocated rows.
    """

    def __init__(self, row_shape: tuple[int, ...] = (),
                 dtype: "np.dtype | type" = np.float64, capacity: int = 0) -> None:
        if capacity < 0:
            raise DatasetError(f"capacity must be non-negative, got {capacity}")
        self._row_shape = tuple(int(dimension) for dimension in row_shape)
        self._data = np.empty((capacity, *self._row_shape), dtype=dtype)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        """Number of rows the current backing buffer can hold."""
        return self._data.shape[0]

    @property
    def view(self) -> np.ndarray:
        """Zero-copy view of the rows appended so far."""
        return self._data[: self._count]

    def append(self, rows: np.ndarray) -> int:
        """Append a block of rows; returns the index of the first new row.

        ``rows`` must have shape ``(count, *row_shape)`` (or ``row_shape``
        itself for a single row).
        """
        rows = np.asarray(rows, dtype=self._data.dtype)
        if rows.shape == self._row_shape:
            rows = rows[None]
        if rows.shape[1:] != self._row_shape:
            raise DatasetError(
                f"appended rows must have row shape {self._row_shape}, "
                f"got {rows.shape[1:]}"
            )
        start = self._count
        needed = start + rows.shape[0]
        if needed > self._data.shape[0]:
            grown = max(needed, 2 * self._data.shape[0], 8)
            data = np.empty((grown, *self._row_shape), dtype=self._data.dtype)
            data[:start] = self._data[:start]
            self._data = data
        self._data[start:needed] = rows
        self._count = needed
        return start


@dataclass
class Dataset:
    """A named collection of equal-length data series.

    Parameters
    ----------
    values:
        2-D array with one series per row.  Converted to ``float64``.
    name:
        Human-readable dataset name (defaults to ``"dataset"``).
    normalize:
        When true (the default) the values are z-normalized row-wise on
        construction, matching the paper's use of the z-normalized Euclidean
        distance.
    validate:
        When true (the default) the values are scanned for NaN/infinite
        entries.  Snapshot loading passes false so that a memory-mapped value
        matrix is adopted without touching (paging in) every element; the
        arrays were validated when the snapshot's source dataset was built.
    """

    values: np.ndarray
    name: str = "dataset"
    normalize: bool = True
    metadata: dict = field(default_factory=dict)
    validate: bool = True

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim == 1:
            values = values.reshape(1, -1)
        if values.ndim != 2:
            raise DatasetError(
                f"dataset '{self.name}' must be a 2-D array, got shape {values.shape}"
            )
        if values.shape[0] == 0 or values.shape[1] == 0:
            raise DatasetError(f"dataset '{self.name}' must not be empty")
        if self.validate and not np.isfinite(values).all():
            raise DatasetError(f"dataset '{self.name}' contains NaN or infinite values")
        if self.normalize:
            values = znormalize_batch(values)
        self.values = values

    @property
    def num_series(self) -> int:
        """Number of series in the dataset."""
        return self.values.shape[0]

    @property
    def series_length(self) -> int:
        """Length of every series in the dataset."""
        return self.values.shape[1]

    def __len__(self) -> int:
        return self.num_series

    def __getitem__(self, index: int) -> np.ndarray:
        return self.values[index]

    def sample(self, fraction: float, rng: np.random.Generator | None = None) -> np.ndarray:
        """Return a random row subsample of the dataset values.

        This is the sampling step of MCB (Algorithm 1).  At least one series is
        always returned.
        """
        if not 0.0 < fraction <= 1.0:
            raise DatasetError(f"sampling fraction must be in (0, 1], got {fraction}")
        rng = rng or np.random.default_rng(0)
        count = max(1, int(round(fraction * self.num_series)))
        indices = rng.choice(self.num_series, size=min(count, self.num_series), replace=False)
        return self.values[np.sort(indices)]

    def split(self, num_queries: int, rng: np.random.Generator | None = None
              ) -> tuple["Dataset", "Dataset"]:
        """Split into an indexing set and a held-out query set.

        Mirrors the paper's protocol of keeping 100 query series per dataset
        separate from the indexed data.
        """
        if not 0 < num_queries < self.num_series:
            raise DatasetError(
                f"num_queries must be in (0, {self.num_series}), got {num_queries}"
            )
        rng = rng or np.random.default_rng(0)
        permutation = rng.permutation(self.num_series)
        query_rows = permutation[:num_queries]
        index_rows = permutation[num_queries:]
        index_set = Dataset(self.values[np.sort(index_rows)], name=self.name,
                            normalize=False, metadata=dict(self.metadata))
        query_set = Dataset(self.values[np.sort(query_rows)], name=f"{self.name}-queries",
                            normalize=False, metadata=dict(self.metadata))
        return index_set, query_set

    def describe(self) -> dict:
        """Return summary statistics used by the Figure 1 style analysis."""
        flat = self.values.ravel()
        return {
            "name": self.name,
            "num_series": self.num_series,
            "series_length": self.series_length,
            "mean": float(flat.mean()),
            "std": float(flat.std()),
            "min": float(flat.min()),
            "max": float(flat.max()),
        }
