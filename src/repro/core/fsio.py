"""Injectable filesystem primitives for crash-safe persistence.

Every durable effect the persistence layer and the write-ahead log perform —
writing a file, fsyncing it, fsyncing a directory entry, renaming, unlinking —
goes through the small functions in this module instead of calling ``os`` /
``open`` directly.  Routing them through one seam buys two things:

* **Fault injection.**  The reliability test harness installs a hook
  (:func:`set_hook`) that observes every effect *in order* and can raise at
  any chosen point, simulating a process crash between any two durable
  operations.  Sweeping the crash point over every enumerated effect proves
  the commit protocols (temp-sibling rename, generation-file manifest commit,
  WAL appends) leave either the old or the new complete state on disk — never
  a torn mix.
* **One place to state the durability contract.**  ``fsync`` of a file makes
  its *contents* durable; ``fsync`` of the containing directory makes the
  *name* (creation or rename) durable; ``os.replace`` is atomic on POSIX
  within a filesystem.  The commit protocols in
  :mod:`repro.index.persistence` and :mod:`repro.index.wal` are built from
  exactly these three facts.

The hook is process-global and intended for tests; production code never sets
one.  Hooks observe ``(operation, path)`` pairs *before* the effect runs, so
raising from the hook means the effect (and everything after it) did not
happen — the state a crash immediately before that effect would leave.
"""

from __future__ import annotations

import errno
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Callable

from repro.core.errors import StorageFullError

#: The installed fault-injection hook, or ``None`` (the production state).
_hook: "Callable[[str, str], None] | None" = None

#: ``errno`` values that mean "the volume has no room", translated to the
#: typed :class:`~repro.core.errors.StorageFullError` at this seam.
_FULL_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT})


def set_hook(hook: "Callable[[str, str], None] | None"):
    """Install a fault-injection hook; returns the previously installed one.

    The hook is called as ``hook(operation, path)`` immediately *before* each
    durable effect.  Pass ``None`` to uninstall.  Tests must restore the
    previous hook (use a ``try/finally`` or the harness fixture) — the hook is
    process-global.
    """
    global _hook
    previous = _hook
    _hook = hook
    return previous


def _enter(operation: str, path: "str | os.PathLike") -> None:
    if _hook is not None:
        _hook(operation, str(path))


@contextmanager
def _effect(operation: str, path: "str | os.PathLike"):
    """Announce an effect to the hook, then translate disk-full failures.

    The hook call sits *inside* the translation so a test hook raising
    ``OSError(ENOSPC)`` exercises exactly the path a real full volume takes.
    Every other ``OSError`` (and the harness's ``SimulatedCrash``) passes
    through unchanged.
    """
    try:
        _enter(operation, path)
        yield
    except OSError as error:
        if error.errno in _FULL_ERRNOS:
            raise StorageFullError(
                f"no space left on device while trying to {operation} "
                f"{path}: {error}") from error
        raise


# ------------------------------------------------------------------ effects


def write_bytes(path: "str | os.PathLike", data: bytes) -> None:
    """Create (or truncate) ``path`` and write ``data`` in one call."""
    with _effect("write", path):
        with open(path, "wb") as handle:
            handle.write(data)


def fsync_path(path: "str | os.PathLike") -> None:
    """Flush a file's contents to stable storage (open-by-name fsync)."""
    with _effect("fsync", path):
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def fsync_dir(path: "str | os.PathLike") -> None:
    """Make the directory's entries (creations, renames) durable."""
    with _effect("fsync_dir", path):
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def rename(source: "str | os.PathLike", destination: "str | os.PathLike") -> None:
    """Atomically move ``source`` over ``destination`` (``os.replace``)."""
    with _effect("rename", destination):
        os.replace(source, destination)


def unlink(path: "str | os.PathLike") -> None:
    """Remove a file (missing files are ignored: cleanup is idempotent)."""
    with _effect("unlink", path):
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass


def mkdir(path: "str | os.PathLike") -> None:
    """Create a directory (existing directories are fine)."""
    with _effect("mkdir", path):
        Path(path).mkdir(parents=True, exist_ok=True)


def rmtree(path: "str | os.PathLike") -> None:
    """Recursively remove a directory tree (missing trees are ignored)."""
    with _effect("rmtree", path):
        import shutil

        shutil.rmtree(path, ignore_errors=True)


# ------------------------------------------------- append streams (the WAL)


def append_bytes(handle, data: bytes) -> None:
    """Append ``data`` to an open binary file handle and flush user buffers.

    ``flush()`` moves the bytes into the OS page cache (they survive a
    *process* crash immediately); only :func:`fsync_handle` makes them survive
    a power failure — which is what the WAL's fsync policies trade off.
    """
    with _effect("append", getattr(handle, "name", "<handle>")):
        handle.write(data)
        handle.flush()


def fsync_handle(handle) -> None:
    """Flush an open handle's contents to stable storage."""
    with _effect("fsync", getattr(handle, "name", "<handle>")):
        handle.flush()
        os.fsync(handle.fileno())


def truncate_handle(handle, size: int) -> None:
    """Truncate an open handle to ``size`` bytes (drops a torn tail record)."""
    with _effect("truncate", getattr(handle, "name", "<handle>")):
        handle.truncate(size)
        handle.flush()
