"""Lower-bound quality metrics: tightness of lower bound and pruning power.

The ablation study of the paper (Section V-E) ranks summarization techniques by
the *tightness of lower bound* (TLB), defined as the lower-bounding distance
divided by the true distance; it lies in ``[0, 1]`` and higher is better.  The
paper also reports *pruning power*: the fraction of candidate series whose
lower bound already exceeds the true nearest-neighbour distance and which can
therefore be skipped without computing their exact distance.
"""

from __future__ import annotations

import numpy as np


def tightness_of_lower_bound(lower_bounds: np.ndarray, true_distances: np.ndarray) -> float:
    """Mean TLB over a set of (lower bound, true distance) pairs.

    Pairs with a zero true distance (identical series) are skipped because the
    ratio is undefined there; if every pair is degenerate the TLB is reported
    as 1.0 (the lower bound is trivially tight).
    """
    lower_bounds = np.asarray(lower_bounds, dtype=np.float64)
    true_distances = np.asarray(true_distances, dtype=np.float64)
    if lower_bounds.shape != true_distances.shape:
        raise ValueError("lower_bounds and true_distances must have the same shape")
    valid = true_distances > 0.0
    if not valid.any():
        return 1.0
    ratios = lower_bounds[valid] / true_distances[valid]
    # Floating-point noise can push a valid lower bound epsilon above the true
    # distance; clip so the metric stays in [0, 1].
    return float(np.clip(ratios, 0.0, 1.0).mean())


def pruning_power(lower_bounds: np.ndarray, true_distances: np.ndarray,
                  threshold: float | None = None) -> float:
    """Fraction of candidates pruned by their lower bound.

    A candidate is pruned when its lower bound exceeds ``threshold``.  When no
    threshold is given, the true nearest-neighbour distance (the minimum of
    ``true_distances``) is used, which models a perfectly warmed-up best-so-far.
    """
    lower_bounds = np.asarray(lower_bounds, dtype=np.float64)
    true_distances = np.asarray(true_distances, dtype=np.float64)
    if lower_bounds.shape != true_distances.shape:
        raise ValueError("lower_bounds and true_distances must have the same shape")
    if lower_bounds.size == 0:
        return 0.0
    if threshold is None:
        threshold = float(true_distances.min())
    return float(np.mean(lower_bounds > threshold))


def check_lower_bound_property(lower_bounds: np.ndarray, true_distances: np.ndarray,
                               rtol: float = 1e-7, atol: float = 1e-9) -> bool:
    """Return True when every lower bound is ≤ its true distance (within tolerance)."""
    lower_bounds = np.asarray(lower_bounds, dtype=np.float64)
    true_distances = np.asarray(true_distances, dtype=np.float64)
    return bool(np.all(lower_bounds <= true_distances * (1.0 + rtol) + atol))
