"""HTTP-free serving logic: named indexes, request limits, stats, hot reload.

:class:`SearchApp` is the application layer of the server — everything the
HTTP routes do except sockets and JSON framing, so the full serving contract
(typed errors, batching, limits, generation swaps) is testable without a
network.  It holds a registry of named :class:`ServedIndex` entries:

* **read-only** entries wrap a static index (usually loaded from a snapshot
  with ``mmap=True``, so the payload stays on disk); writes to them raise a
  typed :class:`~repro.core.errors.ReadOnlyIndexError` (HTTP 409),
* **writable** entries wrap a :class:`~repro.index.dynamic.DynamicIndex` and
  accept ``insert``/``delete``/``compact``.

``knn`` requests flow through one :class:`~repro.serve.batching.KnnBatcher`
per index (when :attr:`ServeConfig.batching` is on), coalescing concurrent
clients into shared batched-engine calls.  ``compact`` relies on the dynamic
index's atomic generation swap — in-flight queries finish on the old
generation — then bumps the served generation counter and, for
snapshot-backed entries, re-saves the snapshot in place (the persistence
layer writes generation-suffixed payload files and unlinks the stale ones
only after the manifest commit, so concurrent mmap readers keep their data
alive through the swap).
"""

from __future__ import annotations

import operator
import threading
from typing import Any

import numpy as np

from repro.core.errors import (
    ReadOnlyIndexError,
    SearchError,
    UnknownIndexError,
    ValidationError,
)
from repro.core.normalization import znormalize
from repro.index.dynamic import DynamicIndex
from repro.index.search import (
    FixedThreshold,
    SearchResult,
    SearchStats,
    stats_to_payload,
    validated_count,
    validated_query,
)
from repro.index.sharded import ShardedIndex
from repro.index.stats import summarize_search_stats
from repro.obs.metrics import get_registry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Trace
from repro.serve.batching import KnnBatcher, engine_series_length, engine_tree
from repro.serve.config import ServeConfig

_REGISTRY = get_registry()
_QUERY_SECONDS = _REGISTRY.histogram(
    "repro_query_seconds",
    "Caller-observed /knn latency, per served index.",
    labelnames=("index",))
_QUERIES = _REGISTRY.counter(
    "repro_queries_total", "Answered /knn requests.", labelnames=("index",))
_QUERY_TIMEOUTS = _REGISTRY.counter(
    "repro_query_timeouts_total",
    "Queries whose budget expired (still well-formed answers).",
    labelnames=("index",))
_QUERY_PARTIALS = _REGISTRY.counter(
    "repro_query_partials_total",
    "Sharded queries answered from a subset of shards.",
    labelnames=("index",))
_SLOW_QUERIES = _REGISTRY.counter(
    "repro_slow_queries_total",
    "Queries over the configured slow-query threshold.",
    labelnames=("index",))
_QUERY_WORK = _REGISTRY.counter(
    "repro_query_work_total",
    "Search work performed answering queries, by kind.",
    labelnames=("index", "kind"))
_WAL_DEPTH_GAUGE = _REGISTRY.gauge(
    "repro_wal_depth",
    "WAL records since the last checkpoint, per writable index.",
    labelnames=("index",))
_DELTA_PENDING_GAUGE = _REGISTRY.gauge(
    "repro_delta_pending",
    "Buffered delta rows awaiting compaction, per writable index.",
    labelnames=("index",))
_TOMBSTONES_GAUGE = _REGISTRY.gauge(
    "repro_tombstones",
    "Deleted-but-not-compacted rows, per writable index.",
    labelnames=("index",))
_GENERATION_GAUGE = _REGISTRY.gauge(
    "repro_index_generation",
    "Serving generation (bumped by every successful compact).",
    labelnames=("index",))


class _StatsAccumulator:
    """Fold per-query :class:`SearchStats` into running ``/stats`` totals.

    Accumulates the :func:`~repro.index.stats.summarize_search_stats` fields
    incrementally so the app never retains per-query objects (a long-lived
    server would otherwise grow without bound).
    """

    _COUNTERS = ("queries", "timed_out", "partial_answers", "series_served",
                 "series_lower_bounds", "exact_distances", "leaves_visited",
                 "shards_total", "shards_answered", "engine_time_s",
                 "wall_time_s")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._totals = {key: 0 for key in self._COUNTERS}
        self._totals["engine_time_s"] = 0.0
        self._totals["wall_time_s"] = 0.0
        self._max_wall = 0.0

    def add(self, stats: SearchStats) -> None:
        part = summarize_search_stats([stats])
        with self._lock:
            for key in self._COUNTERS:
                self._totals[key] += part[key]
            self._max_wall = max(self._max_wall, part["max_wall_time_s"])

    def report(self) -> dict:
        with self._lock:
            totals = dict(self._totals)
            totals["max_wall_time_s"] = self._max_wall
        served = totals["series_served"]
        totals["pruning_ratio"] = (
            1.0 - totals["exact_distances"] / served if served else 0.0)
        totals["coverage"] = (
            totals["shards_answered"] / totals["shards_total"]
            if totals["shards_total"] else 1.0)
        return totals


class ServedIndex:
    """One named index the app serves: engine, role, generation, telemetry."""

    def __init__(self, name: str, engine: Any, *, path=None,
                 batcher: "KnnBatcher | None" = None) -> None:
        self.name = name
        self.engine = engine
        self.path = path
        self.batcher = batcher
        if isinstance(engine, DynamicIndex):
            self.read_only = False
        elif isinstance(engine, ShardedIndex):
            self.read_only = not engine.writable
        else:
            self.read_only = True
        #: Monotonic serving generation; bumped by every successful compact.
        self.generation = 1
        self.search_stats = _StatsAccumulator()
        # Registry children resolved once per entry, not per request.
        self._m_latency = _QUERY_SECONDS.labels(index=name)
        self._m_queries = _QUERIES.labels(index=name)
        self._m_timeouts = _QUERY_TIMEOUTS.labels(index=name)
        self._m_partials = _QUERY_PARTIALS.labels(index=name)
        self._m_slow = _SLOW_QUERIES.labels(index=name)
        self._m_exact = _QUERY_WORK.labels(index=name, kind="exact_distances")
        self._m_lower = _QUERY_WORK.labels(index=name,
                                           kind="series_lower_bounds")
        self._m_leaves = _QUERY_WORK.labels(index=name, kind="leaves_visited")

    def observe_query(self, stats: SearchStats) -> None:
        """Fold one answered query into this entry's exported metrics."""
        self._m_latency.observe(stats.wall_time_s)
        self._m_queries.inc()
        if stats.timed_out:
            self._m_timeouts.inc()
        if stats.shards_total and stats.partial:
            self._m_partials.inc()
        if stats.exact_distances:
            self._m_exact.inc(stats.exact_distances)
        if stats.series_lower_bounds:
            self._m_lower.inc(stats.series_lower_bounds)
        if stats.leaves_visited:
            self._m_leaves.inc(stats.leaves_visited)

    @property
    def index_type(self) -> str:
        if isinstance(self.engine, DynamicIndex):
            return f"dynamic[{self.engine.index_type}]"
        if isinstance(self.engine, ShardedIndex):
            return (f"sharded[{self.engine.index_type}]"
                    f"x{self.engine.num_shards}")
        return type(self.engine).__name__.removesuffix("Index").lower()

    @property
    def num_series(self) -> int:
        if isinstance(self.engine, (DynamicIndex, ShardedIndex)):
            return self.engine.num_surviving
        return engine_tree(self.engine).num_series

    def describe(self) -> dict:
        info = {
            "name": self.name,
            "type": self.index_type,
            "num_series": int(self.num_series),
            "series_length": int(engine_series_length(self.engine)),
            "read_only": self.read_only,
            "generation": self.generation,
            "batching": self.batcher is not None,
        }
        if isinstance(self.engine, ShardedIndex):
            health = self.engine.health_report()
            info["shards"] = {
                "total": health["shards_total"],
                "quarantined": health["quarantined"],
                "states": [entry["state"] for entry in health["shards"]],
                "quarantine_trips": sum(entry["quarantine_trips"]
                                        for entry in health["shards"]),
                "readmits": sum(entry["readmits"]
                                for entry in health["shards"]),
            }
        return info


class SearchApp:
    """The server's application layer: routes minus HTTP.

    All public methods take and return JSON-ready Python values and raise
    only :class:`~repro.core.errors.ReproError` subclasses, so the HTTP layer
    is a thin translation: call the method, serialize the dict, map a typed
    failure through :func:`repro.serve.errors.status_for`.
    """

    def __init__(self, config: "ServeConfig | None" = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self._indexes: "dict[str, ServedIndex]" = {}
        self._registry_lock = threading.Lock()
        self._closed = False
        self.slow_log = (
            SlowQueryLog(self.config.slow_query_s,
                         path=self.config.slow_query_log_path)
            if self.config.slow_query_s is not None else None)

    # ------------------------------------------------------------ registry

    def add_index(self, name: str, engine: Any, *, path=None) -> ServedIndex:
        """Register a built engine under ``name`` (replacing any previous one).

        ``engine`` is a built :class:`~repro.index.sofa.SofaIndex` /
        :class:`~repro.index.messi.MessiIndex` /
        :class:`~repro.index.tree.TreeIndex` (served read-only) or a
        :class:`~repro.index.dynamic.DynamicIndex` (served writable).
        ``path`` marks the entry snapshot-backed: compact re-saves there, so
        a restart resumes from the compacted state.
        """
        if not name or "/" in name:
            raise ValidationError(
                f"index names must be non-empty and slash-free, got {name!r}")
        entry = ServedIndex(name, engine, path=path)
        if self.config.batching:
            # The closure reads entry.engine per batch, so a future engine
            # swap (hot reload) takes effect without rebuilding the queue.
            entry.batcher = KnnBatcher(
                lambda: entry.engine,
                num_workers=self.config.num_workers,
                max_batch=self.config.batch_max_size,
                max_wait_s=self.config.batch_max_wait_s,
                name=f"knn-{name}",
                max_pending=self.config.max_pending)
        with self._registry_lock:
            previous = self._indexes.get(name)
            self._indexes[name] = entry
        if previous is not None and previous.batcher is not None:
            previous.batcher.close()
        # Callback gauges read the *current* entry on every scrape, so a
        # replacement under the same name re-points them automatically.
        _GENERATION_GAUGE.labels(index=name).set_function(
            lambda: entry.generation)
        if isinstance(engine, DynamicIndex):
            _WAL_DEPTH_GAUGE.labels(index=name).set_function(
                lambda: entry.engine.wal_depth)
            _DELTA_PENDING_GAUGE.labels(index=name).set_function(
                lambda: entry.engine.delta_count)
            _TOMBSTONES_GAUGE.labels(index=name).set_function(
                lambda: entry.engine.num_tombstones)
        return entry

    def load_snapshot(self, name: str, path, *, writable: bool = False,
                      mmap: bool = True, verify: str = "lazy",
                      **options) -> ServedIndex:
        """Load a snapshot directory and serve it under ``name``.

        ``writable=False`` (default) serves the snapshot read-only through
        the static loader — with ``mmap=True`` the payload arrays stay on
        disk.  ``writable=True`` loads it into a
        :class:`~repro.index.dynamic.DynamicIndex` (static snapshots take
        the upgrade path: compacted index, empty delta) and remembers
        ``path`` so compact re-saves in place; ``options`` reach the dynamic
        constructor.
        """
        from repro.index.persistence import load_dynamic, load_index

        if writable:
            engine = load_dynamic(path, mmap=mmap, verify=verify, **options)
            return self.add_index(name, engine, path=path)
        return self.add_index(name, load_index(path, mmap=mmap, verify=verify),
                              path=path)

    def load_sharded(self, name: str, path, **options) -> ServedIndex:
        """Load a sharded index directory and serve it under ``name``.

        ``options`` reach :meth:`~repro.index.sharded.ShardedIndex.load`
        unchanged (``degraded`` policy, retry/health policies, ``writable``,
        ``verify``, ...).  The entry is writable whenever the engine is, and
        its per-shard health shows up in ``/healthz`` and ``/indexes``.
        """
        engine = ShardedIndex.load(path, **options)
        return self.add_index(name, engine, path=path)

    def _entry(self, name: str) -> ServedIndex:
        with self._registry_lock:
            entry = self._indexes.get(name)
            available = sorted(self._indexes)
        if entry is None:
            raise UnknownIndexError(
                f"no index named {name!r} is being served "
                f"(available: {available or 'none'})")
        return entry

    def _writable(self, name: str) -> ServedIndex:
        entry = self._entry(name)
        if entry.read_only:
            raise ReadOnlyIndexError(
                f"index {name!r} is served read-only; load it with "
                f"writable=True (a DynamicIndex) to accept writes")
        return entry

    # -------------------------------------------------------------- routes

    def list_indexes(self) -> dict:
        with self._registry_lock:
            entries = list(self._indexes.values())
        return {"indexes": [entry.describe() for entry in entries]}

    def healthz(self) -> dict:
        """Liveness plus shard health.

        Stays exactly ``{"status": "ok", "indexes": n}`` while every served
        index is fully healthy and read-only.  When a sharded index has
        quarantined shards the status flips to ``"degraded"`` and a
        ``shards`` section carries each degraded index's per-shard states —
        still HTTP 200, because a degraded server keeps answering (with
        ``partial`` results) and a load balancer should not eject it for a
        recoverable shard fault.  When writable (dynamic) indexes are served
        a ``writers`` section reports each one's write-path debt: WAL records
        since the last checkpoint, buffered delta rows, and tombstones.
        """
        with self._registry_lock:
            entries = list(self._indexes.values())
        payload = {"status": "ok", "indexes": len(entries)}
        degraded = {}
        writers = {}
        for entry in entries:
            if isinstance(entry.engine, ShardedIndex):
                health = entry.engine.health_report()
                if health["status"] != "ok":
                    degraded[entry.name] = health
            elif isinstance(entry.engine, DynamicIndex):
                writers[entry.name] = {
                    "wal_depth": int(entry.engine.wal_depth),
                    "delta_pending": int(entry.engine.delta_count),
                    "tombstones": int(entry.engine.num_tombstones),
                }
        if degraded:
            payload["status"] = "degraded"
            payload["shards"] = degraded
        if writers:
            payload["writers"] = writers
        return payload

    def readyz(self) -> dict:
        """Readiness, as distinct from :meth:`healthz`'s liveness.

        A server is *ready* when it can actually answer queries: it is not
        draining, at least one index is loaded, and every batching index's
        micro-batch drainer thread is running.  An orchestrator (or the
        cluster supervisor) routes traffic only to ready workers — a warming
        process is alive but not yet ready, and a draining one stops being
        ready before it stops being alive.  The HTTP layer renders unready
        as 503 so load balancers need no body parsing.
        """
        with self._registry_lock:
            entries = list(self._indexes.values())
            closed = self._closed
        reasons = []
        if closed:
            reasons.append("the app is draining")
        if not entries:
            reasons.append("no index is loaded yet")
        for entry in entries:
            if entry.batcher is not None and not entry.batcher.drainer_alive:
                reasons.append(
                    f"the micro-batch drainer of index {entry.name!r} "
                    f"is not running")
        payload = {"ready": not reasons, "indexes": len(entries)}
        if reasons:
            payload["reasons"] = reasons
        return payload

    def stats(self) -> dict:
        """Aggregated serving statistics, per index.

        Search counters come from the engines' per-query
        :class:`~repro.index.search.SearchStats` (folded through
        :func:`~repro.index.stats.summarize_search_stats`); batching counters
        from each index's micro-batch queue.
        """
        with self._registry_lock:
            entries = list(self._indexes.values())
        payload = {}
        for entry in entries:
            report = {
                "generation": entry.generation,
                "search": entry.search_stats.report(),
                "batching": (entry.batcher.stats
                             if entry.batcher is not None else None),
            }
            if isinstance(entry.engine, ShardedIndex):
                health = entry.engine.health_report()
                report["shards"] = {
                    "total": health["shards_total"],
                    "quarantined": health["quarantined"],
                    "states": [s["state"] for s in health["shards"]],
                }
            payload[entry.name] = report
        return {"indexes": payload}

    def metrics_text(self) -> str:
        """The process-wide metrics registry in Prometheus text exposition."""
        return get_registry().render()

    def slow_queries(self) -> dict:
        """The in-memory tail of the slow-query log (empty when disabled)."""
        if self.slow_log is None:
            return {"threshold_s": None, "logged": 0, "slow_queries": []}
        return {
            "threshold_s": self.config.slow_query_s,
            "logged": self.slow_log.logged,
            "slow_queries": self.slow_log.recent(),
        }

    def knn(self, name: str, query, k: int = 1,
            timeout_s: "float | None" = None, trace: bool = False) -> dict:
        """Answer one exact k-NN request against index ``name``.

        Validates and bounds the request (``k`` against
        :attr:`ServeConfig.max_k`, ``timeout_s`` clamped to
        :attr:`ServeConfig.max_timeout_s`), answers through the index's
        micro-batcher when batching is on, records the query's stats, and
        returns a JSON-ready payload.  A budget expiry is a *well-formed
        answer* (``timed_out: true``, exact distances over what was refined),
        never an error.

        ``trace=True`` (when :attr:`ServeConfig.tracing` allows it) records a
        per-query span breakdown and attaches it to the payload under
        ``"trace"``.  Traced requests bypass the micro-batcher — a coalesced
        batch has no single-query phase structure — which never changes the
        answer (``knn`` and ``knn_batch`` are bit-identical by contract),
        only its latency profile.
        """
        entry = self._entry(name)
        k = validated_count(k)
        if k > self.config.max_k:
            raise SearchError(
                f"k={k} exceeds this server's limit max_k={self.config.max_k}")
        timeout_s = self.config.clamp_timeout(timeout_s)
        query = validated_query(query, engine_series_length(entry.engine))
        query_trace = Trace() if (trace and self.config.tracing) else None
        if entry.batcher is not None and query_trace is None:
            result = entry.batcher.submit(query, k, timeout_s)
        else:
            result = entry.engine.knn(query, k=k,
                                      num_workers=self.config.num_workers,
                                      timeout_s=timeout_s, trace=query_trace)
        entry.search_stats.add(result.stats)
        entry.observe_query(result.stats)
        if self.slow_log is not None:
            logged = self.slow_log.observe(
                index=name, wall_time_s=result.stats.wall_time_s, k=k,
                stats=result.stats, trace=query_trace)
            if logged is not None:
                entry._m_slow.inc()
        payload = self._result_payload(entry, k, result)
        if query_trace is not None:
            payload["trace"] = query_trace.to_dict()
            payload["wall_time_s"] = float(result.stats.wall_time_s)
        return payload

    @staticmethod
    def _result_payload(entry: ServedIndex, k: int,
                        result: SearchResult) -> dict:
        payload = {
            "index": entry.name,
            "generation": entry.generation,
            "k": k,
            "ids": [int(row) for row in result.indices],
            "distances": [float(d) for d in result.distances],
            "timed_out": bool(result.stats.timed_out),
        }
        if result.stats.shards_total:
            payload["partial"] = bool(result.stats.partial)
            payload["coverage"] = float(result.stats.coverage)
        return payload

    # ------------------------------------------------------ shard worker RPC

    def shard_knn(self, name: str, query, k: int = 1,
                  timeout_s: "float | None" = None,
                  threshold: "float | None" = None) -> dict:
        """One shard's contribution to a cluster scatter (worker-mode RPC).

        Mirrors one in-process scatter attempt
        (:meth:`repro.index.sharded.ShardedIndex._attempt_knn`) over the
        wire: clamp ``k`` to the shard's surviving rows, search with the
        coordinator's forwarded best-so-far ``threshold`` as a frozen
        pruning bound, and return shard-*local* candidate ids, their raw
        normalized values, and canonical squared distances (the same
        einsum the coordinator's merge recomputes, so the offers it makes
        to its live heap carry identical bits).
        """
        entry = self._entry(name)
        k = validated_count(k)
        timeout_s = self.config.clamp_timeout(timeout_s)
        query = validated_query(query, engine_series_length(entry.engine))
        engine = entry.engine
        surviving = int(engine.num_surviving)
        effective_k = min(k, surviving)
        if effective_k == 0:
            return {"ids": [], "values": [], "squared": [],
                    "stats": stats_to_payload(SearchStats(num_series=0)),
                    "surviving": surviving}
        shared = FixedThreshold(threshold) if threshold is not None else None
        result = engine.knn(query, k=effective_k, num_workers=1,
                            timeout_s=timeout_s, shared_best=shared)
        values = np.asarray(engine.gather_values(result.indices),
                            dtype=np.float64)
        difference = values - znormalize(query)
        squared = np.einsum("ij,ij->i", difference, difference)
        entry.search_stats.add(result.stats)
        entry.observe_query(result.stats)
        return {
            "ids": [int(row) for row in result.indices],
            "values": [[float(value) for value in row] for row in values],
            "squared": [float(value) for value in squared],
            "stats": stats_to_payload(result.stats),
            "surviving": surviving,
        }

    def shard_knn_batch(self, name: str, queries, k: int = 1,
                        timeout_s: "float | None" = None) -> dict:
        """Batched shard RPC: one engine ``knn_batch``, per-query candidates.

        No cross-shard best-so-far (matching the in-process batched
        scatter); every query's candidates come back with raw values for
        the coordinator's canonical per-query merge.
        """
        entry = self._entry(name)
        k = validated_count(k)
        timeout_s = self.config.clamp_timeout(timeout_s)
        try:
            matrix = np.asarray(queries, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise ValidationError(f"queries are not numeric: {error}") from None
        expected = engine_series_length(entry.engine)
        if matrix.ndim != 2 or matrix.shape[1] != expected:
            raise ValidationError(
                f"queries must be a 2-D matrix of series of length "
                f"{expected}, got shape {matrix.shape}")
        if not np.isfinite(matrix).all():
            raise ValidationError("queries contain NaN or infinite values")
        engine = entry.engine
        surviving = int(engine.num_surviving)
        effective_k = min(k, surviving)
        if effective_k == 0:
            empty = {"ids": [], "values": []}
            return {"results": [dict(empty) for _ in range(matrix.shape[0])],
                    "stats": [stats_to_payload(SearchStats(num_series=0))
                              for _ in range(matrix.shape[0])],
                    "surviving": surviving}
        results = engine.knn_batch(matrix, k=effective_k, num_workers=1,
                                   timeout_s=timeout_s)
        payload = []
        stats = []
        for result in results:
            values = np.asarray(engine.gather_values(result.indices),
                                dtype=np.float64)
            payload.append({
                "ids": [int(row) for row in result.indices],
                "values": [[float(value) for value in row]
                           for row in values],
            })
            stats.append(stats_to_payload(result.stats))
            entry.search_stats.add(result.stats)
            entry.observe_query(result.stats)
        return {"results": payload, "stats": stats, "surviving": surviving}

    def shard_probe(self, name: str) -> dict:
        """Answer a shard-local 1-NN probe (the cluster readmission check).

        Runs the same probe an in-process
        :meth:`~repro.index.sharded.ShardedIndex.probe_shard` would — a real
        1-NN over the shard's own first row — so a passing probe means the
        worker actually serves, not merely accepts connections.
        """
        entry = self._entry(name)
        engine = entry.engine
        surviving = int(engine.num_surviving)
        if surviving > 0:
            probe_query = np.asarray(engine.tree.dataset.values)[0]
            engine.knn(probe_query, k=1, num_workers=1)
        return {"ok": True, "surviving": surviving}

    def insert(self, name: str, series) -> dict:
        """Buffer one series (1-D) or a batch (2-D) into a writable index."""
        entry = self._writable(name)
        ids = entry.engine.insert_batch(series)
        return {
            "index": name,
            "generation": entry.generation,
            "ids": [int(row) for row in ids],
            "num_surviving": int(entry.engine.num_surviving),
            "needs_compaction": bool(
                getattr(entry.engine, "needs_compaction", False)),
        }

    def delete(self, name: str, row) -> dict:
        """Tombstone one global row id in a writable index."""
        entry = self._writable(name)
        try:
            row = operator.index(row)
        except TypeError:
            raise ValidationError(
                f"row must be an integer id, got {row!r} of type "
                f"{type(row).__name__}") from None
        entry.engine.delete(row)
        return {
            "index": name,
            "generation": entry.generation,
            "deleted": row,
            "num_surviving": int(entry.engine.num_surviving),
            "needs_compaction": bool(
                getattr(entry.engine, "needs_compaction", False)),
        }

    def compact(self, name: str) -> dict:
        """Merge a writable index's delta, swap generations, re-save in place.

        The engine's rebuild ends in an atomic state swap — queries in flight
        keep answering on the old generation and never observe a torn index.
        For snapshot-backed entries the compacted state is then re-saved to
        the same directory: the snapshot writer commits via atomic manifest
        rename and only afterwards unlinks the previous generation's payload
        files, which stays safe under concurrent mmap readers (their mapped
        inodes outlive the unlink).
        """
        entry = self._writable(name)
        outcome = entry.engine.compact(num_workers=self.config.num_workers)
        entry.generation += 1
        sharded = isinstance(entry.engine, ShardedIndex)
        if sharded:
            # The sharded engine persists itself (per-shard snapshots plus
            # the shard manifest live under its own directory).
            entry.engine.save()
            dropped = int(sum(outcome.values()))
            remapped = int(entry.engine.num_surviving) + dropped
        elif entry.path is not None:
            entry.engine.save(entry.path)
        if not sharded:
            remapped = int(outcome.shape[0])
            dropped = int((outcome < 0).sum())
        payload = {
            "index": name,
            "generation": entry.generation,
            "num_surviving": int(entry.engine.num_surviving),
            "remapped_rows": remapped,
            "dropped_rows": dropped,
            "saved": sharded or entry.path is not None,
        }
        if sharded:
            payload["shards_compacted"] = len(outcome)
        return payload

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Drain and close every index's batching queue (idempotent)."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._indexes.values())
        for entry in entries:
            if entry.batcher is not None:
                entry.batcher.close()
