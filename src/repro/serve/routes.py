"""The HTTP layer: stdlib threaded server translating routes to app calls.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per connection,
which is exactly the concurrency shape the micro-batching queue converts back
into batched engine calls.  The handler is deliberately thin: parse the route
and JSON body, call the matching :class:`~repro.serve.app.SearchApp` method,
serialize the dict it returns; any typed failure renders through the
:mod:`repro.serve.errors` status map.  No framework, no new dependencies.

Routes
------
========  =========================  =============================================
Method    Path                       App call
========  =========================  =============================================
GET       ``/healthz``               :meth:`~repro.serve.app.SearchApp.healthz`
GET       ``/stats``                 :meth:`~repro.serve.app.SearchApp.stats`
GET       ``/indexes``               :meth:`~repro.serve.app.SearchApp.list_indexes`
GET       ``/metrics``               :meth:`~repro.serve.app.SearchApp.metrics_text`
GET       ``/slow_queries``          :meth:`~repro.serve.app.SearchApp.slow_queries`
POST      ``/{index}/knn``           :meth:`~repro.serve.app.SearchApp.knn`
POST      ``/{index}/insert``        :meth:`~repro.serve.app.SearchApp.insert`
POST      ``/{index}/delete``        :meth:`~repro.serve.app.SearchApp.delete`
POST      ``/{index}/compact``       :meth:`~repro.serve.app.SearchApp.compact`
==========================================================================

``/metrics`` is the one non-JSON route: it renders the process-wide metrics
registry in the Prometheus text exposition format (version 0.0.4).
"""

from __future__ import annotations

import json
import math
import signal as signal_module
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote, urlsplit

from repro.core.errors import (
    OverloadedError,
    ReadOnlyIndexError,
    ReproError,
    ValidationError,
)
from repro.serve.app import SearchApp
from repro.serve.errors import error_payload, status_for

_POST_ACTIONS = ("knn", "insert", "delete", "compact")
#: Writes are refused on a worker: a shard-local insert/delete/compact would
#: desync the coordinator's global id maps.
_WRITE_ACTIONS = ("insert", "delete", "compact")
#: Shard RPC routes, enabled only under :attr:`ServeConfig.worker_mode`.
_WORKER_ACTIONS = ("shard_knn", "shard_knn_batch", "shard_probe")


class _Handler(BaseHTTPRequestHandler):
    """One request: route → app method → JSON; errors through the status map."""

    server_version = "repro-serve"
    # HTTP/1.1 keeps client connections alive between requests, which the
    # benchmark's load generators rely on; it requires Content-Length on
    # every response, which _respond always sets.
    protocol_version = "HTTP/1.1"
    # Fully buffer writes and turn off Nagle: status line, headers and body
    # must leave in one TCP segment, or the Nagle/delayed-ACK interaction
    # adds ~40ms to every response on a keep-alive connection — two orders
    # of magnitude over the engine's per-query time.
    wbufsize = -1
    disable_nagle_algorithm = True

    @property
    def app(self) -> SearchApp:
        return self.server.app  # attached by IndexServer

    # ------------------------------------------------------------- plumbing

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # per-request stderr logging would swamp the query storm tests

    def _respond(self, status: int, payload: dict,
                 headers: "dict[str, str] | None" = None) -> None:
        self._respond_bytes(status, json.dumps(payload).encode("utf-8"),
                            "application/json", headers)

    def _respond_bytes(self, status: int, body: bytes, content_type: str,
                       headers: "dict[str, str] | None" = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        # A draining server finishes the request it already accepted, then
        # hangs up so the keep-alive thread can exit within the drain budget.
        if getattr(self.server, "draining", False):
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _respond_error(self, error: BaseException) -> None:
        if isinstance(error, ReproError):
            headers = None
            if isinstance(error, OverloadedError):
                retry_after = math.ceil(self.app.config.retry_after_s)
                headers = {"Retry-After": str(max(1, retry_after))}
            self._respond(status_for(error), error_payload(error), headers)
            return
        # Anything untyped is a server bug; report it as such but keep the
        # response shape uniform so clients never need a second parser.
        self._respond(500, {"error": {
            "type": type(error).__name__,
            "message": str(error),
            "status": 500,
        }})

    def _not_found(self, message: str) -> None:
        self._respond(404, {"error": {
            "type": "NotFound", "message": message, "status": 404}})

    def _read_body(self) -> dict:
        """Parse the JSON request body; typed errors for the status map."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise ValidationError("Content-Length header is not an integer")
        limit = self.app.config.request_body_limit
        if length > limit:
            raise ValidationError(
                f"request body of {length} bytes exceeds the server's "
                f"limit of {limit} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValidationError(
                f"request body is not valid JSON: {error}") from None
        if not isinstance(body, dict):
            raise ValidationError(
                f"request body must be a JSON object, got "
                f"{type(body).__name__}")
        return body

    # --------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self.server.request_started()
        try:
            self._handle_get()
        finally:
            self.server.request_finished()

    def _handle_get(self) -> None:
        path = urlsplit(self.path).path
        try:
            if path == "/healthz":
                self._respond(200, self.app.healthz())
            elif path == "/readyz":
                payload = self.app.readyz()
                # 503 until ready: load balancers and the cluster supervisor
                # route on the status code alone.
                self._respond(200 if payload["ready"] else 503, payload)
            elif path == "/stats":
                self._respond(200, self.app.stats())
            elif path in ("/indexes", "/"):
                self._respond(200, self.app.list_indexes())
            elif path == "/metrics":
                self._respond_bytes(
                    200, self.app.metrics_text().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/slow_queries":
                self._respond(200, self.app.slow_queries())
            else:
                self._not_found(f"no GET route {path!r}; "
                                f"try /healthz, /readyz, /stats, /indexes, "
                                f"/metrics or /slow_queries")
        except Exception as error:  # noqa: BLE001 - rendered via status map
            self._respond_error(error)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self.server.request_started()
        try:
            self._handle_post()
        finally:
            self.server.request_finished()

    def _handle_post(self) -> None:
        worker_mode = self.app.config.worker_mode
        actions = _POST_ACTIONS + (_WORKER_ACTIONS if worker_mode else ())
        parts = [part for part in urlsplit(self.path).path.split("/") if part]
        if len(parts) != 2 or parts[1] not in actions:
            self._not_found(
                f"no POST route {self.path!r}; expected /<index>/<action> "
                f"with action in {list(actions)}")
            return
        name, action = unquote(parts[0]), parts[1]
        try:
            if worker_mode and action in _WRITE_ACTIONS:
                raise ReadOnlyIndexError(
                    f"this server is a shard worker; {action} must go "
                    f"through the cluster coordinator")
            body = self._read_body()
            if action == "knn":
                payload = self.app.knn(name, body.get("query"),
                                       k=body.get("k", 1),
                                       timeout_s=body.get("timeout_s"),
                                       trace=bool(body.get("trace", False)))
            elif action == "shard_knn":
                payload = self.app.shard_knn(
                    name, body.get("query"), k=body.get("k", 1),
                    timeout_s=body.get("timeout_s"),
                    threshold=body.get("threshold"))
            elif action == "shard_knn_batch":
                payload = self.app.shard_knn_batch(
                    name, body.get("queries"), k=body.get("k", 1),
                    timeout_s=body.get("timeout_s"))
            elif action == "shard_probe":
                payload = self.app.shard_probe(name)
            elif action == "insert":
                payload = self.app.insert(name, body.get("series"))
            elif action == "delete":
                payload = self.app.delete(name, body.get("row"))
            else:
                payload = self.app.compact(name)
            self._respond(200, payload)
        except Exception as error:  # noqa: BLE001 - rendered via status map
            self._respond_error(error)


class _DrainingHTTPServer(ThreadingHTTPServer):
    """Threaded server that counts its in-flight *requests* for shutdown.

    The gauge covers individual requests, not connections: a keep-alive
    thread idling between requests holds nothing in flight, so a drain does
    not wait on clients that merely keep sockets open.  :meth:`wait_idle`
    lets :meth:`IndexServer.stop` block — bounded — until every request
    already being handled has been answered before the micro-batch queues
    close underneath it.
    """

    daemon_threads = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.draining = False
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()

    def request_started(self) -> None:
        with self._in_flight_lock:
            self._in_flight += 1
            self._idle.clear()

    def request_finished(self) -> None:
        with self._in_flight_lock:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()

    @property
    def in_flight(self) -> int:
        with self._in_flight_lock:
            return self._in_flight

    def wait_idle(self, timeout: "float | None") -> bool:
        """Block until no request is in flight; ``False`` on timeout."""
        return self._idle.wait(timeout)


class IndexServer:
    """A threaded HTTP server over one :class:`~repro.serve.app.SearchApp`.

    ``config.port = 0`` (the default) binds an ephemeral port; read
    :attr:`port` / :attr:`url` after construction.  Works as a context
    manager::

        app = SearchApp()
        app.add_index("lendb", index)
        with IndexServer(app) as server:
            print(server.url)  # http://127.0.0.1:<port>
            ...
    """

    def __init__(self, app: SearchApp) -> None:
        self.app = app
        self._httpd = _DrainingHTTPServer(
            (app.config.host, app.config.port), _Handler)
        self._httpd.app = app
        self._thread: "threading.Thread | None" = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "IndexServer":
        """Serve on a daemon thread; returns immediately."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._httpd.serve_forever,
                                            name="repro-serve", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close queues.

        Order matters: (1) mark the server draining so keep-alive handlers
        hang up after their current response, (2) stop the acceptor and close
        the listening socket — new connections are refused from here on,
        (3) wait up to :attr:`ServeConfig.shutdown_drain_s` for every request
        already accepted (including those blocked inside a micro-batch queue)
        to finish, (4) close the app, which drains whatever is still queued
        and then rejects stragglers with a typed
        :class:`~repro.core.errors.ShutdownError`.
        """
        self._httpd.draining = True
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()
        self._httpd.wait_idle(self.app.config.shutdown_drain_s)
        self.app.close()

    def install_signal_handlers(
            self, signals=(signal_module.SIGTERM, signal_module.SIGINT),
    ) -> threading.Event:
        """Route SIGTERM/SIGINT into the graceful drain; returns the trigger.

        The handler only sets an event — a signal handler must not run the
        multi-second drain itself (it interrupts arbitrary bytecode, and
        :meth:`stop` takes locks the interrupted frame may hold).  The
        returned event is what :meth:`serve_until_signal` (or a caller's own
        main loop) waits on before calling :meth:`stop`.  Must be called
        from the main thread (a CPython signal-API constraint).
        """
        triggered = threading.Event()

        def _handle(signum, frame):  # noqa: ARG001 - stdlib signature
            triggered.set()

        for signum in signals:
            signal_module.signal(signum, _handle)
        return triggered

    def serve_until_signal(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain gracefully and return.

        The bounded drain is the same one :meth:`stop` always runs: stop
        accepting, finish in-flight requests (up to ``shutdown_drain_s``),
        close the queues.  A supervised worker built on this exits 0 on
        SIGTERM — which is how the cluster supervisor tells a deliberate
        stop from a crash.
        """
        triggered = self.install_signal_handlers()
        self.start()
        triggered.wait()
        self.stop()

    def __enter__(self) -> "IndexServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
