"""Serving layer: a threaded HTTP API over the similarity-search engines.

The paper's engines answer queries in microseconds; this package makes them a
*service* without giving up the batched-engine throughput or the typed-error
discipline.  Stdlib-only by design (``http.server`` + ``json``): no web
framework is required to reproduce the serving results.

* :class:`~repro.serve.config.ServeConfig` — limits (``max_k``, timeout
  ceiling, body size) and the micro-batching window.
* :class:`~repro.serve.app.SearchApp` — HTTP-free application layer: named
  read-only (mmap snapshot) and writable (:class:`~repro.index.dynamic.DynamicIndex`)
  indexes, per-index request coalescing, ``/stats`` aggregation, compaction
  with atomic generation swap and in-place snapshot re-save.
* :class:`~repro.serve.routes.IndexServer` — the threaded HTTP front end,
  with graceful shutdown (stop accepting, drain in-flight, close queues).
* :class:`~repro.serve.batching.KnnBatcher` — coalesces concurrent ``/knn``
  requests into shared :meth:`knn_batch` calls; a bounded backlog sheds
  excess load with typed 503s carrying ``Retry-After``.
* :mod:`repro.serve.errors` — the total typed-error → HTTP-status map.

Sharded indexes (:class:`~repro.index.sharded.ShardedIndex`) are first-class:
:meth:`~repro.serve.app.SearchApp.load_sharded` serves one, ``/healthz``
flips to ``"degraded"`` (still 200) while shards are quarantined, and
``/stats`` carries coverage counters.

Observability rides along (see :mod:`repro.obs`): ``GET /metrics`` renders
the process-wide registry in the Prometheus text format, ``/knn`` requests
can opt into a per-query span breakdown with ``"trace": true``, and a
configured :attr:`~repro.serve.config.ServeConfig.slow_query_s` threshold
turns on the structured slow-query log (``GET /slow_queries``).
"""

from repro.serve.app import SearchApp, ServedIndex
from repro.serve.batching import KnnBatcher, engine_series_length
from repro.serve.config import ServeConfig
from repro.serve.errors import STATUS_MAP, error_payload, status_for
from repro.serve.routes import IndexServer

__all__ = [
    "IndexServer",
    "KnnBatcher",
    "STATUS_MAP",
    "SearchApp",
    "ServeConfig",
    "ServedIndex",
    "engine_series_length",
    "error_payload",
    "status_for",
]
