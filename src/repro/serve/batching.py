"""Request coalescing for ``/knn``: many client threads, one batched engine.

The HTTP layer answers every client on its own thread; without coalescing each
request would pay the full per-query ``knn`` cost and the 4-6x batched-engine
advantage would stop at the serving boundary.  :class:`KnnBatcher` puts a
:class:`~repro.parallel.batching.MicroBatchQueue` in front of the engine:
handler threads submit ``(query, k, timeout_s)`` and block, the drainer groups
whatever coalesced by identical ``(k, timeout_s)`` and answers each group with
one :meth:`knn_batch` call.

Error isolation is per item where it can be: queries are pre-validated one by
one (a malformed neighbour never poisons the batch), and a typed engine
failure of one ``(k, timeout_s)`` group is delivered to that group's
submitters only.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.errors import ReproError
from repro.index.search import resolve_deadline, validated_count, validated_query
from repro.parallel.batching import MicroBatchQueue


def engine_tree(engine):
    """The served tree of any engine: wrapper, dynamic wrapper, or bare tree."""
    return getattr(engine, "tree", engine)


def engine_series_length(engine) -> int:
    """The series length an engine answers over, tree-backed or sharded.

    A :class:`~repro.index.sharded.ShardedIndex` has no single ``tree`` (its
    shards load lazily), so it exposes ``series_length`` directly; everything
    else resolves through its served tree's dataset.
    """
    length = getattr(engine, "series_length", None)
    if length is not None:
        return int(length)
    return int(engine_tree(engine).dataset.series_length)


class KnnBatcher:
    """Coalesce concurrent k-NN requests into shared ``knn_batch`` calls.

    Parameters
    ----------
    get_engine:
        Zero-argument callable returning the engine to answer with.  Looked
        up once per drained batch — not once at construction — so a hot
        snapshot reload (the app swapping an index's engine) takes effect on
        the next batch without tearing the queue down.
    num_workers:
        Worker threads handed to every ``knn_batch`` call (``None`` = the
        ``REPRO_NUM_WORKERS`` process default).
    max_batch / max_wait_s / name / max_pending:
        Forwarded to :class:`~repro.parallel.batching.MicroBatchQueue`
        (``max_pending`` bounds the backlog: beyond it ``submit`` sheds the
        request with a typed
        :class:`~repro.core.errors.OverloadedError`).
    """

    def __init__(self, get_engine: Callable[[], Any], *,
                 num_workers: "int | None" = None, max_batch: int = 64,
                 max_wait_s: float = 0.002, name: str = "knn",
                 max_pending: "int | None" = None) -> None:
        self._get_engine = get_engine
        self._num_workers = num_workers
        self._queue = MicroBatchQueue(self._process, max_batch=max_batch,
                                      max_wait_s=max_wait_s, name=name,
                                      max_pending=max_pending)

    @property
    def pending_depth(self) -> int:
        """Requests currently queued behind the drainer."""
        return self._queue.pending_depth

    @property
    def drainer_alive(self) -> bool:
        """Whether the underlying micro-batch drainer thread is running."""
        return self._queue.drainer_alive

    def submit(self, query: np.ndarray, k: int, timeout_s: "float | None",
               wait_timeout: "float | None" = None):
        """Answer one query through the shared queue; blocks until its batch ran.

        Returns the query's :class:`~repro.index.search.SearchResult`;
        re-raises its typed engine error, and
        :class:`~repro.core.errors.ShutdownError` after :meth:`close`.
        ``k`` and ``timeout_s`` are validated *here*, on the caller's thread:
        they become the grouping key, and a typed rejection must name the one
        bad request rather than surface from inside someone else's batch.
        """
        k = validated_count(k)
        resolve_deadline(timeout_s)  # typed validation only; deadline discarded
        return self._queue.submit((query, k, timeout_s), timeout=wait_timeout)

    def close(self, timeout: "float | None" = 10.0) -> None:
        self._queue.close(timeout)

    @property
    def stats(self) -> dict:
        """Coalescing counters (see :attr:`MicroBatchQueue.stats`)."""
        return self._queue.stats

    # ------------------------------------------------------------- drainer

    def _process(self, items: list) -> list:
        """Answer one drained batch: validate per item, group, search per group."""
        engine = self._get_engine()  # one generation serves the whole batch
        expected_length = engine_series_length(engine)
        outcomes: list = [None] * len(items)
        groups: "dict[tuple, list[tuple[int, np.ndarray]]]" = {}
        for position, (query, k, timeout_s) in enumerate(items):
            try:
                query = validated_query(query, expected_length)
            except ReproError as error:
                outcomes[position] = error
                continue
            groups.setdefault((k, timeout_s), []).append((position, query))
        for (k, timeout_s), members in groups.items():
            queries = np.stack([query for _, query in members])
            try:
                results = engine.knn_batch(queries, k=k,
                                           num_workers=self._num_workers,
                                           timeout_s=timeout_s)
            except ReproError as error:
                for position, _ in members:
                    outcomes[position] = error
            else:
                for (position, _), result in zip(members, results):
                    outcomes[position] = result
        return outcomes
