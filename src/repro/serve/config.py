"""Serving-layer configuration: limits, batching window, bind address."""

from __future__ import annotations

import numbers
from dataclasses import dataclass, field

from repro.core.errors import InvalidParameterError


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of one :class:`~repro.serve.app.SearchApp`.

    Parameters
    ----------
    host / port:
        Bind address of the HTTP layer (``port=0`` picks an ephemeral port —
        the default, so tests and examples never collide).
    max_k:
        Largest ``k`` a ``/knn`` request may ask for; beyond it the request
        is rejected with a typed 400 instead of letting one client monopolize
        the engine.
    max_timeout_s:
        Ceiling on the per-request ``timeout_s`` budget.  Requests asking for
        more are *clamped* (a longer budget only ever helps the caller, so
        clamping is safe); requests asking for none get ``default_timeout_s``.
    default_timeout_s:
        Budget applied when a ``/knn`` request carries no ``timeout_s``
        (``None`` = unbounded, the library default).
    batching:
        Coalesce concurrent ``/knn`` requests into shared
        :meth:`~repro.index.batch_search.BatchSearcher.knn_batch` calls
        through a :class:`~repro.parallel.batching.MicroBatchQueue`.
        Disabling it serves every request with a private per-query ``knn``
        call — the naive baseline the serving benchmark compares against.
    batch_max_size / batch_max_wait_s:
        Micro-batch window: largest coalesced batch, and how long the drainer
        holds the window open for stragglers after the first request arrives.
    num_workers:
        Worker threads handed to the engines (``None`` = the
        ``REPRO_NUM_WORKERS`` process default).
    request_body_limit:
        Largest accepted HTTP request body, in bytes (oversized requests get
        a typed 400 rather than an allocation).
    max_pending:
        Load-shedding bound on each index's micro-batch backlog: when this
        many ``/knn`` requests are already queued, new ones are rejected with
        a typed 503 (:class:`~repro.core.errors.OverloadedError`, carrying a
        ``Retry-After`` header) instead of growing everyone's latency without
        limit.  ``None`` leaves the queue unbounded.
    retry_after_s:
        The ``Retry-After`` hint attached to shed (503) responses, in
        seconds.
    shutdown_drain_s:
        Graceful-shutdown budget: after the server stops accepting
        connections, how long :meth:`~repro.serve.routes.IndexServer.stop`
        waits for in-flight requests (and the queued micro-batches behind
        them) to finish before closing the queues regardless.
    slow_query_s:
        Slow-query threshold: a ``/knn`` answer whose caller-observed wall
        time exceeds this many seconds is recorded in the structured
        slow-query log (one JSON line with the full span breakdown).
        ``None`` (default) disables the log.
    slow_query_log_path:
        Where slow-query JSON lines are appended.  ``None`` keeps them only
        in the in-memory ring (``SearchApp.slow_queries()``).
    tracing:
        Allow ``/knn`` requests to opt into per-query tracing
        (``"trace": true`` in the request body); disabling it makes the flag
        a no-op so a public deployment cannot be asked to pay the tracing
        cost.  Slow-query logging is independent of this switch.
    worker_mode:
        Serve as a *shard worker* of a process-per-shard cluster
        (:mod:`repro.cluster`): the shard RPC routes
        (``/{index}/shard_knn``, ``shard_knn_batch``, ``shard_probe``) are
        enabled and the public write routes are refused — shard-local writes
        would desync the coordinator's global id maps, so writes must go
        through the coordinator.  Off by default: a standalone server never
        exposes the shard-local RPC surface.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_k: int = 100
    max_timeout_s: float = 30.0
    default_timeout_s: "float | None" = None
    batching: bool = True
    batch_max_size: int = 64
    batch_max_wait_s: float = 0.002
    num_workers: "int | None" = None
    request_body_limit: int = field(default=16 * 1024 * 1024)
    max_pending: "int | None" = 256
    retry_after_s: float = 1.0
    shutdown_drain_s: float = 5.0
    slow_query_s: "float | None" = None
    slow_query_log_path: "str | None" = None
    tracing: bool = True
    worker_mode: bool = False

    def __post_init__(self) -> None:
        if self.max_k < 1:
            raise InvalidParameterError(f"max_k must be >= 1, got {self.max_k}")
        if not self.max_timeout_s > 0:
            raise InvalidParameterError(
                f"max_timeout_s must be positive, got {self.max_timeout_s}")
        if (self.default_timeout_s is not None
                and not self.default_timeout_s > 0):
            raise InvalidParameterError(
                f"default_timeout_s must be positive or None, "
                f"got {self.default_timeout_s}")
        if self.batch_max_size < 1:
            raise InvalidParameterError(
                f"batch_max_size must be >= 1, got {self.batch_max_size}")
        if self.batch_max_wait_s < 0:
            raise InvalidParameterError(
                f"batch_max_wait_s must be >= 0, got {self.batch_max_wait_s}")
        if self.request_body_limit < 1024:
            raise InvalidParameterError(
                f"request_body_limit must be >= 1024 bytes, "
                f"got {self.request_body_limit}")
        if self.max_pending is not None and self.max_pending < 1:
            raise InvalidParameterError(
                f"max_pending must be >= 1 (or None), got {self.max_pending}")
        if not self.retry_after_s > 0:
            raise InvalidParameterError(
                f"retry_after_s must be positive, got {self.retry_after_s}")
        if not self.shutdown_drain_s >= 0:
            raise InvalidParameterError(
                f"shutdown_drain_s must be >= 0, got {self.shutdown_drain_s}")
        if self.slow_query_s is not None and not self.slow_query_s > 0:
            raise InvalidParameterError(
                f"slow_query_s must be positive or None, "
                f"got {self.slow_query_s}")

    def clamp_timeout(self, timeout_s: "float | None") -> "float | None":
        """Resolve a request's budget: default when absent, ceiling applied.

        Malformed values (wrong type, non-positive) are passed through
        untouched so the engine's own validation raises the typed error the
        status map expects — the clamp never masks a 400 as a crash.
        """
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        if timeout_s is None:
            return None
        if isinstance(timeout_s, bool) or not isinstance(timeout_s,
                                                         numbers.Real):
            return timeout_s
        if not timeout_s > 0:
            return timeout_s
        return min(float(timeout_s), self.max_timeout_s)
