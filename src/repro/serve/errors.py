"""Typed-error → HTTP-status map for the serving layer.

The engines raise only :class:`~repro.core.errors.ReproError` subclasses at
their API boundaries (the contract pinned by ``tests/index/test_api_contract``),
so the HTTP layer never needs a blanket ``except Exception`` around request
handling: every failure a handler can see has a deliberate status code here.
The map is ordered most-specific-first and resolved with ``isinstance`` so new
subclasses inherit their family's status until given their own row; a test
walks the whole hierarchy to keep the map total.
"""

from __future__ import annotations

from repro.core.errors import (
    CorruptionError,
    DatasetError,
    DrainerError,
    IndexError_,
    InvalidParameterError,
    NotFittedError,
    OverloadedError,
    PartialResultError,
    ReadOnlyIndexError,
    ReproError,
    SearchError,
    ShardError,
    ShutdownError,
    StorageFullError,
    UnknownIndexError,
    ValidationError,
    WalError,
)

#: Ordered (error type, HTTP status) pairs, most specific first.  ``isinstance``
#: resolution means order matters wherever hierarchies nest: ``ValidationError``
#: (a client mistake, 400) must precede its bases ``SearchError`` and
#: ``IndexError_``; ``CorruptionError``/``WalError`` (server-side damage, 500)
#: must precede ``IndexError_`` (409).
STATUS_MAP: "tuple[tuple[type[ReproError], int], ...]" = (
    (ValidationError, 400),       # malformed query/body values
    (InvalidParameterError, 400), # bad request parameters (k, timeout_s, ...)
    (DatasetError, 400),          # malformed series payloads
    (UnknownIndexError, 404),     # no such index
    (ReadOnlyIndexError, 409),    # write against a static snapshot
    (NotFittedError, 409),        # component not ready to serve
    (CorruptionError, 500),       # stored data failed verification
    (WalError, 500),              # unreadable write-ahead log
    (ShardError, 500),            # a shard failed after retries
    (PartialResultError, 503),    # coverage below the degraded policy's floor
    (SearchError, 400),           # query cannot be answered as asked
    (IndexError_, 409),           # other index-state conflicts
    (OverloadedError, 503),       # backlog bound hit: shed load, Retry-After
    (DrainerError, 500),          # batch drainer died; queue restarted it
    (ShutdownError, 503),         # server is draining
    (StorageFullError, 507),      # volume out of space; state is old-or-new
    (ReproError, 500),            # any future library error: fail safe
)


def status_for(error: BaseException) -> int:
    """HTTP status for ``error``: first ``isinstance`` match in the map.

    Non-library exceptions map to 500 — they indicate a server bug, not a
    client mistake, and the handler logs them as such.
    """
    for error_type, status in STATUS_MAP:
        if isinstance(error, error_type):
            return status
    return 500


def error_payload(error: BaseException) -> dict:
    """JSON body describing ``error`` for the client.

    The concrete class name travels in the payload so clients can branch on
    the taxonomy (e.g. retry on ``ShutdownError``) without parsing messages.
    """
    return {
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "status": status_for(error),
        }
    }
