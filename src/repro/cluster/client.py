"""HTTP client for one shard worker: the remote half of the scatter.

:class:`RemoteShardClient` speaks the worker-mode RPC routes of
:mod:`repro.serve` (``/{index}/shard_knn``, ``shard_knn_batch``,
``shard_probe``, ``/readyz``) over plain ``http.client`` — one short-lived
connection per call, so a worker restart (new process, new ephemeral port)
needs no connection-state repair: the next call simply resolves the new
endpoint.

Failure translation mirrors the in-process shard boundary:

* transport failures (refused, reset, timeout — what a ``kill -9``'d worker
  produces) raise as-is; the scatter's retry loop classifies them transient,
* a worker answering with a typed ``CorruptionError`` payload re-raises as
  :class:`~repro.core.errors.CorruptionError`, so the persistent-failure
  path (immediate quarantine, reload before readmission) fires exactly as it
  would in process,
* any other typed error payload becomes a transient
  :class:`~repro.core.errors.ShardError` naming the shard and the worker's
  verdict.

Queries and values travel as JSON numbers.  Python's ``repr`` emits the
shortest string that round-trips the float64 bit pattern and ``json`` parses
back to the same bits, so the coordinator's canonical merge over
RPC-returned values is bit-identical to the in-process merge.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

from repro.core.errors import CorruptionError, ShardError

#: Socket-level slack on top of the engine's search budget: a worker that
#: answers exactly at its deadline still needs transport time to deliver.
_TRANSPORT_GRACE_S = 0.25


class RemoteShardClient:
    """Per-shard RPC client; the engine-side of one cluster shard.

    ``resolve`` is a zero-argument callable returning the worker's current
    ``(host, port)`` or ``None`` — normally the supervisor's endpoint
    registry, so a restarted worker is re-resolved on the next call without
    any coordination.
    """

    def __init__(self, shard: int, resolve, *, index_name: str = "shard",
                 default_timeout_s: float = 30.0) -> None:
        self.shard = int(shard)
        self._resolve = resolve
        self._index_name = index_name
        self._default_timeout_s = float(default_timeout_s)

    # ------------------------------------------------------------ transport

    def _request(self, method: str, path: str, body: "dict | None",
                 timeout_s: "float | None") -> "tuple[int, dict]":
        endpoint = self._resolve()
        if endpoint is None:
            raise ShardError(
                f"shard {self.shard} has no live worker endpoint "
                f"(worker down or restarting)")
        host, port = endpoint
        if timeout_s is None:
            timeout_s = self._default_timeout_s
        connection = HTTPConnection(host, port,
                                    timeout=timeout_s + _TRANSPORT_GRACE_S)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None \
                else None
            headers = {"Content-Type": "application/json"} \
                if payload is not None else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        finally:
            connection.close()
        try:
            decoded = json.loads(raw) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ShardError(
                f"shard {self.shard} worker sent an unparseable response "
                f"({error})") from None
        return status, decoded

    def _rpc(self, action: str, body: dict,
             timeout_s: "float | None") -> dict:
        status, payload = self._request(
            "POST", f"/{self._index_name}/{action}", body, timeout_s)
        if status == 200:
            return payload
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        error_type = error.get("type", "HTTPError")
        message = error.get("message", f"HTTP {status}")
        if error_type == "CorruptionError":
            # Persistent: the worker's snapshot is damaged.  Re-raising the
            # same type routes the coordinator into immediate quarantine +
            # reload-before-readmission, exactly like an in-process shard.
            raise CorruptionError(
                f"shard {self.shard} worker: {message}")
        raise ShardError(
            f"shard {self.shard} worker answered {status} "
            f"({error_type}): {message}")

    # ----------------------------------------------------------------- RPCs

    def knn_once(self, query, k: int, timeout_s: "float | None",
                 threshold: "float | None") -> dict:
        """One scatter attempt: shard-local ids, values, squared, stats."""
        return self._rpc("shard_knn", {
            "query": [float(value) for value in query],
            "k": int(k),
            "timeout_s": timeout_s,
            "threshold": threshold,
        }, timeout_s)

    def knn_batch_once(self, matrix, k: int,
                       timeout_s: "float | None") -> dict:
        """One batched scatter attempt over all queries at once."""
        return self._rpc("shard_knn_batch", {
            "queries": [[float(value) for value in row] for row in matrix],
            "k": int(k),
            "timeout_s": timeout_s,
        }, timeout_s)

    def probe(self, timeout_s: "float | None" = None) -> dict:
        """The readmission probe: a real shard-local 1-NN on the worker."""
        return self._rpc("shard_probe", {}, timeout_s)

    def ready(self, timeout_s: "float | None" = None) -> bool:
        """``GET /readyz`` — ``True`` iff the worker answers 200."""
        try:
            status, _ = self._request("GET", "/readyz", None, timeout_s)
        except (OSError, ShardError):
            return False
        return status == 200
