"""Process-isolated shard serving: supervisor, workers, and coordinator.

The in-process :class:`~repro.index.sharded.ShardedIndex` isolates shard
*failures*; this package isolates shard *processes*.  Each shard runs in
its own supervised child (``python -m repro.cluster.worker``) serving its
snapshot over localhost RPC, so a segfault, an OOM kill, or a ``kill -9``
takes down one shard's address space and nothing else — the coordinator
answers degraded (or retries) through the exact fault paths already pinned
for in-process shard failures, and the supervisor restarts the worker with
deterministic capped-exponential backoff, a crash-loop breaker, and
heartbeat-based hang detection.

* :class:`ClusterIndex` — the coordinator: a ``ShardedIndex`` whose attempt
  seams speak RPC; bit-identical answers, inherited degradation contract.
* :class:`RemoteShardClient` — per-shard HTTP client with the in-process
  failure taxonomy (transport → transient, ``CorruptionError`` payloads →
  persistent).
* :class:`ShardSupervisor` — spawn/heartbeat/restart/breaker state machine;
  policy knobs live on :class:`~repro.index.shard_health.SupervisorPolicy`.
"""

from repro.cluster.client import RemoteShardClient
from repro.cluster.cluster_index import ClusterIndex
from repro.cluster.supervisor import ShardSupervisor
from repro.index.shard_health import CrashLoopBreaker, SupervisorPolicy

__all__ = [
    "ClusterIndex",
    "CrashLoopBreaker",
    "RemoteShardClient",
    "ShardSupervisor",
    "SupervisorPolicy",
]
