"""Process supervision for shard workers: spawn, heartbeat, restart, trip.

:class:`ShardSupervisor` owns one child process per shard.  Its monitor
thread runs a single state machine per worker:

* **spawn** — ``python -m repro.cluster.worker`` with the shard's snapshot
  directory; the worker binds an ephemeral port and publishes
  ``{pid, host, port}`` to an endpoint file (written atomically), which the
  supervisor polls and only trusts when the recorded pid matches the live
  child — a stale file from a previous incarnation is never believed.
* **heartbeat** — while the child runs, ``GET /readyz`` every
  ``heartbeat_interval_s``.  Transport failures count as misses;
  ``heartbeat_misses`` consecutive misses declare the worker *hung* and it
  is SIGKILLed — from there the crash path below takes over, so a hang and
  a crash converge on the same recovery.
* **crash** — a nonzero (or signal) exit is a crash: the restart is
  scheduled after :meth:`SupervisorPolicy.restart_delay_s` (deterministic
  capped-exponential backoff) and the crash feeds the shard's
  :class:`~repro.index.shard_health.CrashLoopBreaker`.  Exit 0 is a
  deliberate stop (the worker drains on SIGTERM and exits 0), restarted
  without charging the breaker or the ladder.
* **crash loop** — the breaker tripping fires ``on_crash_loop`` (the
  cluster index quarantines the shard on its health board) and restarts
  switch to half-open pacing: one attempt per ``cooloff_s`` until a probe
  readmits the shard, which resets both the breaker and the backoff ladder
  via :meth:`note_recovered`.

The supervisor never touches answer payloads — it only keeps processes
alive and publishes endpoints; all answer-path failure handling stays in the
scatter-gather layer.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

from repro.core.errors import IndexError_, ShardError
from repro.index.shard_health import SupervisorPolicy
from repro.obs.metrics import get_registry

_REGISTRY = get_registry()
_SUPERVISOR_RESTARTS = _REGISTRY.counter(
    "repro_supervisor_restarts_total",
    "Shard worker processes respawned by the supervisor.",
    labelnames=("shard",))
_SUPERVISOR_EXITS = _REGISTRY.counter(
    "repro_supervisor_worker_exits_total",
    "Shard worker exits observed, by kind (clean = exit 0, crash = "
    "nonzero or signal, hung = killed after missed heartbeats).",
    labelnames=("shard", "kind"))
_SUPERVISOR_TRIPS = _REGISTRY.counter(
    "repro_supervisor_crash_loop_trips_total",
    "Crash-loop breaker trips (rapid repeated crashes of one shard).",
    labelnames=("shard",))
_SUPERVISOR_HEARTBEAT_SECONDS = _REGISTRY.histogram(
    "repro_supervisor_heartbeat_seconds",
    "Latency of successful worker heartbeat probes.",
    labelnames=("shard",))


class _Worker:
    """Mutable supervision record of one shard's child process."""

    __slots__ = ("shard", "snapshot_dir", "endpoint_file", "process",
                 "endpoint", "restart_count", "restart_at", "breaker",
                 "misses", "next_heartbeat", "spawned_once")

    def __init__(self, shard: int, snapshot_dir: Path,
                 endpoint_file: Path, breaker) -> None:
        self.shard = shard
        self.snapshot_dir = snapshot_dir
        self.endpoint_file = endpoint_file
        self.process: "subprocess.Popen | None" = None
        self.endpoint: "tuple[str, int] | None" = None
        self.restart_count = 0
        self.restart_at: "float | None" = None
        self.breaker = breaker
        self.misses = 0
        self.next_heartbeat = 0.0
        self.spawned_once = False


class ShardSupervisor:
    """Keep one worker process per shard alive (see the module docstring).

    ``on_crash_loop(shard, error)`` is called once per breaker trip — the
    cluster index uses it to quarantine the shard on its health board so
    queries skip it outright instead of paying connection-refused retries
    while the shard thrashes.
    """

    def __init__(self, path, shard_dirs: "list[Path]", *,
                 policy: "SupervisorPolicy | None" = None,
                 host: str = "127.0.0.1", index_name: str = "shard",
                 mmap: bool = True, verify: str = "lazy", max_k: int = 4096,
                 on_crash_loop=None) -> None:
        self.path = Path(path)
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.host = host
        self.index_name = index_name
        self._mmap = bool(mmap)
        self._verify = verify
        self._max_k = int(max_k)
        self._on_crash_loop = on_crash_loop
        self._endpoint_dir = self.path / ".workers"
        self._lock = threading.RLock()
        self._workers = [
            _Worker(index, Path(directory),
                    self._endpoint_dir / f"shard-{index:03d}.endpoint.json",
                    self._new_breaker())
            for index, directory in enumerate(shard_dirs)
        ]
        self._monitor: "threading.Thread | None" = None
        self._stop_event = threading.Event()
        self._stopping = False

    def _new_breaker(self):
        from repro.index.shard_health import CrashLoopBreaker

        return CrashLoopBreaker(self.policy.crash_loop_threshold,
                                self.policy.crash_loop_window_s)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "ShardSupervisor":
        """Spawn every worker and start the monitor thread (idempotent)."""
        os.makedirs(self._endpoint_dir, exist_ok=True)
        with self._lock:
            for worker in self._workers:
                if worker.process is None:
                    self._spawn(worker)
            if self._monitor is None or not self._monitor.is_alive():
                self._stop_event.clear()
                self._stopping = False
                self._monitor = threading.Thread(
                    target=self._monitor_loop, name="repro-cluster-supervisor",
                    daemon=True)
                self._monitor.start()
        return self

    def stop(self, drain_timeout_s: float = 5.0) -> None:
        """SIGTERM every worker (graceful drain), SIGKILL stragglers."""
        with self._lock:
            self._stopping = True
        self._stop_event.set()
        monitor = self._monitor
        if monitor is not None and monitor.is_alive():
            monitor.join(timeout=drain_timeout_s)
        with self._lock:
            processes = [worker.process for worker in self._workers
                         if worker.process is not None]
        for process in processes:
            try:
                process.terminate()
            except OSError:
                pass
        deadline = time.monotonic() + drain_timeout_s
        for process in processes:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5.0)
        with self._lock:
            for worker in self._workers:
                worker.process = None
                worker.endpoint = None

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- spawning

    def _spawn(self, worker: _Worker) -> None:
        try:
            worker.endpoint_file.unlink()
        except OSError:
            pass
        worker.endpoint = None
        worker.misses = 0
        worker.restart_at = None
        argv = [
            sys.executable, "-m", "repro.cluster.worker",
            "--snapshot-dir", str(worker.snapshot_dir),
            "--endpoint-file", str(worker.endpoint_file),
            "--shard", str(worker.shard),
            "--host", self.host,
            "--index-name", self.index_name,
            "--verify", self._verify,
            "--max-k", str(self._max_k),
        ]
        if not self._mmap:
            argv.append("--no-mmap")
        import repro

        src_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        worker.process = subprocess.Popen(
            argv, env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL, stdin=subprocess.DEVNULL)
        if worker.spawned_once:
            _SUPERVISOR_RESTARTS.labels(shard=str(worker.shard)).inc()
        worker.spawned_once = True

    # ------------------------------------------------------------ the loop

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(self.policy.heartbeat_interval_s):
            with self._lock:
                workers = list(self._workers)
                stopping = self._stopping
            if stopping:
                return
            now = time.monotonic()
            for worker in workers:
                try:
                    self._tick(worker, now)
                except Exception:  # noqa: BLE001 — supervision must survive
                    pass

    def _tick(self, worker: _Worker, now: float) -> None:
        with self._lock:
            if self._stopping:
                return
            process = worker.process
            if process is None:
                if worker.restart_at is not None and now >= worker.restart_at:
                    self._spawn(worker)
                return
            code = process.poll()
            if code is not None:
                self._on_exit(worker, code, now)
                return
            if worker.endpoint is None:
                worker.endpoint = self._read_endpoint(worker)
        # The heartbeat does network I/O — outside the lock, so endpoint
        # resolution for query threads never waits on a probe.
        if worker.endpoint is not None and now >= worker.next_heartbeat:
            self._heartbeat(worker)
            worker.next_heartbeat = (time.monotonic()
                                     + self.policy.heartbeat_interval_s)

    def _on_exit(self, worker: _Worker, code: int, now: float) -> None:
        worker.process = None
        worker.endpoint = None
        if code == 0:
            # A deliberate stop (SIGTERM drain): respawn without charging
            # the breaker or the backoff ladder.
            _SUPERVISOR_EXITS.labels(shard=str(worker.shard),
                                     kind="clean").inc()
            worker.restart_at = now
            return
        _SUPERVISOR_EXITS.labels(shard=str(worker.shard), kind="crash").inc()
        if worker.breaker.record_crash(now):
            _SUPERVISOR_TRIPS.labels(shard=str(worker.shard)).inc()
            if self._on_crash_loop is not None:
                self._on_crash_loop(worker.shard, ShardError(
                    f"shard {worker.shard} worker is crash-looping "
                    f"({self.policy.crash_loop_threshold} crashes within "
                    f"{self.policy.crash_loop_window_s}s); breaker tripped"))
        if worker.breaker.tripped:
            # Half-open: one attempt per cooloff until a probe readmission
            # resets the breaker via note_recovered.
            worker.restart_at = now + self.policy.cooloff_s
        else:
            worker.restart_at = now + self.policy.restart_delay_s(
                worker.restart_count, worker.shard)
        worker.restart_count += 1

    def _read_endpoint(self, worker: _Worker) -> "tuple[str, int] | None":
        try:
            payload = json.loads(worker.endpoint_file.read_text())
        except (OSError, ValueError):
            return None
        process = worker.process
        if process is None or payload.get("pid") != process.pid:
            return None  # a stale file from a previous incarnation
        try:
            return str(payload["host"]), int(payload["port"])
        except (KeyError, TypeError, ValueError):
            return None

    def _heartbeat(self, worker: _Worker) -> None:
        endpoint = worker.endpoint
        if endpoint is None:
            return
        host, port = endpoint
        started = time.perf_counter()
        try:
            connection = HTTPConnection(
                host, port, timeout=self.policy.heartbeat_timeout_s)
            try:
                connection.request("GET", "/readyz")
                connection.getresponse().read()
            finally:
                connection.close()
        except OSError:
            # Any HTTP answer (even 503 warming) proves liveness; only
            # transport failure is a miss.
            worker.misses += 1
            if worker.misses >= self.policy.heartbeat_misses:
                self._kill_hung(worker)
            return
        worker.misses = 0
        _SUPERVISOR_HEARTBEAT_SECONDS.labels(
            shard=str(worker.shard)).observe(time.perf_counter() - started)

    def _kill_hung(self, worker: _Worker) -> None:
        _SUPERVISOR_EXITS.labels(shard=str(worker.shard), kind="hung").inc()
        worker.misses = 0
        process = worker.process
        if process is not None:
            try:
                process.kill()  # the next tick classifies this as a crash
            except OSError:
                pass

    # ------------------------------------------------------------ interface

    def endpoint(self, shard: int) -> "tuple[str, int] | None":
        """The shard worker's current ``(host, port)``, or ``None`` if down."""
        with self._lock:
            worker = self._workers[shard]
            if worker.endpoint is None and worker.process is not None \
                    and worker.process.poll() is None:
                # Resolve eagerly so a query right after a (re)spawn does not
                # have to wait a full monitor tick.
                worker.endpoint = self._read_endpoint(worker)
            return worker.endpoint

    def note_recovered(self, shard: int) -> None:
        """A probe readmitted the shard: reset its breaker and ladder."""
        with self._lock:
            worker = self._workers[shard]
            worker.breaker.reset()
            worker.restart_count = 0

    def restart_count(self, shard: int) -> int:
        with self._lock:
            return self._workers[shard].restart_count

    def wait_ready(self, timeout_s: float = 30.0) -> None:
        """Block until every worker answers ``/readyz`` 200; typed on timeout."""
        deadline = time.monotonic() + timeout_s
        pending = set(range(len(self._workers)))
        while pending:
            for shard in sorted(pending):
                endpoint = self.endpoint(shard)
                if endpoint is not None and self._ready_once(endpoint):
                    pending.discard(shard)
            if not pending:
                return
            if time.monotonic() >= deadline:
                raise IndexError_(
                    f"cluster workers {sorted(pending)} did not become "
                    f"ready within {timeout_s}s")
            time.sleep(0.02)

    def _ready_once(self, endpoint: "tuple[str, int]") -> bool:
        host, port = endpoint
        try:
            connection = HTTPConnection(
                host, port, timeout=self.policy.heartbeat_timeout_s)
            try:
                connection.request("GET", "/readyz")
                return connection.getresponse().status == 200
            finally:
                connection.close()
        except OSError:
            return False

    def report(self) -> "list[dict]":
        """JSON-ready supervision snapshot, one record per shard."""
        with self._lock:
            return [
                {
                    "shard": worker.shard,
                    "pid": (worker.process.pid
                            if worker.process is not None else None),
                    "running": (worker.process is not None
                                and worker.process.poll() is None),
                    "endpoint": (list(worker.endpoint)
                                 if worker.endpoint is not None else None),
                    "restarts": worker.restart_count,
                    "breaker_tripped": worker.breaker.tripped,
                }
                for worker in self._workers
            ]
