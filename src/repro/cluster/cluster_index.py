"""Process-isolated sharded serving: the coordinator side.

:class:`ClusterIndex` is a :class:`~repro.index.sharded.ShardedIndex` whose
shard engines live in *separate supervised processes* instead of in-process
threads.  Only the three attempt/probe seams change — everything above them
(scatter orchestration, retry/backoff, the health board, quarantine, the
canonical candidate-union merge, degraded-answer policy, metrics, tracing)
is inherited unchanged, which is the point: a worker process dying under
``kill -9`` surfaces as an ordinary transient shard failure and takes
exactly the code path a wedged in-process engine would.

Identity contract (inherited, now across a process boundary):

* **Healthy cluster** — answers are bit-identical to the in-process
  :class:`~repro.index.sharded.ShardedIndex` over the same snapshot, which
  is itself bit-identical to one unsharded index over the same rows.  The
  merge recomputes candidate distances from raw values on the coordinator;
  values travel as JSON numbers whose ``repr`` round-trips float64 exactly,
  so the recomputation sees the same bits it would in process.
* **Degraded cluster** — with ``degraded="allow"``, answers during a worker
  outage are bit-identical to an index over the surviving shards' rows,
  flagged ``partial=True`` with ``coverage < 1``.
* The cross-shard best-so-far is forwarded to workers as a *frozen*
  threshold snapshot per attempt.  A frozen bound is merely looser than the
  live heap, so it can only under-prune — admissible by the same argument
  as the in-process tandem heap.

Recovery loop: worker dies → connection failures are transients → the board
quarantines the shard → the supervisor restarts the process with backoff →
the inherited probe loop RPC-probes the worker → readmission resets the
supervisor's breaker and backoff ladder (:meth:`probe_shard`), and coverage
returns to 1.  The cluster is read-only: shard-local writes would desync
the coordinator's global id maps, so mutations must go through a writable
in-process index and a republished snapshot.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.core.errors import ReadOnlyIndexError
from repro.index.search import SearchStats, stats_from_payload
from repro.index.sharded import _SHARD_READMITS, ShardedIndex, _Shard
from repro.index.shard_health import SupervisorPolicy

from repro.cluster.client import RemoteShardClient
from repro.cluster.supervisor import ShardSupervisor


class ClusterIndex(ShardedIndex):
    """Scatter-gather over supervised per-shard worker processes.

    Construct with :meth:`launch`, which reads the sharded manifest, spawns
    one worker per shard under a :class:`~repro.cluster.supervisor
    .ShardSupervisor`, waits for readiness, and returns a read-only index
    whose ``knn`` / ``knn_batch`` match the in-process
    :class:`~repro.index.sharded.ShardedIndex` bit for bit.
    """

    def __init__(self, path, shards, *, supervisor: ShardSupervisor,
                 clients: "list[RemoteShardClient]",
                 probe_timeout_s: float = 2.0, **kwargs) -> None:
        kwargs["writable"] = False
        super().__init__(path, shards, **kwargs)
        self._supervisor = supervisor
        self._clients = clients
        self._probe_timeout_s = float(probe_timeout_s)

    # ---------------------------------------------------------------- launch

    @classmethod
    def launch(cls, path, *, degraded: str = "allow", retry=None, health=None,
               policy: "SupervisorPolicy | None" = None,
               host: str = "127.0.0.1", mmap: bool = True,
               verify: str = "lazy", gather_grace_s: float = 0.25,
               probe_timeout_s: float = 2.0,
               start_timeout_s: float = 30.0) -> "ClusterIndex":
        """Spawn one supervised worker per shard and attach to the cluster.

        Blocks until every worker answers ``/readyz`` (or raises a typed
        error after ``start_timeout_s``).  ``policy`` tunes supervision
        (restart backoff, heartbeats, the crash-loop breaker); ``retry`` /
        ``health`` tune the inherited answer-path fault handling.
        """
        path = Path(path)
        manifest = cls._read_manifest(path)
        shards = []
        for index, entry in enumerate(manifest["shards"]):
            globals_map = cls._globals_from_manifest(entry["globals"])
            shards.append(_Shard(index, path / entry["dir"], globals_map,
                                 int(entry.get("num_surviving",
                                               globals_map.shape[0]))))
        index_name = "shard"
        supervisor = ShardSupervisor(
            path, [shard.path for shard in shards], policy=policy, host=host,
            index_name=index_name, mmap=mmap, verify=verify)
        clients = [
            RemoteShardClient(shard.index,
                              (lambda i=shard.index: supervisor.endpoint(i)),
                              index_name=index_name)
            for shard in shards
        ]
        cluster = cls(path, shards, supervisor=supervisor, clients=clients,
                      probe_timeout_s=probe_timeout_s,
                      series_length=int(manifest["series_length"]),
                      next_global=int(manifest["next_global"]),
                      index_type=manifest.get("index_type", "sofa"),
                      degraded=degraded, retry=retry, health=health,
                      verify=verify, mmap=mmap,
                      gather_grace_s=gather_grace_s)
        supervisor._on_crash_loop = cluster._on_crash_loop
        supervisor.start()
        try:
            supervisor.wait_ready(start_timeout_s)
        except BaseException:
            supervisor.stop()
            raise
        return cluster

    @property
    def supervisor(self) -> ShardSupervisor:
        return self._supervisor

    def _on_crash_loop(self, shard: int, error: BaseException) -> None:
        """Breaker tripped: quarantine now so queries skip the thrashing
        shard instead of paying connection-refused retries each scatter."""
        if self._closed:
            return
        self._board.record_persistent(shard, error)
        self._note_quarantine(shard)

    # ------------------------------------------------------ remote attempts

    def _slice_timeout(self, shard: _Shard,
                       slice_deadline: "float | None") -> "float | None":
        if slice_deadline is None:
            return None
        timeout_s = slice_deadline - time.monotonic()
        if timeout_s <= 0:
            raise TimeoutError(
                f"shard {shard.index}: deadline slice expired")
        return timeout_s

    def _attempt_knn(self, shard: _Shard, slice_deadline: "float | None",
                     query: np.ndarray, k: int, global_best,
                     offered: "list[bool]"):
        """One remote attempt: RPC the worker, translate ids, offer bounds.

        The shared best-so-far is snapshotted into the request (``None``
        while still infinite); the worker holds it frozen for the whole
        search.  Results are offered back to the live heap so shards that
        answer later, and retries, start from a tighter bound.
        """
        timeout_s = self._slice_timeout(shard, slice_deadline)
        threshold = float(global_best.threshold)
        payload = self._clients[shard.index].knn_once(
            query, k, timeout_s,
            threshold if np.isfinite(threshold) else None)
        surviving = int(payload["surviving"])
        local_ids = np.asarray(payload["ids"], dtype=np.int64)
        values = np.asarray(payload["values"], dtype=np.float64).reshape(
            local_ids.shape[0], self._series_length)
        stats = stats_from_payload(payload["stats"])
        global_ids = shard.globals_map[local_ids]
        if local_ids.size:
            offered[shard.index] = True
            global_best.offer_block(
                np.asarray(payload["squared"], dtype=np.float64), global_ids)
        # Keep the coordinator's surviving-row bookkeeping exact even while
        # the engine lives elsewhere: num_surviving sums these hints.
        shard.num_surviving_hint = surviving
        return (global_ids, values), stats, surviving

    def _attempt_batch(self, shard: _Shard, slice_deadline: "float | None",
                       matrix: np.ndarray, k: int):
        timeout_s = self._slice_timeout(shard, slice_deadline)
        payload = self._clients[shard.index].knn_batch_once(
            matrix, k, timeout_s)
        surviving = int(payload["surviving"])
        globals_map = shard.globals_map
        results = []
        for entry in payload["results"]:
            local_ids = np.asarray(entry["ids"], dtype=np.int64)
            values = np.asarray(entry["values"], dtype=np.float64).reshape(
                local_ids.shape[0], self._series_length)
            results.append((globals_map[local_ids], values))
        stats = [stats_from_payload(entry) for entry in payload["stats"]]
        if len(results) != matrix.shape[0] or len(stats) != matrix.shape[0]:
            from repro.core.errors import ShardError

            raise ShardError(
                f"shard {shard.index} worker answered {len(results)} results "
                f"for {matrix.shape[0]} queries")
        shard.num_surviving_hint = surviving
        return results, stats, surviving

    # --------------------------------------------------------------- health

    def probe_shard(self, index: int) -> bool:
        """RPC-probe the shard's worker; readmit and reset backoff on pass.

        The worker answers ``shard_probe`` with a real shard-local 1-NN, so
        a readmission means the restarted process actually serves queries —
        the same standard the in-process probe applies.  Success also resets
        the supervisor's crash-loop breaker and restart ladder
        (:meth:`~repro.cluster.supervisor.ShardSupervisor.note_recovered`):
        the shard has proven itself healthy, so the next failure starts a
        fresh escalation instead of inheriting stale history.
        """
        try:
            self._clients[index].probe(timeout_s=self._probe_timeout_s)
        except Exception as error:  # noqa: BLE001 — probe failed, stay out
            self._board.record_transient(index, error)
            return False
        self._board.readmit(index)
        _SHARD_READMITS.labels(shard=str(index)).inc()
        self._supervisor.note_recovered(index)
        return True

    # ------------------------------------------------------------ lifecycle

    def save(self) -> "ClusterIndex":
        raise ReadOnlyIndexError(
            "a cluster index is a read-only serving view; snapshots are "
            "written by the in-process index that built them")

    def close(self) -> None:
        """Stop the probe loop and scatter pool, then the worker fleet."""
        super().close()
        self._supervisor.stop()
