"""Shard worker entrypoint: ``python -m repro.cluster.worker``.

One worker serves exactly one shard snapshot.  It loads the snapshot with
the same :meth:`~repro.index.dynamic.DynamicIndex.load` call (same ``mmap``
and ``verify`` knobs) the in-process sharded path uses — identical engine,
identical answers — and exposes it through a worker-mode
:mod:`repro.serve` server: the ``shard_knn`` / ``shard_knn_batch`` /
``shard_probe`` RPC routes plus ``/readyz`` for the supervisor's
heartbeats, with public write routes refused (shard-local writes would
desync the coordinator's global id maps).

Startup handshake: the worker binds an ephemeral port (``port=0``), then
publishes ``{pid, host, port, shard}`` to ``--endpoint-file`` via a
temp-sibling + ``os.replace`` so the supervisor never reads a torn file,
and the recorded pid lets it reject a stale file from a previous
incarnation.

Exit discipline — the supervisor classifies by exit code:

* SIGTERM / SIGINT → drain in-flight requests, exit **0** (a deliberate
  stop; restarted without charging the crash-loop breaker),
* a load failure or crash → traceback on stderr, exit **1** (a crash; the
  breaker and restart backoff apply),
* SIGKILL → no handler runs, the supervisor sees the signal death directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

from repro.index.dynamic import DynamicIndex
from repro.serve.app import SearchApp
from repro.serve.config import ServeConfig
from repro.serve.routes import IndexServer


def _write_endpoint_file(path: Path, payload: dict) -> None:
    # Plain os-level temp + replace, deliberately NOT the fsio seam: fault
    # injection sweeping durability effects must not break the supervision
    # handshake, and the endpoint file carries no durable state.
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp = tempfile.mkstemp(prefix=path.name + ".",
                                    dir=str(path.parent))
    try:
        with os.fdopen(handle, "w") as stream:
            json.dump(payload, stream)
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cluster.worker",
        description="Serve one shard snapshot as a supervised worker process.")
    parser.add_argument("--snapshot-dir", required=True,
                        help="the shard's snapshot directory")
    parser.add_argument("--endpoint-file", required=True,
                        help="where to publish {pid, host, port} once bound")
    parser.add_argument("--shard", type=int, default=0,
                        help="shard number (recorded in the endpoint file)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--index-name", default="shard")
    parser.add_argument("--mmap", action=argparse.BooleanOptionalAction,
                        default=True)
    parser.add_argument("--verify", default="lazy",
                        choices=("eager", "lazy", "off"))
    parser.add_argument("--max-k", type=int, default=4096)
    options = parser.parse_args(argv)

    snapshot_dir = Path(options.snapshot_dir)
    engine = DynamicIndex.load(snapshot_dir, mmap=options.mmap,
                               verify=options.verify)
    config = ServeConfig(host=options.host, port=0, worker_mode=True,
                         batching=False, max_k=options.max_k)
    app = SearchApp(config)
    app.add_index(options.index_name, engine, path=snapshot_dir)
    server = IndexServer(app)
    triggered = server.install_signal_handlers()
    server.start()
    try:
        _write_endpoint_file(Path(options.endpoint_file), {
            "pid": os.getpid(),
            "host": server.host,
            "port": server.port,
            "shard": options.shard,
        })
        triggered.wait()
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
