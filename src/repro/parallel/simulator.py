"""Virtual-core cost model used by the scaling experiments.

The paper measures index-construction and query times on a 36-core server with
9, 18 and 36 worker threads.  CPython threads cannot demonstrate that scaling,
so the library separates *what work is done* from *how long it would take on p
cores*: algorithms report the per-task costs they actually measured (seconds of
single-threaded work per chunk, per subtree, or per priority-queue leaf), and
this module turns a list of task costs into a simulated parallel makespan.

The model is deliberately simple and deterministic:

* tasks are assigned to workers greedily, longest processing time first (LPT),
  which is how MESSI's work stealing behaves in the limit;
* each synchronization point adds ``sync_overhead`` seconds per worker, so
  adding workers eventually stops paying off — the effect visible in Figure 7
  where 36 cores can be slower than 18 for index construction;
* an optional serial fraction models work that cannot be parallelised
  (Amdahl's law).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import InvalidParameterError

#: Default synchronization overhead per worker per barrier, in seconds.
DEFAULT_SYNC_OVERHEAD = 2e-5


@dataclass
class SimulatedSchedule:
    """Result of scheduling a list of task costs onto virtual workers."""

    num_workers: int
    makespan: float
    worker_loads: np.ndarray
    serial_time: float
    sync_overhead: float

    @property
    def total_time(self) -> float:
        """Simulated wall-clock time: serial part + parallel makespan + sync."""
        return self.serial_time + self.makespan + self.sync_overhead

    @property
    def total_work(self) -> float:
        """Sum of all task costs (the single-core time of the parallel part)."""
        return float(self.worker_loads.sum())

    @property
    def speedup(self) -> float:
        """Speed-up of the simulated schedule over one worker."""
        single = self.serial_time + self.total_work + self.sync_overhead / max(self.num_workers, 1)
        return single / self.total_time if self.total_time > 0 else 1.0


def schedule_tasks(task_costs: "np.ndarray | list[float]", num_workers: int,
                   serial_time: float = 0.0,
                   sync_overhead: float = DEFAULT_SYNC_OVERHEAD,
                   num_barriers: int = 1) -> SimulatedSchedule:
    """Assign task costs to virtual workers and return the simulated schedule.

    Parameters
    ----------
    task_costs:
        Measured single-threaded cost of each independent task, in seconds.
    num_workers:
        Number of virtual cores.
    serial_time:
        Time of the non-parallelisable portion (Amdahl's serial fraction).
    sync_overhead:
        Per-worker cost of one synchronization barrier; the total overhead is
        ``num_barriers * sync_overhead * num_workers`` to reflect that more
        workers mean more cache-line and lock traffic.
    num_barriers:
        Number of synchronization points in the parallel phase.
    """
    if num_workers < 1:
        raise InvalidParameterError(f"num_workers must be >= 1, got {num_workers}")
    costs = np.asarray(task_costs, dtype=np.float64)
    if costs.ndim != 1:
        raise InvalidParameterError("task_costs must be a flat list of costs")
    if (costs < 0).any():
        raise InvalidParameterError("task costs must be non-negative")

    loads = np.zeros(num_workers, dtype=np.float64)
    # Longest processing time first: sort descending, always give the next
    # task to the least-loaded worker.
    for cost in np.sort(costs)[::-1]:
        loads[np.argmin(loads)] += cost
    overhead = num_barriers * sync_overhead * num_workers
    return SimulatedSchedule(
        num_workers=num_workers,
        makespan=float(loads.max(initial=0.0)),
        worker_loads=loads,
        serial_time=float(serial_time),
        sync_overhead=float(overhead),
    )


def assert_single_worker_replay(task_costs: "np.ndarray | list[float]",
                                serial_time: float, wall_time: float,
                                rtol: float = 0.5, atol: float = 0.05) -> float:
    """Check that the simulator's 1-worker replay matches a measured wall clock.

    At ``num_workers=1`` the simulated makespan is simply the sum of the
    recorded per-task costs plus the serial part, so a build whose tasks were
    timed faithfully must have a wall clock close to it.  This is the sanity
    anchor of the Figure-7 replay: if the per-item timings drifted away from
    what the build actually spent (lost work, double counting), every simulated
    core count would inherit the error.

    Returns the simulated 1-worker time.  Raises ``AssertionError`` when the
    two disagree by more than ``atol + rtol * max(wall_time, simulated)``
    (the defaults absorb scheduling jitter and the small amount of
    orchestration — buffer grouping, directory assembly — that is not part of
    any recorded task).
    """
    if wall_time < 0:
        raise InvalidParameterError(f"wall_time must be >= 0, got {wall_time}")
    schedule = schedule_tasks(task_costs, num_workers=1, serial_time=serial_time,
                              sync_overhead=0.0)
    simulated = schedule.total_time
    if abs(simulated - wall_time) > atol + rtol * max(wall_time, simulated):
        raise AssertionError(
            f"simulated 1-worker makespan {simulated:.4f}s disagrees with the "
            f"measured wall clock {wall_time:.4f}s beyond rtol={rtol}, atol={atol}"
        )
    return simulated


@dataclass
class PhaseTiming:
    """Timing of one named phase of a larger simulated computation."""

    name: str
    schedule: SimulatedSchedule

    @property
    def time(self) -> float:
        return self.schedule.total_time


@dataclass
class SimulatedRun:
    """A multi-phase simulated execution (e.g. learn bins → transform → build tree)."""

    num_workers: int
    phases: list[PhaseTiming] = field(default_factory=list)

    def add_phase(self, name: str, task_costs, serial_time: float = 0.0,
                  sync_overhead: float = DEFAULT_SYNC_OVERHEAD,
                  num_barriers: int = 1) -> PhaseTiming:
        schedule = schedule_tasks(task_costs, self.num_workers, serial_time,
                                  sync_overhead, num_barriers)
        phase = PhaseTiming(name=name, schedule=schedule)
        self.phases.append(phase)
        return phase

    @property
    def total_time(self) -> float:
        return sum(phase.time for phase in self.phases)

    def phase_times(self) -> dict[str, float]:
        return {phase.name: phase.time for phase in self.phases}


def split_into_chunks(total_items: int, num_chunks: int) -> list[int]:
    """Sizes of near-equal chunks, used to partition work across workers."""
    if total_items < 0:
        raise InvalidParameterError("total_items must be non-negative")
    if num_chunks < 1:
        raise InvalidParameterError("num_chunks must be >= 1")
    base = total_items // num_chunks
    remainder = total_items % num_chunks
    return [base + (1 if i < remainder else 0) for i in range(num_chunks)]
