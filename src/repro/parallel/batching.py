"""Micro-batching request queue: coalesce concurrent calls into shared work.

The batched search engine (:class:`~repro.index.batch_search.BatchSearcher`)
is 4-6x faster *per query* than looping ``knn`` — but only when queries
actually arrive together.  A server handles each client on its own thread, so
without coalescing every request would pay the full per-query engine cost and
the batching win would evaporate at the serving boundary.

:class:`MicroBatchQueue` converts that concurrency back into batches: calling
threads :meth:`~MicroBatchQueue.submit` one item each and block; a single
drainer thread collects whatever is pending (waiting up to ``max_wait_s`` for
stragglers, never beyond ``max_batch`` items), hands the batch to the
``process_batch`` callable, and wakes every submitter with its own result.
Under load the queue naturally fills while the previous batch is being
processed, so the window wait only matters at low concurrency — the classic
micro-batching latency/throughput trade.

``process_batch(items)`` must return one outcome per item, in order; an
outcome that is an ``Exception`` instance is *delivered* to (and re-raised
in) its submitter only, so one malformed request cannot fail its batch
neighbours.  If ``process_batch`` itself raises, every submitter of that
batch receives the failure.  :meth:`~MicroBatchQueue.close` drains what is
already queued, then rejects later submissions with a typed
:class:`~repro.core.errors.ShutdownError`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Sequence

from repro.core.errors import (
    DrainerError,
    InvalidParameterError,
    OverloadedError,
    ShutdownError,
)
from repro.obs.metrics import get_registry

_REGISTRY = get_registry()
_QUEUE_WAIT = _REGISTRY.histogram(
    "repro_microbatch_queue_wait_seconds",
    "Time an item waited in the micro-batch queue before its batch started.",
    labelnames=("queue",))
_BATCHES = _REGISTRY.counter(
    "repro_microbatch_batches_total",
    "Batches handed to process_batch.", labelnames=("queue",))
_ITEMS = _REGISTRY.counter(
    "repro_microbatch_items_total",
    "Items coalesced into batches.", labelnames=("queue",))
_SHED = _REGISTRY.counter(
    "repro_microbatch_shed_total",
    "Submissions rejected because the backlog bound was reached.",
    labelnames=("queue",))
_DRAINER_RESTARTS = _REGISTRY.counter(
    "repro_microbatch_drainer_restarts_total",
    "Drainer deaths caught by the watchdog (each restarts the drainer).",
    labelnames=("queue",))


class _Pending:
    """One submitted item and the event its submitter blocks on."""

    __slots__ = ("item", "event", "outcome", "enqueued_at")

    def __init__(self, item: Any) -> None:
        self.item = item
        self.event = threading.Event()
        self.outcome: Any = None
        self.enqueued_at = time.monotonic()


class MicroBatchQueue:
    """Coalesce concurrent blocking submissions into shared batch calls.

    Parameters
    ----------
    process_batch:
        Called on the drainer thread with a non-empty list of items; must
        return a sequence of outcomes of the same length (an ``Exception``
        outcome is re-raised in that item's submitter).
    max_batch:
        Largest batch handed to ``process_batch`` in one call.
    max_wait_s:
        How long the drainer waits for more items after the first one
        arrives.  ``0`` disables the window: a batch is whatever is pending
        at wake-up (still > 1 under load, since items queue while the
        previous batch is processed).
    name:
        Thread name suffix, for debuggability.
    max_pending:
        Backlog bound: when this many items are already queued,
        :meth:`submit` sheds the new one with a typed
        :class:`~repro.core.errors.OverloadedError` instead of letting the
        queue (and every caller's latency) grow without limit.  ``None``
        (default) leaves the queue unbounded.
    """

    def __init__(self, process_batch: Callable[[list], Sequence],
                 max_batch: int = 64, max_wait_s: float = 0.002,
                 name: str = "microbatch",
                 max_pending: "int | None" = None) -> None:
        if max_batch < 1:
            raise InvalidParameterError(
                f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise InvalidParameterError(
                f"max_wait_s must be >= 0, got {max_wait_s}")
        if max_pending is not None and max_pending < 1:
            raise InvalidParameterError(
                f"max_pending must be >= 1 (or None), got {max_pending}")
        self._process_batch = process_batch
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.max_pending = None if max_pending is None else int(max_pending)
        self._name = f"repro-{name}"
        self._pending: list[_Pending] = []
        #: The batch currently being processed; tracked so a drainer death
        #: can fail its unfinished submitters too, not just the queued ones.
        self._active: list[_Pending] = []
        self._condition = threading.Condition()
        self._closed = False
        # Telemetry for /stats: how well concurrency coalesces into batches.
        self._batches = 0
        self._batched_items = 0
        self._largest_batch = 0
        self._restarts = 0
        # Registry children are resolved once per queue, not per observation.
        self._m_wait = _QUEUE_WAIT.labels(queue=name)
        self._m_batches = _BATCHES.labels(queue=name)
        self._m_items = _ITEMS.labels(queue=name)
        self._m_shed = _SHED.labels(queue=name)
        self._m_restarts = _DRAINER_RESTARTS.labels(queue=name)
        self._drainer = threading.Thread(target=self._drain_guarded,
                                         name=self._name, daemon=True)
        self._drainer.start()

    # -------------------------------------------------------------- client

    def submit(self, item: Any, timeout: "float | None" = None) -> Any:
        """Enqueue one item, block until its batch ran, return its outcome.

        Raises the item's ``Exception`` outcome if the processor returned
        one, the batch-wide failure if ``process_batch`` raised, a typed
        :class:`~repro.core.errors.ShutdownError` after :meth:`close`, and
        ``TimeoutError`` if no outcome arrived within ``timeout`` seconds.
        """
        pending = _Pending(item)
        with self._condition:
            if self._closed:
                raise ShutdownError(
                    "the micro-batch queue is closed; the server is "
                    "shutting down")
            if self.max_pending is not None \
                    and len(self._pending) >= self.max_pending:
                self._m_shed.inc()
                raise OverloadedError(
                    f"the batch queue is full ({len(self._pending)} pending, "
                    f"bound {self.max_pending}); retry shortly")
            self._pending.append(pending)
            self._condition.notify_all()
        if not pending.event.wait(timeout):
            raise TimeoutError(
                f"batched call produced no outcome within {timeout} seconds")
        if isinstance(pending.outcome, BaseException):
            raise pending.outcome
        return pending.outcome

    def close(self, timeout: "float | None" = 10.0) -> None:
        """Stop accepting submissions, drain what is queued, join the drainer."""
        with self._condition:
            if self._closed:
                return
            self._closed = True
            self._condition.notify_all()
        self._drainer.join(timeout)

    @property
    def pending_depth(self) -> int:
        """Items currently queued (the load-shedding signal)."""
        with self._condition:
            return len(self._pending)

    @property
    def drainer_alive(self) -> bool:
        """Whether the drainer thread is currently running.

        The readiness probe's signal: between a drainer death and the
        watchdog's restart (or after :meth:`close`) this is ``False``, so an
        orchestrator stops routing to a queue that cannot serve yet.
        """
        with self._condition:
            return self._drainer.is_alive() and not self._closed

    @property
    def stats(self) -> dict:
        """Coalescing counters: batches served, items, mean/largest batch."""
        with self._condition:
            batches, items = self._batches, self._batched_items
            largest = self._largest_batch
            restarts = self._restarts
            pending = len(self._pending)
        return {
            "batches": batches,
            "batched_queries": items,
            "mean_batch_size": (items / batches) if batches else 0.0,
            "largest_batch": largest,
            "pending": pending,
            "drainer_restarts": restarts,
        }

    # ------------------------------------------------------------- drainer

    def _collect(self) -> "list[_Pending] | None":
        """Wait for work, hold the window open, take up to ``max_batch``.

        Returns ``None`` when the queue is closed and fully drained — the
        drainer's exit signal.
        """
        with self._condition:
            while not self._pending and not self._closed:
                self._condition.wait()
            if not self._pending:
                return None  # closed and drained
            if self.max_wait_s > 0 and len(self._pending) < self.max_batch:
                deadline = time.monotonic() + self.max_wait_s
                while len(self._pending) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._condition.wait(remaining)
            batch = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            self._active = batch
            self._batches += 1
            self._batched_items += len(batch)
            self._largest_batch = max(self._largest_batch, len(batch))
        # Metric observation outside the lock: per-thread cells make it
        # cheap, and nothing below depends on queue state.
        now = time.monotonic()
        self._m_batches.inc()
        self._m_items.inc(len(batch))
        for pending in batch:
            self._m_wait.observe(max(0.0, now - pending.enqueued_at))
        return batch

    def _drain_guarded(self) -> None:
        """Run the drain loop under a watchdog.

        The per-batch handler below already contains processor failures, so
        the loop itself should never raise — but if it does (a bug, an
        injected fault, a ``MemoryError`` between statements), the queue must
        not silently wedge with submitters blocked forever.  The watchdog
        fails every pending item with a typed
        :class:`~repro.core.errors.DrainerError`, counts the death in
        ``stats()['drainer_restarts']``, and starts a fresh drainer so the
        queue keeps serving.
        """
        try:
            self._drain_forever()
        except BaseException as error:  # noqa: BLE001 — watchdog boundary
            self._on_drainer_death(error)

    def _on_drainer_death(self, error: BaseException) -> None:
        failure = DrainerError(
            f"the batch drainer died ({type(error).__name__}: {error}); "
            f"pending requests were failed and the drainer restarted")
        failure.__cause__ = error
        with self._condition:
            # The in-flight batch first (its items already left _pending; any
            # member whose event is set got its outcome before the death),
            # then everything still queued.
            doomed = [pending for pending in self._active
                      if not pending.event.is_set()]
            doomed.extend(self._pending)
            self._active = []
            self._pending = []
            self._restarts += 1
            self._m_restarts.inc()
            if not self._closed:
                self._drainer = threading.Thread(target=self._drain_guarded,
                                                 name=self._name, daemon=True)
                self._drainer.start()
        for pending in doomed:
            pending.outcome = failure
            pending.event.set()

    def _drain_forever(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            try:
                outcomes = self._process_batch([p.item for p in batch])
                if len(outcomes) != len(batch):
                    raise InvalidParameterError(
                        f"process_batch returned {len(outcomes)} outcomes "
                        f"for {len(batch)} items")
            except BaseException as error:  # noqa: BLE001 — delivered to submitters
                for pending in batch:
                    pending.outcome = error
                    pending.event.set()
                continue
            for pending, outcome in zip(batch, outcomes):
                pending.outcome = outcome
                pending.event.set()
