"""Parallel substrate: a real thread pool and a virtual-core cost simulator."""

from repro.parallel.pool import WorkerPool, chunk_indices
from repro.parallel.simulator import (
    DEFAULT_SYNC_OVERHEAD,
    PhaseTiming,
    SimulatedRun,
    SimulatedSchedule,
    schedule_tasks,
    split_into_chunks,
)

__all__ = [
    "DEFAULT_SYNC_OVERHEAD",
    "PhaseTiming",
    "SimulatedRun",
    "SimulatedSchedule",
    "WorkerPool",
    "chunk_indices",
    "schedule_tasks",
    "split_into_chunks",
]
