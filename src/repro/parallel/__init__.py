"""Parallel substrate: a real thread pool, a micro-batching request queue and
a virtual-core cost simulator."""

from repro.parallel.batching import MicroBatchQueue
from repro.parallel.pool import (
    BackgroundTask,
    WorkerPool,
    chunk_indices,
    default_num_workers,
    resolve_num_workers,
)
from repro.parallel.simulator import (
    DEFAULT_SYNC_OVERHEAD,
    PhaseTiming,
    SimulatedRun,
    SimulatedSchedule,
    assert_single_worker_replay,
    schedule_tasks,
    split_into_chunks,
)

__all__ = [
    "BackgroundTask",
    "DEFAULT_SYNC_OVERHEAD",
    "MicroBatchQueue",
    "PhaseTiming",
    "SimulatedRun",
    "SimulatedSchedule",
    "WorkerPool",
    "assert_single_worker_replay",
    "chunk_indices",
    "default_num_workers",
    "resolve_num_workers",
    "schedule_tasks",
    "split_into_chunks",
]
