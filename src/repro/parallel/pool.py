"""Thin thread-pool wrapper and chunking helpers.

MESSI and SOFA are multi-threaded systems; the reproduction keeps a real
thread-pool backend for code paths that release the GIL (NumPy kernels) and for
exercising the concurrency structure in tests, while the *scaling experiments*
use the deterministic simulator in :mod:`repro.parallel.simulator`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.core.errors import InvalidParameterError

T = TypeVar("T")
R = TypeVar("R")


def chunk_indices(total: int, num_chunks: int) -> list[np.ndarray]:
    """Split ``range(total)`` into ``num_chunks`` near-equal index arrays."""
    if total < 0:
        raise InvalidParameterError("total must be non-negative")
    if num_chunks < 1:
        raise InvalidParameterError("num_chunks must be >= 1")
    return [chunk for chunk in np.array_split(np.arange(total), num_chunks)]


class WorkerPool:
    """A small wrapper around :class:`ThreadPoolExecutor` with a map helper.

    ``num_workers=1`` short-circuits to an in-line loop so single-threaded runs
    are deterministic and easy to profile.
    """

    def __init__(self, num_workers: int = 1) -> None:
        if num_workers < 1:
            raise InvalidParameterError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers

    def map(self, function: Callable[[T], R], items: Sequence[T] | Iterable[T]) -> list[R]:
        """Apply ``function`` to every item, preserving order."""
        items = list(items)
        if self.num_workers == 1 or len(items) <= 1:
            return [function(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.num_workers) as executor:
            return list(executor.map(function, items))

    def starmap(self, function: Callable[..., R], argument_tuples: Iterable[tuple]) -> list[R]:
        """Apply ``function`` to every argument tuple, preserving order."""
        return self.map(lambda arguments: function(*arguments), list(argument_tuples))
