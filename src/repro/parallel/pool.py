"""Thin thread-pool wrapper and chunking helpers.

MESSI and SOFA are multi-threaded systems; the reproduction keeps a real
thread-pool backend for code paths that release the GIL (NumPy kernels) and for
exercising the concurrency structure in tests, while the *scaling experiments*
use the deterministic simulator in :mod:`repro.parallel.simulator`.
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.core.errors import InvalidParameterError

T = TypeVar("T")
R = TypeVar("R")
S = TypeVar("S")

#: Environment variable that sets the default worker count of every component
#: that accepts ``num_workers=None`` (index construction, CI matrix runs).
NUM_WORKERS_ENV = "REPRO_NUM_WORKERS"


def default_num_workers() -> int:
    """The process-wide default worker count (1 unless overridden by env).

    Reads :data:`NUM_WORKERS_ENV` at call time so tests and CI jobs can flip
    the default without touching call sites; an unset or empty variable means
    single-worker, and invalid values raise a typed error rather than being
    silently ignored.
    """
    raw = os.environ.get(NUM_WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise InvalidParameterError(
            f"{NUM_WORKERS_ENV} must be a positive integer, got '{raw}'"
        ) from None
    if value < 1:
        raise InvalidParameterError(
            f"{NUM_WORKERS_ENV} must be >= 1, got {value}"
        )
    return value


def resolve_num_workers(num_workers: "int | None") -> int:
    """Resolve an optional worker count: ``None`` falls back to the env default."""
    if num_workers is None:
        return default_num_workers()
    if num_workers < 1:
        raise InvalidParameterError(f"num_workers must be >= 1, got {num_workers}")
    return int(num_workers)


def chunk_indices(total: int, num_chunks: int) -> list[np.ndarray]:
    """Split ``range(total)`` into ``num_chunks`` near-equal index arrays."""
    if total < 0:
        raise InvalidParameterError("total must be non-negative")
    if num_chunks < 1:
        raise InvalidParameterError("num_chunks must be >= 1")
    return [chunk for chunk in np.array_split(np.arange(total), num_chunks)]


class BackgroundTask:
    """A single function running on a daemon thread, with a captured outcome.

    Used for maintenance work that should overlap with serving — e.g. the
    dynamic index's background compaction — where a full executor is
    overkill.  The wrapped function starts immediately; :meth:`wait` joins
    the thread and either returns the function's result or re-raises the
    exception it died with, so failures are never silently swallowed.
    """

    def __init__(self, function: Callable[[], R]) -> None:
        self._result: R | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, args=(function,),
                                        daemon=True)
        self._thread.start()

    def _run(self, function: Callable[[], R]) -> None:
        try:
            self._result = function()
        except BaseException as error:  # noqa: BLE001 — re-raised in wait()
            self._error = error

    def done(self) -> bool:
        """Whether the function has finished (successfully or not)."""
        return not self._thread.is_alive()

    def wait(self, timeout: "float | None" = None) -> R:
        """Join the task; return its result or re-raise its exception.

        A worker failure re-raises the *original* exception object, so its
        traceback still points into the worker's frames (the ``raise`` here
        merely appends the join site) — a failed background compaction reads
        like the synchronous call would.  Raises ``TimeoutError`` if the task
        is still running after ``timeout`` seconds, so a hung task cannot
        block shutdown forever; a timed-out wait may be retried.
        """
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("background task did not finish in time")
        if self._error is not None:
            raise self._error
        return self._result


class WorkerPool:
    """A small wrapper around :class:`ThreadPoolExecutor` with a map helper.

    ``num_workers=1`` short-circuits to an in-line loop so single-threaded runs
    are deterministic and easy to profile.  ``num_workers=None`` falls back to
    the process default (:func:`default_num_workers`, settable through the
    ``REPRO_NUM_WORKERS`` environment variable).

    ``persistent=True`` keeps one executor alive across calls instead of
    spawning threads per call.  Per-call thread startup is irrelevant for
    index builds (milliseconds against seconds) but dominates for the
    intra-query search engine, whose whole parallel section can be shorter
    than starting four threads; the persistent executor turns each call into
    a handful of queue operations.  The idle threads exit when the pool is
    garbage-collected (the executor's worker loop watches a weak reference),
    so abandoned searchers do not leak threads forever.
    """

    def __init__(self, num_workers: "int | None" = 1,
                 persistent: bool = False) -> None:
        self.num_workers = resolve_num_workers(num_workers)
        self.persistent = bool(persistent)
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        """The persistent executor, created once (locked against racing callers)."""
        executor = self._executor
        if executor is None:
            with self._executor_lock:
                executor = self._executor
                if executor is None:
                    executor = ThreadPoolExecutor(
                        max_workers=self.num_workers,
                        thread_name_prefix="repro-pool")
                    self._executor = executor
        return executor

    def _run_drains(self, drain: Callable[[], R], num_threads: int) -> list[R]:
        """Run ``num_threads`` copies of ``drain``, returning their results.

        The results are ordered by worker index (submission order), never by
        completion order, so callers can merge per-worker state
        deterministically.  Drain functions built by :meth:`map` /
        :meth:`map_shared` never raise (they record failures and return), so
        every future completes and a persistent executor is always left
        reusable — a dying worker can neither wedge the queue nor leak a
        pending future.
        """
        if self.persistent:
            executor = self._ensure_executor()
            futures = [executor.submit(drain) for _ in range(num_threads)]
            return [future.result() for future in futures]
        with ThreadPoolExecutor(max_workers=num_threads) as executor:
            futures = [executor.submit(drain) for _ in range(num_threads)]
            return [future.result() for future in futures]

    @staticmethod
    def _first_error(errors: "list[tuple[int, BaseException]]") -> BaseException:
        """The failure at the smallest item position — a deterministic pick
        when several workers die concurrently, independent of thread timing."""
        return min(errors, key=lambda pair: pair[0])[1]

    def map(self, function: Callable[[T], R], items: Sequence[T] | Iterable[T]) -> list[R]:
        """Apply ``function`` to every item, preserving order.

        Multi-worker runs drain a shared work queue: each of the
        ``num_workers`` threads repeatedly claims the next unclaimed item, so
        items are picked up in input order (submitting longest-first realizes
        a greedy LPT schedule) and a workload of thousands of small items pays
        the executor dispatch cost once per *worker*, not once per item.

        A worker raising mid-drain does not wedge the pool: the failure is
        recorded, the remaining unclaimed items are cancelled, every other
        worker exits at its next claim, and the exception at the smallest
        item position re-raises here (deterministic even when several workers
        die at once).  The executor stays reusable afterwards.
        """
        items = list(items)
        if self.num_workers == 1 or len(items) <= 1:
            return [function(item) for item in items]
        results: list[R] = [None] * len(items)  # type: ignore[list-item]
        # itertools.count.__next__ is a single C call, hence atomic under the
        # GIL — a lock-free claim ticket.
        tickets = itertools.count()
        cancel = threading.Event()
        errors: "list[tuple[int, BaseException]]" = []
        errors_lock = threading.Lock()

        def drain() -> None:
            while not cancel.is_set():
                position = next(tickets)
                if position >= len(items):
                    return
                try:
                    results[position] = function(items[position])
                except BaseException as error:  # noqa: BLE001 — re-raised below
                    with errors_lock:
                        errors.append((position, error))
                    cancel.set()
                    return

        self._run_drains(drain, min(self.num_workers, len(items)))
        if errors:
            raise self._first_error(errors)
        return results

    def map_shared(self, function: Callable[[T, S], None],
                   items: Sequence[T] | Iterable[T], *,
                   make_state: Callable[[], S],
                   chunk_size: int = 1) -> list[S]:
        """Chunked work-stealing drain over shared mutable state.

        Up to ``num_workers`` threads each create a private ``make_state()``
        and repeatedly claim the next unclaimed chunk of ``chunk_size``
        consecutive items, calling ``function(item, state)`` for each.
        Chunks are claimed in input order, so a work queue sorted
        most-promising-first (e.g. the exact searcher's lower-bound-ordered
        leaf queue) is drained in that order across workers.  Cross-worker
        communication happens through whatever shared structures ``function``
        closes over (e.g. a shared best-so-far heap); the pool only
        guarantees that every item is processed exactly once and that the
        returned per-worker states are ordered by worker index — a
        deterministic merge order independent of thread completion timing.

        Fault tolerance matches :meth:`map`: a raising worker cancels the
        remaining chunks, the deterministic first exception propagates, and
        the (persistent) executor survives for the next call.
        """
        if chunk_size < 1:
            raise InvalidParameterError(
                f"chunk_size must be >= 1, got {chunk_size}")
        items = list(items)
        if self.num_workers == 1 or len(items) <= 1:
            state = make_state()
            for item in items:
                function(item, state)
            return [state]
        num_chunks = -(-len(items) // chunk_size)
        tickets = itertools.count()
        cancel = threading.Event()
        errors: "list[tuple[int, BaseException]]" = []
        errors_lock = threading.Lock()

        def drain() -> S:
            state = make_state()
            while not cancel.is_set():
                chunk = next(tickets)
                if chunk >= num_chunks:
                    return state
                try:
                    for item in items[chunk * chunk_size:(chunk + 1) * chunk_size]:
                        function(item, state)
                except BaseException as error:  # noqa: BLE001 — re-raised below
                    with errors_lock:
                        errors.append((chunk, error))
                    cancel.set()
                    return state
            return state

        states = self._run_drains(drain, min(self.num_workers, num_chunks))
        if errors:
            raise self._first_error(errors)
        return states

    def starmap(self, function: Callable[..., R], argument_tuples: Iterable[tuple]) -> list[R]:
        """Apply ``function`` to every argument tuple, preserving order."""
        return self.map(lambda arguments: function(*arguments), list(argument_tuples))
