"""Piecewise Aggregate Approximation (PAA).

PAA divides a series of length ``n`` into ``l`` segments of (near-)equal
length and represents each segment by its mean value.  The PAA lower bound is

    d_PAA(A', B')² = (n / l) · Σ_i (a'_i − b'_i)²  ≤  d_ED(A, B)²

PAA is the numeric front end of SAX/iSAX and the baseline summarization whose
failure on high-frequency series motivates the paper (Figure 1).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.transforms.base import Summarization, _as_matrix


def paa_transform(series: np.ndarray, num_segments: int) -> np.ndarray:
    """PAA means of a single series (handles lengths not divisible by ``l``)."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise InvalidParameterError(f"expected a 1-D series, got shape {series.shape}")
    length = series.shape[0]
    if not 0 < num_segments <= length:
        raise InvalidParameterError(
            f"num_segments must be in [1, {length}], got {num_segments}"
        )
    if length % num_segments == 0:
        return series.reshape(num_segments, -1).mean(axis=1)
    # Uneven split: distribute indices as evenly as possible.
    boundaries = np.linspace(0, length, num_segments + 1).astype(int)
    return np.array([series[boundaries[i]:boundaries[i + 1]].mean()
                     for i in range(num_segments)])


def paa_transform_batch(matrix: np.ndarray, num_segments: int) -> np.ndarray:
    """PAA means of a batch of series (one per row)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise InvalidParameterError(f"expected a 2-D batch, got shape {matrix.shape}")
    length = matrix.shape[1]
    if not 0 < num_segments <= length:
        raise InvalidParameterError(
            f"num_segments must be in [1, {length}], got {num_segments}"
        )
    if length % num_segments == 0:
        return matrix.reshape(matrix.shape[0], num_segments, -1).mean(axis=2)
    boundaries = np.linspace(0, length, num_segments + 1).astype(int)
    return np.stack([matrix[:, boundaries[i]:boundaries[i + 1]].mean(axis=1)
                     for i in range(num_segments)], axis=1)


def paa_segment_lengths(series_length: int, num_segments: int) -> np.ndarray:
    """Length of every PAA segment (they differ by at most one point)."""
    boundaries = np.linspace(0, series_length, num_segments + 1).astype(int)
    return np.diff(boundaries).astype(np.float64)


class PAA(Summarization):
    """Piecewise Aggregate Approximation with its Euclidean lower bound."""

    def __init__(self, word_length: int = 16) -> None:
        if word_length < 1:
            raise InvalidParameterError(f"word_length must be positive, got {word_length}")
        self.word_length = word_length
        self.series_length: int | None = None
        self.segment_lengths: np.ndarray | None = None

    def fit(self, data) -> "PAA":
        matrix = _as_matrix(data)
        if self.word_length > matrix.shape[1]:
            raise InvalidParameterError(
                f"word_length {self.word_length} exceeds series length {matrix.shape[1]}"
            )
        self.series_length = matrix.shape[1]
        self.segment_lengths = paa_segment_lengths(self.series_length, self.word_length)
        return self

    def transform(self, series: np.ndarray) -> np.ndarray:
        return paa_transform(series, self.word_length)

    def transform_batch(self, data) -> np.ndarray:
        return paa_transform_batch(_as_matrix(data), self.word_length)

    def lower_bound(self, summary_a: np.ndarray, summary_b: np.ndarray) -> float:
        """PAA lower bound: per-segment mean gaps weighted by segment length.

        For segments of equal length this is the classic ``n / l`` scaling; the
        per-segment weighting keeps the bound valid when the series length is
        not a multiple of the word length.
        """
        if self.segment_lengths is None:
            raise InvalidParameterError("PAA must be fitted to know the series length")
        summary_a = np.asarray(summary_a, dtype=np.float64)
        summary_b = np.asarray(summary_b, dtype=np.float64)
        gaps = summary_a - summary_b
        return float(np.sqrt(np.sum(self.segment_lengths * gaps * gaps)))

    def reconstruct(self, summary: np.ndarray, length: int) -> np.ndarray:
        """Staircase reconstruction: each segment repeats its mean value."""
        summary = np.asarray(summary, dtype=np.float64)
        boundaries = np.linspace(0, length, summary.shape[0] + 1).astype(int)
        series = np.empty(length, dtype=np.float64)
        for i, value in enumerate(summary):
            series[boundaries[i]:boundaries[i + 1]] = value
        return series
