"""Piecewise Linear Approximation (PLA).

PLA represents each fixed-length segment of a series with the least-squares
line through its values, i.e. two numbers (intercept, slope) per segment.  It
is one of the numeric related-work summarizations compared by pruning power in
the study the paper cites; it is included here so the wider TLB comparison can
be reproduced.

The lower bound between two PLA summaries follows from the orthogonality of
the least-squares projection: on every segment the projections of the two
series onto the space of linear functions differ by at most their Euclidean
distance, so the sum over segments of the squared distance between the fitted
lines (evaluated at the sample points) lower-bounds the squared Euclidean
distance of the raw series.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.transforms.base import Summarization, _as_matrix


def _segment_bounds(length: int, num_segments: int) -> np.ndarray:
    return np.linspace(0, length, num_segments + 1).astype(int)


def pla_transform(series: np.ndarray, num_segments: int) -> np.ndarray:
    """Least-squares (intercept, slope) pairs per segment, flattened."""
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise InvalidParameterError(f"expected a 1-D series, got shape {series.shape}")
    length = series.shape[0]
    if not 0 < num_segments <= length:
        raise InvalidParameterError(
            f"num_segments must be in [1, {length}], got {num_segments}"
        )
    bounds = _segment_bounds(length, num_segments)
    summary = np.empty(2 * num_segments, dtype=np.float64)
    for i in range(num_segments):
        segment = series[bounds[i]:bounds[i + 1]]
        positions = np.arange(segment.shape[0], dtype=np.float64)
        if segment.shape[0] == 1:
            intercept, slope = segment[0], 0.0
        else:
            slope, intercept = np.polyfit(positions, segment, deg=1)
        summary[2 * i] = intercept
        summary[2 * i + 1] = slope
    return summary


class PLA(Summarization):
    """Piecewise Linear Approximation (related-work baseline)."""

    def __init__(self, num_segments: int = 8) -> None:
        if num_segments < 1:
            raise InvalidParameterError(f"num_segments must be positive, got {num_segments}")
        self.num_segments = num_segments
        self.word_length = 2 * num_segments
        self.series_length: int | None = None

    def fit(self, data) -> "PLA":
        matrix = _as_matrix(data)
        if self.num_segments > matrix.shape[1]:
            raise InvalidParameterError(
                f"num_segments {self.num_segments} exceeds series length {matrix.shape[1]}"
            )
        self.series_length = matrix.shape[1]
        return self

    def transform(self, series: np.ndarray) -> np.ndarray:
        return pla_transform(series, self.num_segments)

    def reconstruct(self, summary: np.ndarray, length: int) -> np.ndarray:
        summary = np.asarray(summary, dtype=np.float64)
        bounds = _segment_bounds(length, self.num_segments)
        series = np.empty(length, dtype=np.float64)
        for i in range(self.num_segments):
            intercept = summary[2 * i]
            slope = summary[2 * i + 1]
            positions = np.arange(bounds[i + 1] - bounds[i], dtype=np.float64)
            series[bounds[i]:bounds[i + 1]] = intercept + slope * positions
        return series

    def lower_bound(self, summary_a: np.ndarray, summary_b: np.ndarray) -> float:
        """Distance between the two piecewise-linear reconstructions.

        Because both reconstructions are orthogonal projections onto the same
        per-segment linear subspace, the distance between the projections
        lower-bounds the distance between the original series.
        """
        if self.series_length is None:
            raise InvalidParameterError("PLA must be fitted before use")
        reconstruction_a = self.reconstruct(summary_a, self.series_length)
        reconstruction_b = self.reconstruct(summary_b, self.series_length)
        return float(np.linalg.norm(reconstruction_a - reconstruction_b))
