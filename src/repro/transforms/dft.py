"""Discrete Fourier Transform features and the DFT lower bound.

The orthonormal real DFT (``numpy.fft.rfft`` with ``norm="ortho"``) satisfies
Parseval's identity

    d_ED(A, B)² = Σ_k w_k · |X_k(A) − X_k(B)|²

with per-coefficient weight ``w_k = 1`` for the DC coefficient (and the Nyquist
coefficient when the series length is even) and ``w_k = 2`` otherwise, because
the negative-frequency half of the spectrum mirrors the positive half.
Retaining a subset of the real/imaginary components can therefore only shrink
the sum, which yields the Rafiei–Mendelzon lower bound (Equation 1 in the
paper) and, after quantization, the SFA lower bound.

This module exposes the component layout used throughout the library: the
complex spectrum is flattened into alternating (real, imaginary) columns so a
"component" always means one real number with an attached weight.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.transforms.base import Summarization, _as_matrix


def rfft_components(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the orthonormal rfft of each row into real/imag component columns.

    Parameters
    ----------
    matrix:
        2-D array of series (one per row), length ``n``.

    Returns
    -------
    components:
        Array of shape ``(num_series, 2 * (n // 2 + 1))`` with columns ordered
        ``re(X_0), im(X_0), re(X_1), im(X_1), …``.
    weights:
        Per-column Parseval weights (1 for DC and Nyquist columns, 2 otherwise).
        The imaginary columns of DC and Nyquist are always zero; they keep
        weight 1 and are never selected by variance-based selection.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise InvalidParameterError(f"expected a 2-D batch, got shape {matrix.shape}")
    spectrum = np.fft.rfft(matrix, norm="ortho")
    num_coefficients = spectrum.shape[1]
    components = np.empty((matrix.shape[0], 2 * num_coefficients), dtype=np.float64)
    components[:, 0::2] = spectrum.real
    components[:, 1::2] = spectrum.imag
    weights = component_weights(matrix.shape[1])
    return components, weights


def component_weights(series_length: int) -> np.ndarray:
    """Parseval weights for the flattened component layout of ``rfft_components``."""
    if series_length < 1:
        raise InvalidParameterError(f"series_length must be positive, got {series_length}")
    num_coefficients = series_length // 2 + 1
    weights = np.full(2 * num_coefficients, 2.0)
    weights[0] = weights[1] = 1.0  # DC coefficient
    if series_length % 2 == 0:
        weights[-2] = weights[-1] = 1.0  # Nyquist coefficient
    return weights


def reconstruct_from_components(components: np.ndarray, selected: np.ndarray,
                                series_length: int) -> np.ndarray:
    """Inverse transform keeping only the selected flattened components.

    Used for the Figure 1 style comparison of PAA versus Fourier
    reconstructions.
    """
    components = np.asarray(components, dtype=np.float64)
    selected = np.asarray(selected, dtype=np.int64)
    num_coefficients = series_length // 2 + 1
    full = np.zeros(2 * num_coefficients, dtype=np.float64)
    full[selected] = components
    spectrum = full[0::2] + 1j * full[1::2]
    return np.fft.irfft(spectrum, n=series_length, norm="ortho")


class DFT(Summarization):
    """Truncated orthonormal DFT with the Rafiei–Mendelzon lower bound.

    Parameters
    ----------
    word_length:
        Number of retained real-valued components (real and imaginary parts
        count separately, matching the paper's "16 values = 8 coefficients").
    skip_dc:
        Drop the DC component before truncation.  The mean of a z-normalized
        series is zero, so this is lossless in the default pipeline.
    """

    def __init__(self, word_length: int = 16, skip_dc: bool = True) -> None:
        if word_length < 1:
            raise InvalidParameterError(f"word_length must be positive, got {word_length}")
        self.word_length = word_length
        self.skip_dc = skip_dc
        self.series_length: int | None = None
        self.selected_components: np.ndarray | None = None
        self.weights: np.ndarray | None = None

    def fit(self, data) -> "DFT":
        matrix = _as_matrix(data)
        self.series_length = matrix.shape[1]
        all_weights = component_weights(self.series_length)
        start = 2 if self.skip_dc else 0
        candidates = np.arange(start, all_weights.shape[0])
        if self.word_length > candidates.shape[0]:
            raise InvalidParameterError(
                f"word_length {self.word_length} exceeds the {candidates.shape[0]} "
                "available spectral components"
            )
        self.selected_components = candidates[:self.word_length]
        self.weights = all_weights[self.selected_components]
        return self

    def _require_fitted(self) -> None:
        if self.selected_components is None:
            raise InvalidParameterError("DFT must be fitted before use")

    def transform(self, series: np.ndarray) -> np.ndarray:
        self._require_fitted()
        series = np.asarray(series, dtype=np.float64)
        components, _ = rfft_components(series.reshape(1, -1))
        return components[0, self.selected_components]

    def transform_batch(self, data) -> np.ndarray:
        self._require_fitted()
        components, _ = rfft_components(_as_matrix(data))
        return components[:, self.selected_components]

    def lower_bound(self, summary_a: np.ndarray, summary_b: np.ndarray) -> float:
        self._require_fitted()
        summary_a = np.asarray(summary_a, dtype=np.float64)
        summary_b = np.asarray(summary_b, dtype=np.float64)
        diff = summary_a - summary_b
        return float(np.sqrt(np.sum(self.weights * diff * diff)))

    def reconstruct(self, summary: np.ndarray, length: int) -> np.ndarray:
        self._require_fitted()
        return reconstruct_from_components(summary, self.selected_components, length)
