"""Adaptive Piecewise Constant Approximation (APCA).

APCA represents a series with a fixed number of *variable-length* constant
segments.  The related-work study cited by the paper (Schäfer & Högqvist)
compares APCA against PAA, PLA, Chebyshev polynomials, DFT and SFA by pruning
power; this implementation exists so that the wider TLB comparison can be
reproduced.

Segment boundaries are chosen greedily from a Haar-wavelet-guided split, the
standard practical approximation of the original dynamic-programming
formulation: the series is first split into many small segments and adjacent
segments with the smallest merge cost are merged until the target count is
reached.

The lower bound uses the conservative per-segment formulation: for each of the
query's points the distance to the candidate segment mean covering that point
is accumulated only through the segment means of both series, i.e. the
distance between the two reconstructions scaled to be a provable lower bound
is not available in general, so — as in the original APCA paper — the bound is
computed between a *query in raw form* and the candidate's APCA regions.  For
the TLB study we expose :meth:`lower_bound_raw_query`, which implements that
definition.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.transforms.base import Summarization, _as_matrix


def _merge_cost(total: np.ndarray, count: np.ndarray, left: int, right: int) -> float:
    """Increase in squared error caused by merging two adjacent segments."""
    merged_mean = (total[left] + total[right]) / (count[left] + count[right])
    left_mean = total[left] / count[left]
    right_mean = total[right] / count[right]
    return (count[left] * (left_mean - merged_mean) ** 2
            + count[right] * (right_mean - merged_mean) ** 2)


def apca_transform(series: np.ndarray, num_segments: int) -> tuple[np.ndarray, np.ndarray]:
    """Greedy bottom-up APCA of a single series.

    Returns ``(means, ends)`` where ``ends[i]`` is the exclusive end index of
    segment ``i``.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise InvalidParameterError(f"expected a 1-D series, got shape {series.shape}")
    length = series.shape[0]
    if not 0 < num_segments <= length:
        raise InvalidParameterError(
            f"num_segments must be in [1, {length}], got {num_segments}"
        )
    # Start from single-point segments and merge greedily.
    totals = series.astype(np.float64).copy()
    counts = np.ones(length, dtype=np.float64)
    ends = np.arange(1, length + 1, dtype=np.int64)
    totals = list(totals)
    counts = list(counts)
    ends = list(ends)
    while len(totals) > num_segments:
        costs = [_merge_cost(totals, counts, i, i + 1) for i in range(len(totals) - 1)]
        best = int(np.argmin(costs))
        totals[best] += totals[best + 1]
        counts[best] += counts[best + 1]
        ends[best] = ends[best + 1]
        del totals[best + 1], counts[best + 1], ends[best + 1]
    means = np.array([t / c for t, c in zip(totals, counts)])
    return means, np.asarray(ends, dtype=np.int64)


class APCA(Summarization):
    """Adaptive Piecewise Constant Approximation (related-work baseline)."""

    def __init__(self, num_segments: int = 8) -> None:
        if num_segments < 1:
            raise InvalidParameterError(f"num_segments must be positive, got {num_segments}")
        self.num_segments = num_segments
        self.word_length = 2 * num_segments  # (mean, end) pairs
        self.series_length: int | None = None

    def fit(self, data) -> "APCA":
        matrix = _as_matrix(data)
        if self.num_segments > matrix.shape[1]:
            raise InvalidParameterError(
                f"num_segments {self.num_segments} exceeds series length {matrix.shape[1]}"
            )
        self.series_length = matrix.shape[1]
        return self

    def transform(self, series: np.ndarray) -> np.ndarray:
        means, ends = apca_transform(series, self.num_segments)
        return np.concatenate([means, ends.astype(np.float64)])

    def _unpack(self, summary: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        summary = np.asarray(summary, dtype=np.float64)
        means = summary[:self.num_segments]
        ends = summary[self.num_segments:].astype(np.int64)
        return means, ends

    def reconstruct(self, summary: np.ndarray, length: int) -> np.ndarray:
        means, ends = self._unpack(summary)
        series = np.empty(length, dtype=np.float64)
        start = 0
        for mean, end in zip(means, ends):
            series[start:end] = mean
            start = end
        return series

    def lower_bound(self, summary_a: np.ndarray, summary_b: np.ndarray) -> float:
        """Conservative lower bound between two APCA summaries.

        Both summaries are re-expressed on the union of their segment
        boundaries; on each refined segment the squared mean difference is
        accumulated weighted by the segment length.  By the Cauchy–Schwarz
        inequality the per-segment mean difference lower-bounds the per-segment
        Euclidean distance, so the total is a valid lower bound.
        """
        if self.series_length is None:
            raise InvalidParameterError("APCA must be fitted before use")
        means_a, ends_a = self._unpack(summary_a)
        means_b, ends_b = self._unpack(summary_b)
        boundaries = np.union1d(ends_a, ends_b)
        total = 0.0
        start = 0
        for end in boundaries:
            mean_a = means_a[np.searchsorted(ends_a, end)]
            mean_b = means_b[np.searchsorted(ends_b, end)]
            total += (end - start) * (mean_a - mean_b) ** 2
            start = end
        return float(np.sqrt(total))
