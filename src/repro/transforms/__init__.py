"""Summarization techniques: PAA, DFT, SAX/iSAX, SFA and related-work baselines."""

from repro.transforms.apca import APCA, apca_transform
from repro.transforms.base import Summarization, SymbolicSummarization
from repro.transforms.chebyshev import Chebyshev
from repro.transforms.dft import DFT, component_weights, rfft_components
from repro.transforms.paa import PAA, paa_transform, paa_transform_batch
from repro.transforms.pla import PLA, pla_transform
from repro.transforms.quantization import (
    BINNING_SCHEMES,
    HierarchicalBins,
    equi_depth_breakpoints,
    equi_width_breakpoints,
    gaussian_breakpoints,
)
from repro.transforms.sax import SAX, isax_mindist
from repro.transforms.sfa import SFA

__all__ = [
    "APCA",
    "BINNING_SCHEMES",
    "Chebyshev",
    "DFT",
    "HierarchicalBins",
    "PAA",
    "PLA",
    "SAX",
    "SFA",
    "Summarization",
    "SymbolicSummarization",
    "apca_transform",
    "component_weights",
    "equi_depth_breakpoints",
    "equi_width_breakpoints",
    "gaussian_breakpoints",
    "isax_mindist",
    "paa_transform",
    "paa_transform_batch",
    "pla_transform",
    "rfft_components",
]
