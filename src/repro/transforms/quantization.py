"""Breakpoint machinery shared by the symbolic summarizations.

Both iSAX and SFA map numeric summary values (PAA means, or selected Fourier
coefficients) to small integer symbols using a set of *breakpoints* per
dimension.  The tree index additionally needs *nested* quantization: a node
that uses only the first ``k`` bits of a symbol must describe a bin that is the
union of the bins of its two children (``k + 1`` bits).  All binning schemes in
this module are therefore built as a full grid of ``2**bits − 1`` breakpoints
from which the breakpoints of every coarser cardinality are strided subsets:

* ``gaussian``   — equal-depth bins of the standard Normal distribution
  (the classic SAX/iSAX scheme, Section IV-D),
* ``equi-depth`` — empirical quantiles learned from the data
  (the original SFA scheme of Schäfer & Högqvist),
* ``equi-width`` — equally wide bins spanning the observed value range
  (the scheme the paper advocates for SOFA, Section IV-E1).

Nesting holds for all three because the breakpoints of cardinality ``2**k``
are exactly the breakpoints of the full grid at positions that are multiples
of ``2**(bits−k)``.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.errors import InvalidParameterError, NotFittedError

#: Supported binning schemes.
BINNING_SCHEMES = ("gaussian", "equi-depth", "equi-width")


def gaussian_breakpoints(cardinality: int) -> np.ndarray:
    """Equal-depth breakpoints of N(0, 1) for a given alphabet cardinality.

    Returns ``cardinality − 1`` finite breakpoints (the outer bins extend to
    ±infinity implicitly).  These are the hard-coded tables used by SAX.
    """
    if cardinality < 2:
        raise InvalidParameterError(f"cardinality must be >= 2, got {cardinality}")
    probabilities = np.arange(1, cardinality) / cardinality
    return stats.norm.ppf(probabilities)


def equi_depth_breakpoints(values: np.ndarray, cardinality: int) -> np.ndarray:
    """Empirical-quantile breakpoints learned from ``values``."""
    if cardinality < 2:
        raise InvalidParameterError(f"cardinality must be >= 2, got {cardinality}")
    values = np.asarray(values, dtype=np.float64)
    probabilities = np.arange(1, cardinality) / cardinality
    return np.quantile(values, probabilities)


def equi_width_breakpoints(values: np.ndarray, cardinality: int) -> np.ndarray:
    """Equally wide breakpoints spanning the observed range of ``values``.

    When the observed range collapses to a point the breakpoints degenerate to
    that point, which keeps symbol assignment well defined (every value maps to
    the last bin at or above the point).
    """
    if cardinality < 2:
        raise InvalidParameterError(f"cardinality must be >= 2, got {cardinality}")
    values = np.asarray(values, dtype=np.float64)
    low = float(values.min())
    high = float(values.max())
    if high <= low:
        return np.full(cardinality - 1, low)
    return np.linspace(low, high, cardinality + 1)[1:-1]


class HierarchicalBins:
    """Per-dimension nested quantization bins with variable cardinality.

    Parameters
    ----------
    bits:
        Number of bits of the full-resolution symbols; the alphabet size is
        ``2**bits`` (8 bits / 256 symbols in the paper's default setup).
    scheme:
        One of :data:`BINNING_SCHEMES`.
    """

    def __init__(self, bits: int = 8, scheme: str = "equi-width") -> None:
        if bits < 1 or bits > 16:
            raise InvalidParameterError(f"bits must be in [1, 16], got {bits}")
        if scheme not in BINNING_SCHEMES:
            raise InvalidParameterError(
                f"unknown binning scheme '{scheme}'; expected one of {BINNING_SCHEMES}"
            )
        self.bits = bits
        self.scheme = scheme
        self._breakpoints: np.ndarray | None = None  # shape (dims, cardinality - 1)

    # ------------------------------------------------------------------ fit

    @property
    def cardinality(self) -> int:
        """Alphabet size of the full-resolution symbols."""
        return 1 << self.bits

    @property
    def is_fitted(self) -> bool:
        return self._breakpoints is not None

    @property
    def breakpoints(self) -> np.ndarray:
        """The full-resolution breakpoint grid, shape ``(dims, cardinality - 1)``."""
        self._require_fitted()
        return self._breakpoints

    @classmethod
    def from_breakpoints(cls, bits: int, scheme: str,
                         breakpoints: np.ndarray) -> "HierarchicalBins":
        """Rebuild fitted bins from a previously learned breakpoint grid.

        This is the deserialization path of the index persistence subsystem:
        the grid saved by a snapshot is adopted verbatim, so symbol assignment
        and intervals of the restored bins are bit-identical to the original.
        """
        bins = cls(bits=bits, scheme=scheme)
        grid = np.ascontiguousarray(breakpoints, dtype=np.float64)
        if grid.ndim != 2 or grid.shape[1] != bins.cardinality - 1:
            raise InvalidParameterError(
                f"expected a breakpoint grid of shape (dims, {bins.cardinality - 1}), "
                f"got {grid.shape}"
            )
        bins._breakpoints = grid
        return bins

    @property
    def num_dimensions(self) -> int:
        self._require_fitted()
        return self._breakpoints.shape[0]

    def fit(self, values: np.ndarray) -> "HierarchicalBins":
        """Learn breakpoints from a sample of numeric summaries.

        Parameters
        ----------
        values:
            2-D array of shape ``(num_samples, num_dimensions)`` — one column
            per summary dimension (PAA segment or Fourier component).  For the
            ``gaussian`` scheme only the number of columns is used.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise InvalidParameterError(
                f"expected a 2-D array of summaries, got shape {values.shape}"
            )
        dims = values.shape[1]
        breakpoints = np.empty((dims, self.cardinality - 1), dtype=np.float64)
        if self.scheme == "gaussian":
            breakpoints[:] = gaussian_breakpoints(self.cardinality)
        else:
            learner = (equi_depth_breakpoints if self.scheme == "equi-depth"
                       else equi_width_breakpoints)
            for dim in range(dims):
                breakpoints[dim] = learner(values[:, dim], self.cardinality)
        self._breakpoints = breakpoints
        return self

    def fit_dimensions(self, num_dimensions: int) -> "HierarchicalBins":
        """Fit Gaussian breakpoints without data (valid for the gaussian scheme only)."""
        if self.scheme != "gaussian":
            raise InvalidParameterError(
                "fit_dimensions is only available for the gaussian scheme; "
                "learned schemes need data"
            )
        if num_dimensions < 1:
            raise InvalidParameterError("num_dimensions must be positive")
        breakpoints = np.tile(gaussian_breakpoints(self.cardinality), (num_dimensions, 1))
        self._breakpoints = breakpoints
        return self

    def _require_fitted(self) -> None:
        if self._breakpoints is None:
            raise NotFittedError("HierarchicalBins must be fitted before use")

    # ------------------------------------------------------ symbol handling

    def breakpoints_at(self, cardinality_bits: int) -> np.ndarray:
        """Breakpoints for the coarser cardinality ``2**cardinality_bits``.

        Returns an array of shape ``(dims, 2**cardinality_bits − 1)``.  At zero
        bits there are no breakpoints (a single all-covering bin).
        """
        self._require_fitted()
        if not 0 <= cardinality_bits <= self.bits:
            raise InvalidParameterError(
                f"cardinality_bits must be in [0, {self.bits}], got {cardinality_bits}"
            )
        if cardinality_bits == 0:
            return np.empty((self._breakpoints.shape[0], 0), dtype=np.float64)
        stride = 1 << (self.bits - cardinality_bits)
        return self._breakpoints[:, stride - 1::stride]

    def symbols(self, values: np.ndarray) -> np.ndarray:
        """Quantize numeric summaries to full-resolution integer symbols.

        Parameters
        ----------
        values:
            Array of shape ``(num_samples, dims)`` or ``(dims,)``.

        Returns
        -------
        numpy.ndarray
            Integer symbols in ``[0, 2**bits)`` with the same leading shape.
        """
        self._require_fitted()
        values = np.asarray(values, dtype=np.float64)
        single = values.ndim == 1
        matrix = np.atleast_2d(values)
        if matrix.shape[1] != self._breakpoints.shape[0]:
            raise InvalidParameterError(
                f"expected {self._breakpoints.shape[0]} dimensions, got {matrix.shape[1]}"
            )
        symbols = np.empty(matrix.shape, dtype=np.int64)
        for dim in range(matrix.shape[1]):
            symbols[:, dim] = np.searchsorted(self._breakpoints[dim], matrix[:, dim],
                                              side="right")
        return symbols[0] if single else symbols

    @staticmethod
    def promote(symbols: np.ndarray, from_bits: int, to_bits: int) -> np.ndarray:
        """Reduce symbol resolution by dropping low-order bits (never adds bits)."""
        if to_bits > from_bits:
            raise InvalidParameterError(
                f"cannot promote from {from_bits} to {to_bits} bits (resolution can only drop)"
            )
        symbols = np.asarray(symbols)
        return symbols >> (from_bits - to_bits)

    # ------------------------------------------------------------ intervals

    def intervals(self, symbols: np.ndarray,
                  cardinality_bits: np.ndarray | int | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper breakpoints of each symbol's quantization interval.

        Parameters
        ----------
        symbols:
            Integer symbols of shape ``(num_words, dims)`` or ``(dims,)``.
            Symbols must already be expressed at the requested resolution.
        cardinality_bits:
            Bits per dimension: a scalar, an array of shape ``(dims,)`` shared
            by every word, or ``None`` for full resolution.  Dimensions with
            zero bits yield the unbounded interval ``(−inf, +inf)``.

        Returns
        -------
        (lower, upper):
            Arrays shaped like ``symbols`` (as float) with ``−inf``/``+inf``
            marking unbounded outer bins.
        """
        self._require_fitted()
        symbols = np.asarray(symbols, dtype=np.int64)
        single = symbols.ndim == 1
        words = np.atleast_2d(symbols)
        dims = self._breakpoints.shape[0]
        if words.shape[1] != dims:
            raise InvalidParameterError(
                f"expected {dims} dimensions, got {words.shape[1]}"
            )
        if cardinality_bits is None:
            bits_per_dim = np.full(dims, self.bits, dtype=np.int64)
        else:
            bits_per_dim = np.broadcast_to(
                np.asarray(cardinality_bits, dtype=np.int64), (dims,)
            ).astype(np.int64)

        cardinality = np.int64(1) << bits_per_dim                  # (dims,)
        if np.any((words < 0) | (words >= cardinality[None, :])):
            raise InvalidParameterError("symbol out of range for its cardinality")

        # The breakpoints of a coarser cardinality are a strided subset of the
        # full grid: symbol s at b bits has lower breakpoint index s*stride - 1
        # and upper breakpoint index (s+1)*stride - 1 in the full grid, where
        # stride = 2**(bits - b).  Gathering from the full grid avoids any
        # per-dimension Python loop on the query hot path.
        stride = np.int64(1) << (self.bits - bits_per_dim)         # (dims,)
        lower_index = words * stride[None, :] - 1
        upper_index = (words + 1) * stride[None, :] - 1
        has_lower = words > 0
        has_upper = words < (cardinality - 1)[None, :]
        zero_bits = bits_per_dim == 0
        if zero_bits.any():
            has_lower = has_lower & ~zero_bits[None, :]
            has_upper = has_upper & ~zero_bits[None, :]

        max_index = self._breakpoints.shape[1] - 1
        dim_index = np.broadcast_to(np.arange(dims), words.shape)
        lower_values = self._breakpoints[dim_index, np.clip(lower_index, 0, max_index)]
        upper_values = self._breakpoints[dim_index, np.clip(upper_index, 0, max_index)]
        lower = np.where(has_lower, lower_values, -np.inf)
        upper = np.where(has_upper, upper_values, np.inf)
        if single:
            return lower[0], upper[0]
        return lower, upper

    def intervals_batch(self, symbols: np.ndarray, cardinality_bits: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Intervals of many words where *every word carries its own bits*.

        The index's leaf directory needs the node-level interval of every leaf,
        and each leaf sits at a different refinement (its own per-dimension bit
        counts).  :meth:`intervals` only supports one shared ``bits`` vector,
        forcing one call per leaf; this variant accepts a full
        ``(num_words, dims)`` bit matrix (anything broadcastable to the symbol
        shape) and gathers every interval in one vectorized pass.

        Parameters
        ----------
        symbols:
            Integer symbols of shape ``(num_words, dims)``, each row expressed
            at its own resolution.
        cardinality_bits:
            Per-word, per-dimension bit counts, broadcastable to
            ``symbols.shape``.  Zero bits yield ``(-inf, +inf)``.

        Returns
        -------
        (lower, upper):
            Float arrays of shape ``(num_words, dims)``; results are
            bit-identical to calling :meth:`intervals` row by row.
        """
        self._require_fitted()
        words = np.asarray(symbols, dtype=np.int64)
        if words.ndim != 2:
            raise InvalidParameterError(
                f"expected a 2-D symbol matrix, got shape {words.shape}"
            )
        dims = self._breakpoints.shape[0]
        if words.shape[1] != dims:
            raise InvalidParameterError(
                f"expected {dims} dimensions, got {words.shape[1]}"
            )
        bits_matrix = np.broadcast_to(
            np.asarray(cardinality_bits, dtype=np.int64), words.shape)
        if np.any((bits_matrix < 0) | (bits_matrix > self.bits)):
            raise InvalidParameterError(
                f"cardinality bits must be in [0, {self.bits}]"
            )
        cardinality = np.int64(1) << bits_matrix
        if np.any((words < 0) | (words >= cardinality)):
            raise InvalidParameterError("symbol out of range for its cardinality")

        # Same strided-grid gather as `intervals`, with the stride varying per
        # word as well as per dimension.
        stride = np.int64(1) << (self.bits - bits_matrix)
        lower_index = words * stride - 1
        upper_index = (words + 1) * stride - 1
        nonzero_bits = bits_matrix > 0
        has_lower = (words > 0) & nonzero_bits
        has_upper = (words < cardinality - 1) & nonzero_bits

        max_index = self._breakpoints.shape[1] - 1
        dim_index = np.broadcast_to(np.arange(dims), words.shape)
        lower_values = self._breakpoints[dim_index, np.clip(lower_index, 0, max_index)]
        upper_values = self._breakpoints[dim_index, np.clip(upper_index, 0, max_index)]
        lower = np.where(has_lower, lower_values, -np.inf)
        upper = np.where(has_upper, upper_values, np.inf)
        return lower, upper

    def mindist(self, values: np.ndarray, symbols: np.ndarray,
                cardinality_bits: np.ndarray | int | None = None) -> np.ndarray:
        """Per-dimension mindist (Eq. 2) between numeric values and symbols."""
        lower, upper = self.intervals(symbols, cardinality_bits)
        values = np.asarray(values, dtype=np.float64)
        below = np.maximum(lower - values, 0.0)
        above = np.maximum(values - upper, 0.0)
        return below + above
