"""Abstract interfaces for summarization techniques.

Two families of summarizations are used in the paper:

* *numeric* summarizations (PAA, DFT, APCA, PLA, Chebyshev) map a series to a
  short vector of real values and provide a lower bound between two such
  vectors;
* *symbolic* summarizations (iSAX, SFA) additionally quantize the numeric
  summary into a small-alphabet word and provide a lower bound between the
  numeric summary of a query and the symbolic word of a candidate (the
  ``mindist`` family of Eq. 2), which is what a GEMINI tree index prunes with.

Both families share :class:`Summarization`; symbolic ones extend it with
:class:`SymbolicSummarization`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.errors import NotFittedError
from repro.core.series import Dataset
from repro.core.simd import batch_lower_bound, vectorized_lower_bound


def _as_matrix(data: "Dataset | np.ndarray") -> np.ndarray:
    """Accept a Dataset or a raw array and return a 2-D float matrix."""
    if isinstance(data, Dataset):
        return data.values
    values = np.asarray(data, dtype=np.float64)
    if values.ndim == 1:
        values = values.reshape(1, -1)
    return values


class Summarization(ABC):
    """A dimensionality-reducing mapping with a Euclidean lower bound."""

    #: Number of values in the numeric summary.
    word_length: int

    @abstractmethod
    def fit(self, data: "Dataset | np.ndarray") -> "Summarization":
        """Learn any data-dependent parameters of the summarization."""

    @abstractmethod
    def transform(self, series: np.ndarray) -> np.ndarray:
        """Numeric summary of a single series."""

    def transform_batch(self, data: "Dataset | np.ndarray") -> np.ndarray:
        """Numeric summaries of a batch of series (one per row)."""
        matrix = _as_matrix(data)
        return np.vstack([self.transform(row) for row in matrix])

    @abstractmethod
    def lower_bound(self, summary_a: np.ndarray, summary_b: np.ndarray) -> float:
        """Lower bound of the Euclidean distance between the original series."""

    def reconstruct(self, summary: np.ndarray, length: int) -> np.ndarray:
        """Approximate reconstruction of a series from its summary.

        Only used for the Figure 1 style qualitative analysis; summarizations
        that cannot reconstruct raise ``NotImplementedError``.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support reconstruction")


class SymbolicSummarization(Summarization):
    """A summarization that also quantizes summaries into symbolic words.

    Concrete subclasses must populate ``self.bins`` (a fitted
    :class:`~repro.transforms.quantization.HierarchicalBins`) and
    ``self.weights`` (per-dimension weights of the squared lower bound) during
    :meth:`fit`.
    """

    bins = None
    weights: np.ndarray | None = None

    @property
    def bits(self) -> int:
        """Bits per symbol of the full-resolution words."""
        self._require_fitted()
        return self.bins.bits

    @property
    def alphabet_size(self) -> int:
        """Alphabet size (cardinality) of the full-resolution words."""
        self._require_fitted()
        return self.bins.cardinality

    def _require_fitted(self) -> None:
        if self.bins is None or not self.bins.is_fitted or self.weights is None:
            raise NotFittedError(f"{type(self).__name__} must be fitted before use")

    def clone_unfitted(self) -> "SymbolicSummarization":
        """A fresh, unfitted summarization with this one's configuration.

        Compaction of a dynamic index rebuilds the tree from scratch on the
        surviving series, which must *re-learn* the summarization on that
        union (exactly what a fresh build would do) rather than reuse the
        state fitted on the original collection.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support unfitted cloning"
        )

    # ----------------------------------------------------------- word API

    def word(self, series: np.ndarray) -> np.ndarray:
        """Full-resolution symbolic word of a single series."""
        self._require_fitted()
        return self.bins.symbols(self.transform(series))

    def words(self, data: "Dataset | np.ndarray") -> np.ndarray:
        """Full-resolution symbolic words of a batch of series."""
        self._require_fitted()
        return self.bins.symbols(self.transform_batch(data))

    # ----------------------------------------------------- lower bounding

    def mindist(self, query_summary: np.ndarray, word: np.ndarray,
                cardinality_bits: np.ndarray | int | None = None,
                best_so_far: float = np.inf) -> float:
        """Squared lower bound between a numeric query summary and a word.

        ``cardinality_bits`` allows evaluating against the reduced-resolution
        words stored in inner tree nodes.
        """
        self._require_fitted()
        lower, upper = self.bins.intervals(word, cardinality_bits)
        squared = vectorized_lower_bound(query_summary, lower, upper, self.weights)
        return squared

    def mindist_batch(self, query_summary: np.ndarray, words: np.ndarray) -> np.ndarray:
        """Squared lower bounds between one query summary and many full words."""
        self._require_fitted()
        lower, upper = self.bins.intervals(words)
        return batch_lower_bound(query_summary, lower, upper, self.weights)

    def lower_bound_to_word(self, query_summary: np.ndarray, word: np.ndarray,
                            cardinality_bits: np.ndarray | int | None = None) -> float:
        """Euclidean (non-squared) lower bound between a summary and a word."""
        return float(np.sqrt(self.mindist(query_summary, word, cardinality_bits)))
