"""Symbolic Fourier Approximation (SFA) with Multiple Coefficient Binning.

SFA (Section IV-E of the paper) is the learned symbolic summarization at the
heart of SOFA.  It combines

1. the orthonormal discrete Fourier transform,
2. a feature-selection step that keeps ``word_length`` real/imaginary
   components — either the first components (the original low-pass scheme) or
   the components with the highest variance (the paper's novel strategy), and
3. Multiple Coefficient Binning (MCB, Algorithm 1): per-component quantization
   bins learned from the empirical distribution of a small sample of the data,
   using either equi-depth or equi-width binning.

The lower bound between a query's Fourier components and an SFA word follows
Equation 2: per component the distance is zero when the query value lies inside
the word's bin and otherwise the gap to the nearest breakpoint, weighted by the
Parseval factor (2 for all components except DC and Nyquist).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError, NotFittedError
from repro.core.series import Dataset
from repro.transforms.base import SymbolicSummarization, _as_matrix
from repro.transforms.dft import component_weights, reconstruct_from_components, rfft_components
from repro.transforms.quantization import HierarchicalBins


class SFA(SymbolicSummarization):
    """Symbolic Fourier Approximation with learned quantization (MCB).

    Parameters
    ----------
    word_length:
        Number of retained real-valued Fourier components (16 in the paper:
        8 complex coefficients = 16 real/imaginary values).
    alphabet_size:
        Cardinality of the symbols; must be a power of two (256 by default).
    binning:
        ``"equi-width"`` (the scheme SOFA uses) or ``"equi-depth"`` (the
        original SFA scheme).
    variance_selection:
        When true (the default, the paper's contribution) the components with
        the highest sample variance are selected; otherwise the first
        components after DC are kept (classic low-pass SFA).
    sample_fraction:
        Fraction of the data sampled by MCB to learn bins and select
        components (1 % in the paper).
    num_candidate_coefficients:
        Variance-based selection only considers components of the first this
        many complex coefficients (16 in the paper, i.e. 32 real values).
        ``None`` means all coefficients are candidates.
    skip_dc:
        Exclude the DC component from selection.  The paper's pipeline
        z-normalizes every series, which makes the DC component identically
        zero.
    random_state:
        Seed of the sampling step, for reproducible bin learning.
    """

    def __init__(self, word_length: int = 16, alphabet_size: int = 256,
                 binning: str = "equi-width", variance_selection: bool = True,
                 sample_fraction: float = 0.01,
                 num_candidate_coefficients: int | None = 16,
                 skip_dc: bool = True, random_state: int = 0) -> None:
        if word_length < 1:
            raise InvalidParameterError(f"word_length must be positive, got {word_length}")
        if alphabet_size < 2 or alphabet_size & (alphabet_size - 1):
            raise InvalidParameterError(
                f"alphabet_size must be a power of two >= 2, got {alphabet_size}"
            )
        if binning not in ("equi-width", "equi-depth"):
            raise InvalidParameterError(
                f"binning must be 'equi-width' or 'equi-depth', got '{binning}'"
            )
        if not 0.0 < sample_fraction <= 1.0:
            raise InvalidParameterError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}"
            )
        self.word_length = word_length
        self._alphabet_size = alphabet_size
        self.binning = binning
        self.variance_selection = variance_selection
        self.sample_fraction = sample_fraction
        self.num_candidate_coefficients = num_candidate_coefficients
        self.skip_dc = skip_dc
        self.random_state = random_state

        self.series_length: int | None = None
        self.selected_components: np.ndarray | None = None
        self.component_variances: np.ndarray | None = None
        self.bins: HierarchicalBins | None = None
        self.weights: np.ndarray | None = None

    # ------------------------------------------------------------------ fit

    def _candidate_components(self, num_components: int) -> np.ndarray:
        """Indices of flattened components eligible for selection."""
        start = 2 if self.skip_dc else 0
        stop = num_components
        if self.num_candidate_coefficients is not None:
            # Each complex coefficient owns two flattened components.
            limit = 2 * self.num_candidate_coefficients
            if self.skip_dc:
                limit += 2
            stop = min(stop, limit)
        return np.arange(start, stop)

    def fit(self, data: "Dataset | np.ndarray") -> "SFA":
        """Learn component selection and quantization bins (MCB, Algorithm 1)."""
        matrix = _as_matrix(data)
        self.series_length = matrix.shape[1]

        # Step 1: sampling and DFT.
        rng = np.random.default_rng(self.random_state)
        sample_size = max(2, int(round(self.sample_fraction * matrix.shape[0])))
        sample_size = min(sample_size, matrix.shape[0])
        sample_rows = rng.choice(matrix.shape[0], size=sample_size, replace=False)
        sample = matrix[np.sort(sample_rows)]
        components, all_weights = rfft_components(sample)

        # Step 2: component selection.
        candidates = self._candidate_components(components.shape[1])
        if self.word_length > candidates.shape[0]:
            raise InvalidParameterError(
                f"word_length {self.word_length} exceeds the {candidates.shape[0]} "
                "candidate spectral components"
            )
        variances = components[:, candidates].var(axis=0)
        if self.variance_selection:
            order = np.argsort(variances)[::-1][:self.word_length]
        else:
            order = np.arange(self.word_length)
        selected = np.sort(candidates[order])
        self.selected_components = selected
        self.component_variances = components[:, selected].var(axis=0)
        self.weights = all_weights[selected]

        # Step 3: learn per-component bins from the sample.
        bits = int(np.log2(self._alphabet_size))
        self.bins = HierarchicalBins(bits=bits, scheme=self.binning)
        self.bins.fit(components[:, selected])
        return self

    def _require_fitted(self) -> None:
        if self.selected_components is None or self.bins is None:
            raise NotFittedError("SFA must be fitted before use")

    def clone_unfitted(self) -> "SFA":
        """A fresh, unfitted SFA with the same configuration (see base class)."""
        return SFA(word_length=self.word_length,
                   alphabet_size=self._alphabet_size,
                   binning=self.binning,
                   variance_selection=self.variance_selection,
                   sample_fraction=self.sample_fraction,
                   num_candidate_coefficients=self.num_candidate_coefficients,
                   skip_dc=self.skip_dc,
                   random_state=self.random_state)

    # -------------------------------------------------------- serialization

    def snapshot_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Fitted state as (JSON-safe config, plain arrays) for snapshots."""
        self._require_fitted()
        config = {
            "word_length": self.word_length,
            "alphabet_size": self._alphabet_size,
            "binning": self.binning,
            "variance_selection": self.variance_selection,
            "sample_fraction": self.sample_fraction,
            "num_candidate_coefficients": self.num_candidate_coefficients,
            "skip_dc": self.skip_dc,
            "random_state": self.random_state,
            "series_length": self.series_length,
        }
        arrays = {
            "selected_components": self.selected_components,
            "component_variances": self.component_variances,
            "breakpoints": self.bins.breakpoints,
            "weights": self.weights,
        }
        return config, arrays

    @classmethod
    def from_snapshot(cls, config: dict, arrays: dict) -> "SFA":
        """Rebuild a fitted SFA instance (selection + MCB bins) from snapshot state."""
        candidates = config.get("num_candidate_coefficients")
        sfa = cls(word_length=int(config["word_length"]),
                  alphabet_size=int(config["alphabet_size"]),
                  binning=config["binning"],
                  variance_selection=bool(config["variance_selection"]),
                  sample_fraction=float(config["sample_fraction"]),
                  num_candidate_coefficients=(None if candidates is None
                                              else int(candidates)),
                  skip_dc=bool(config["skip_dc"]),
                  random_state=int(config["random_state"]))
        sfa.series_length = int(config["series_length"])
        sfa.selected_components = np.ascontiguousarray(
            arrays["selected_components"], dtype=np.int64)
        sfa.component_variances = np.ascontiguousarray(
            arrays["component_variances"], dtype=np.float64)
        bits = int(np.log2(sfa._alphabet_size))
        sfa.bins = HierarchicalBins.from_breakpoints(
            bits=bits, scheme=config["binning"], breakpoints=arrays["breakpoints"])
        sfa.weights = np.ascontiguousarray(arrays["weights"], dtype=np.float64)
        return sfa

    # ------------------------------------------------------------ transform

    def transform(self, series: np.ndarray) -> np.ndarray:
        """Numeric summary of a series: its selected Fourier components."""
        self._require_fitted()
        series = np.asarray(series, dtype=np.float64)
        components, _ = rfft_components(series.reshape(1, -1))
        return components[0, self.selected_components]

    def transform_batch(self, data) -> np.ndarray:
        self._require_fitted()
        components, _ = rfft_components(_as_matrix(data))
        return components[:, self.selected_components]

    # ---------------------------------------------------------- lower bound

    def lower_bound(self, summary_a: np.ndarray, summary_b: np.ndarray) -> float:
        """DFT lower bound between two numeric summaries (Equation 1)."""
        self._require_fitted()
        summary_a = np.asarray(summary_a, dtype=np.float64)
        summary_b = np.asarray(summary_b, dtype=np.float64)
        diff = summary_a - summary_b
        return float(np.sqrt(np.sum(self.weights * diff * diff)))

    # ----------------------------------------------------------- utilities

    def mean_selected_coefficient_index(self) -> float:
        """Mean index of the selected complex Fourier coefficients.

        This is the quantity correlated with the speed-up over MESSI in
        Figure 13 (e.g. selecting coefficients [8..15] gives 11.5).
        """
        self._require_fitted()
        return float(np.mean(self.selected_components // 2))

    def reconstruct(self, summary: np.ndarray, length: int) -> np.ndarray:
        """Inverse DFT using only the selected components (Figure 1 style)."""
        self._require_fitted()
        return reconstruct_from_components(summary, self.selected_components, length)

    def word_to_string(self, word: np.ndarray, alphabet: str | None = None) -> str:
        """Readable rendering of an SFA word (Figure 2 style examples)."""
        word = np.asarray(word, dtype=np.int64)
        if alphabet is None and self._alphabet_size <= 26:
            alphabet = "abcdefghijklmnopqrstuvwxyz"[:self._alphabet_size]
        if alphabet is not None:
            return "".join(alphabet[symbol] for symbol in word)
        return "-".join(str(int(symbol)) for symbol in word)
