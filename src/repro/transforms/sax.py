"""SAX and iSAX: PAA-based symbolic summarization with Gaussian breakpoints.

SAX (Section IV-D of the paper) combines PAA with a fixed equal-depth
quantization of the standard Normal distribution.  iSAX is the indexable
variant whose symbols can be expressed at any power-of-two cardinality, which
is what allows the MESSI tree to split nodes by appending one bit to one
segment's symbol.

The lower bound between a query's PAA summary and an iSAX word is the classic
``mindist``:

    mindist(Q_PAA, W)² = (n / l) · Σ_i gap_i²

where ``gap_i`` is zero when the PAA value falls inside the word's quantization
interval in segment ``i`` and otherwise the distance to the nearest breakpoint.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError, NotFittedError
from repro.transforms.base import SymbolicSummarization, _as_matrix
from repro.transforms.paa import paa_segment_lengths, paa_transform, paa_transform_batch
from repro.transforms.quantization import HierarchicalBins


class SAX(SymbolicSummarization):
    """SAX / iSAX summarization with the mindist lower bound.

    Parameters
    ----------
    word_length:
        Number of PAA segments (16 in the paper's default configuration).
    alphabet_size:
        Cardinality of the full-resolution symbols; must be a power of two
        (256 in the paper's default configuration).
    """

    def __init__(self, word_length: int = 16, alphabet_size: int = 256) -> None:
        if word_length < 1:
            raise InvalidParameterError(f"word_length must be positive, got {word_length}")
        if alphabet_size < 2 or alphabet_size & (alphabet_size - 1):
            raise InvalidParameterError(
                f"alphabet_size must be a power of two >= 2, got {alphabet_size}"
            )
        self.word_length = word_length
        self._alphabet_size = alphabet_size
        self.series_length: int | None = None
        self.bins: HierarchicalBins | None = None
        self.weights: np.ndarray | None = None

    def fit(self, data) -> "SAX":
        """SAX has no learned parameters; fitting records the series length."""
        matrix = _as_matrix(data)
        if self.word_length > matrix.shape[1]:
            raise InvalidParameterError(
                f"word_length {self.word_length} exceeds series length {matrix.shape[1]}"
            )
        self.series_length = matrix.shape[1]
        bits = int(np.log2(self._alphabet_size))
        self.bins = HierarchicalBins(bits=bits, scheme="gaussian")
        self.bins.fit_dimensions(self.word_length)
        # Per-segment lengths (all equal to n / l when l divides n) are the
        # weights of the squared mindist lower bound.
        self.weights = paa_segment_lengths(self.series_length, self.word_length)
        return self

    def clone_unfitted(self) -> "SAX":
        """A fresh, unfitted SAX with the same configuration (see base class)."""
        return SAX(word_length=self.word_length, alphabet_size=self._alphabet_size)

    # -------------------------------------------------------- serialization

    def snapshot_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Fitted state as (JSON-safe config, plain arrays) for snapshots."""
        if self.bins is None or self.weights is None:
            raise NotFittedError("SAX must be fitted before it can be snapshotted")
        config = {
            "word_length": self.word_length,
            "alphabet_size": self._alphabet_size,
            "series_length": self.series_length,
            "binning_scheme": self.bins.scheme,
        }
        arrays = {
            "breakpoints": self.bins.breakpoints,
            "weights": self.weights,
        }
        return config, arrays

    @classmethod
    def from_snapshot(cls, config: dict, arrays: dict) -> "SAX":
        """Rebuild a fitted SAX instance from snapshot state."""
        sax = cls(word_length=int(config["word_length"]),
                  alphabet_size=int(config["alphabet_size"]))
        sax.series_length = int(config["series_length"])
        bits = int(np.log2(sax._alphabet_size))
        sax.bins = HierarchicalBins.from_breakpoints(
            bits=bits, scheme=config["binning_scheme"],
            breakpoints=arrays["breakpoints"])
        sax.weights = np.ascontiguousarray(arrays["weights"], dtype=np.float64)
        return sax

    def transform(self, series: np.ndarray) -> np.ndarray:
        """Numeric summary of a series: its PAA means."""
        return paa_transform(series, self.word_length)

    def transform_batch(self, data) -> np.ndarray:
        return paa_transform_batch(_as_matrix(data), self.word_length)

    def lower_bound(self, summary_a: np.ndarray, summary_b: np.ndarray) -> float:
        """PAA lower bound between two numeric summaries."""
        if self.weights is None:
            raise InvalidParameterError("SAX must be fitted before use")
        summary_a = np.asarray(summary_a, dtype=np.float64)
        summary_b = np.asarray(summary_b, dtype=np.float64)
        gaps = summary_a - summary_b
        return float(np.sqrt(np.sum(self.weights * gaps * gaps)))

    def reconstruct(self, summary: np.ndarray, length: int) -> np.ndarray:
        """Staircase reconstruction from PAA means (for qualitative figures)."""
        summary = np.asarray(summary, dtype=np.float64)
        boundaries = np.linspace(0, length, summary.shape[0] + 1).astype(int)
        series = np.empty(length, dtype=np.float64)
        for i, value in enumerate(summary):
            series[boundaries[i]:boundaries[i + 1]] = value
        return series

    def word_to_string(self, word: np.ndarray, alphabet: str | None = None) -> str:
        """Readable rendering of a word (used in the Figure 2 style examples).

        Only meaningful for alphabets of at most 26 symbols; larger alphabets
        are rendered as dash-separated integers.
        """
        word = np.asarray(word, dtype=np.int64)
        if alphabet is None and self._alphabet_size <= 26:
            alphabet = "abcdefghijklmnopqrstuvwxyz"[:self._alphabet_size]
        if alphabet is not None:
            return "".join(alphabet[symbol] for symbol in word)
        return "-".join(str(int(symbol)) for symbol in word)


def isax_mindist(paa_summary: np.ndarray, word: np.ndarray, sax: SAX,
                 cardinality_bits: np.ndarray | int | None = None) -> float:
    """Convenience wrapper: Euclidean (non-squared) iSAX mindist."""
    return sax.lower_bound_to_word(paa_summary, word, cardinality_bits)
