"""Chebyshev-polynomial summarization.

Cai & Ng proposed indexing series by the leading coefficients of their
Chebyshev expansion.  As with PLA, the summary is an orthogonal projection of
the series (onto the space spanned by the first Chebyshev polynomials sampled
at the series positions, after orthonormalisation), so the distance between
two summaries lower-bounds the Euclidean distance between the raw series.

This baseline is included for the wider TLB comparison referenced in the
related-work section of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.transforms.base import Summarization, _as_matrix


def _chebyshev_basis(length: int, degree: int) -> np.ndarray:
    """Orthonormal basis of the first ``degree`` Chebyshev polynomials.

    The polynomials are evaluated on the ``length`` sample positions mapped to
    [-1, 1] and then orthonormalised with a QR decomposition so that projection
    coefficients live in the same metric as the raw series.
    """
    positions = np.linspace(-1.0, 1.0, length)
    basis = np.empty((length, degree), dtype=np.float64)
    for k in range(degree):
        coefficients = np.zeros(k + 1)
        coefficients[-1] = 1.0
        basis[:, k] = np.polynomial.chebyshev.chebval(positions, coefficients)
    orthonormal, _ = np.linalg.qr(basis)
    return orthonormal


class Chebyshev(Summarization):
    """Chebyshev-coefficient summarization (related-work baseline)."""

    def __init__(self, word_length: int = 16) -> None:
        if word_length < 1:
            raise InvalidParameterError(f"word_length must be positive, got {word_length}")
        self.word_length = word_length
        self.series_length: int | None = None
        self._basis: np.ndarray | None = None

    def fit(self, data) -> "Chebyshev":
        matrix = _as_matrix(data)
        if self.word_length > matrix.shape[1]:
            raise InvalidParameterError(
                f"word_length {self.word_length} exceeds series length {matrix.shape[1]}"
            )
        self.series_length = matrix.shape[1]
        self._basis = _chebyshev_basis(self.series_length, self.word_length)
        return self

    def _require_fitted(self) -> None:
        if self._basis is None:
            raise InvalidParameterError("Chebyshev must be fitted before use")

    def transform(self, series: np.ndarray) -> np.ndarray:
        self._require_fitted()
        series = np.asarray(series, dtype=np.float64)
        if series.shape[0] != self.series_length:
            raise InvalidParameterError(
                f"expected series of length {self.series_length}, got {series.shape[0]}"
            )
        return self._basis.T @ series

    def transform_batch(self, data) -> np.ndarray:
        self._require_fitted()
        matrix = _as_matrix(data)
        return matrix @ self._basis

    def lower_bound(self, summary_a: np.ndarray, summary_b: np.ndarray) -> float:
        """Distance between projection coefficients (orthonormal basis)."""
        summary_a = np.asarray(summary_a, dtype=np.float64)
        summary_b = np.asarray(summary_b, dtype=np.float64)
        return float(np.linalg.norm(summary_a - summary_b))

    def reconstruct(self, summary: np.ndarray, length: int) -> np.ndarray:
        self._require_fitted()
        if length != self.series_length:
            raise InvalidParameterError("reconstruction length must match the fitted length")
        return self._basis @ np.asarray(summary, dtype=np.float64)
