"""Serving quickstart: snapshot -> HTTP server -> query -> ingest -> hot reload.

The full serving lifecycle in one script, stdlib client included:

1. build a SOFA index and save it as a dynamic snapshot,
2. serve the snapshot writable over HTTP (``repro.serve``),
3. answer ``/knn`` queries (coalesced into batched engine calls),
4. ingest live inserts and a delete,
5. ``/compact`` — the tree rebuilds, the serving generation swaps atomically,
   and the snapshot is re-saved in place (queries in flight keep answering on
   the old generation; a restart resumes from the compacted state),
6. clean shutdown.

Run with::

    python examples/serve_quickstart.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.request
from pathlib import Path

from repro import SofaIndex, load_dataset, split_queries
from repro.serve import IndexServer, SearchApp, ServeConfig


def call(url: str, payload: "dict | None" = None) -> dict:
    """POST ``payload`` (or GET when ``None``) and decode the JSON answer."""
    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    # ---- 1. build and snapshot -------------------------------------------
    dataset = load_dataset("LenDB", num_series=600)
    index_set, queries = split_queries(dataset, num_queries=5)
    index = SofaIndex(word_length=8, alphabet_size=64, leaf_size=32)
    dynamic = index.build(index_set).dynamic()

    snapshot = Path(tempfile.mkdtemp(prefix="repro-serve-")) / "lendb"
    dynamic.save(snapshot)
    print(f"snapshot written to {snapshot}")

    # ---- 2. serve it writable --------------------------------------------
    app = SearchApp(ServeConfig(max_k=25, default_timeout_s=10.0))
    app.load_snapshot("lendb", snapshot, writable=True, mmap=True)
    with IndexServer(app) as server:
        print(f"serving on {server.url}")
        print("indexes:", call(f"{server.url}/indexes"))

        # ---- 3. query -----------------------------------------------------
        query = queries.values[0].tolist()
        answer = call(f"{server.url}/lendb/knn", {"query": query, "k": 3})
        print(f"3-NN on generation {answer['generation']}: "
              f"ids={answer['ids']} distances={[round(d, 4) for d in answer['distances']]}")

        # ---- 4. live writes ----------------------------------------------
        inserted = call(f"{server.url}/lendb/insert",
                        {"series": queries.values[1].tolist()})
        (new_row,) = inserted["ids"]
        print(f"inserted live row {new_row} "
              f"({inserted['num_surviving']} rows now served)")
        hit = call(f"{server.url}/lendb/knn",
                   {"query": queries.values[1].tolist(), "k": 1})
        assert hit["ids"] == [new_row], "the buffered insert must be served"
        print(f"the new row answers its own 1-NN query "
              f"(distance {hit['distances'][0]:.2e})")
        call(f"{server.url}/lendb/delete", {"row": 17})

        # ---- 5. compact: generation swap + in-place snapshot re-save -----
        compacted = call(f"{server.url}/lendb/compact", {})
        print(f"compacted: generation {compacted['generation']}, "
              f"{compacted['num_surviving']} surviving rows, "
              f"snapshot re-saved={compacted['saved']}")
        again = call(f"{server.url}/lendb/knn", {"query": query, "k": 3})
        print(f"3-NN on generation {again['generation']}: ids={again['ids']}")

        # ---- 6. serving stats --------------------------------------------
        stats = call(f"{server.url}/stats")["indexes"]["lendb"]
        search = stats["search"]
        print(f"served {search['queries']} queries, "
              f"pruning ratio {search['pruning_ratio']:.2f}, "
              f"batches of mean size "
              f"{stats['batching']['mean_batch_size']:.1f}")
    print("server stopped")

    # A later process resumes from the re-saved (compacted) snapshot.
    restarted = SearchApp()
    restarted.load_snapshot("lendb", snapshot, writable=True)
    listing = restarted.list_indexes()["indexes"][0]
    print(f"restart from snapshot: {listing['num_series']} rows, "
          f"type {listing['type']}")
    restarted.close()


if __name__ == "__main__":
    main()
