"""Process-isolated shards surviving ``kill -9`` mid-storm.

Four shard worker processes under a :class:`repro.cluster.ShardSupervisor`,
a coordinator answering queries through them, and one worker murdered with
``SIGKILL`` while a query storm is running.  Watch the full recovery loop:

1. **launch** — `ClusterIndex.launch` spawns one supervised worker per
   shard and proves the healthy cluster is bit-identical to the in-process
   :class:`~repro.index.sharded.ShardedIndex` over the same snapshot,
2. **kill -9** — a worker dies mid-storm; every in-flight and subsequent
   query still answers (typed, never a raw socket error), degraded to the
   three survivors with ``partial=True`` and ``coverage == 3/4``,
3. **recover** — the supervisor restarts the worker with deterministic
   backoff, the coordinator's probe loop readmits the shard over RPC, the
   restart ladder resets, and coverage returns to ``1.0``.

Run with::

    python examples/cluster_kill9.py
"""

from __future__ import annotations

import os
import signal
import shutil
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.cluster import ClusterIndex, SupervisorPolicy
from repro.datasets.synthetic import random_walk
from repro.index.shard_health import HealthPolicy, RetryPolicy
from repro.index.sharded import ShardedIndex
from repro.index.sofa import SofaIndex

NUM_SERIES = 400
SERIES_LENGTH = 96
NUM_SHARDS = 4
K = 5
VICTIM = 2


def factory() -> SofaIndex:
    return SofaIndex(word_length=8, alphabet_size=64, leaf_size=32)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-cluster-"))
    rows = random_walk(NUM_SERIES, SERIES_LENGTH, seed=31337)
    queries = random_walk(16, SERIES_LENGTH, seed=31338)

    print(f"== building a {NUM_SHARDS}-shard snapshot under {workdir}")
    inproc = ShardedIndex.build(rows, workdir / "shards",
                                num_shards=NUM_SHARDS, index_factory=factory)

    print("== launching one supervised worker process per shard")
    cluster = ClusterIndex.launch(
        workdir / "shards",
        retry=RetryPolicy(max_attempts=2, backoff_base_s=0.005,
                          backoff_cap_s=0.05),
        health=HealthPolicy(quarantine_after=2, probe_interval_s=0.25),
        policy=SupervisorPolicy(restart_base_s=0.05, restart_cap_s=0.5,
                                heartbeat_interval_s=0.1))
    try:
        for entry in cluster.supervisor.report():
            print(f"   shard {entry['shard']}: pid {entry['pid']} "
                  f"at {entry['endpoint'][0]}:{entry['endpoint'][1]}")

        reference = inproc.knn(queries[0], k=K)
        remote = cluster.knn(queries[0], k=K)
        assert np.array_equal(reference.indices, remote.indices)
        assert np.array_equal(reference.distances, remote.distances)
        print(f"== healthy cluster is bit-identical to the in-process "
              f"index (k={K}: ids {remote.indices.tolist()})")

        print(f"\n== storm running; kill -9 on shard {VICTIM}'s worker")
        stop = threading.Event()
        counts = {"complete": 0, "partial": 0, "errors": 0}
        lock = threading.Lock()

        def storm(offset: int) -> None:
            step = offset
            while not stop.is_set():
                try:
                    result = cluster.knn(queries[step % len(queries)], k=K,
                                         timeout_s=10.0)
                    key = "partial" if result.stats.partial else "complete"
                except Exception:  # noqa: BLE001 — counted, would be a bug
                    key = "errors"
                with lock:
                    counts[key] += 1
                step += 1

        threads = [threading.Thread(target=storm, args=(i,), daemon=True)
                   for i in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.5)
        victim_pid = cluster.supervisor.report()[VICTIM]["pid"]
        os.kill(victim_pid, signal.SIGKILL)
        print(f"   SIGKILL sent to pid {victim_pid}")

        deadline = time.monotonic() + 60.0
        readmitted = False
        while time.monotonic() < deadline and not readmitted:
            time.sleep(0.25)
            probe = cluster.knn(queries[0], k=K, timeout_s=10.0)
            readmitted = not probe.stats.partial \
                and cluster.shard_states() == ["healthy"] * NUM_SHARDS
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)

        report = cluster.supervisor.report()[VICTIM]
        print(f"   storm answers: {counts['complete']} complete, "
              f"{counts['partial']} degraded, {counts['errors']} errors")
        assert counts["errors"] == 0, "kill -9 must never surface untyped"
        assert readmitted, "worker was not readmitted in time"
        print(f"== shard {VICTIM} restarted (new pid {report['pid']}) and "
              f"readmitted; restart ladder reset to {report['restarts']}")

        final = cluster.knn(queries[0], k=K, timeout_s=10.0)
        assert np.array_equal(final.indices, reference.indices)
        print(f"== coverage back to {final.stats.coverage:.2f}; answers "
              f"bit-identical again")
    finally:
        cluster.close()
        inproc.close()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
