"""Domain example: exact similarity search over a seismic-event archive.

The paper's benchmark is dominated by seismology datasets (ETHZ, Iquique,
LenDB, OBS, SCEDC, STEAD, ...): given a new seismogram, find the archived
waveforms most similar to it — e.g. to match a new event against known events
from the same fault.  This example builds indexes over stand-ins for two
seismic collections with different frequency content, compares SOFA against
MESSI and the UCR-suite scan, and reports how much work each method does.

Run with::

    python examples/seismic_similarity_search.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import MessiIndex, SofaIndex, UcrSuiteScan, load_dataset, split_queries


def evaluate(name: str, num_series: int = 4000, num_queries: int = 15) -> None:
    dataset = load_dataset(name, num_series=num_series, seed=11)
    index_set, queries = split_queries(dataset, num_queries=num_queries)
    high_frequency = dataset.metadata.get("high_frequency", False)
    print(f"\n=== {name} ({'high' if high_frequency else 'low'}-frequency waveforms, "
          f"{index_set.num_series} archived events) ===")

    methods = {
        "SOFA": SofaIndex(leaf_size=100),
        "MESSI": MessiIndex(leaf_size=100),
        "UCR-suite scan": UcrSuiteScan(num_chunks=18),
    }
    reference_distances = None
    for label, method in methods.items():
        start = time.perf_counter()
        method.build(index_set)
        build_time = time.perf_counter() - start

        distances = []
        exact_work = 0
        start = time.perf_counter()
        for query in queries.values:
            result = method.knn(query, k=1)
            if hasattr(result, "stats") and hasattr(result.stats, "exact_distances"):
                exact_work += result.stats.exact_distances
            distances.append(float(result.distances[0]))
        query_time = (time.perf_counter() - start) / queries.num_series

        if reference_distances is None:
            reference_distances = distances
        else:
            assert np.allclose(distances, reference_distances), "methods disagree!"

        work = (f", {exact_work / queries.num_series:.0f} exact distances/query"
                if exact_work else "")
        print(f"  {label:15s} build {build_time:6.2f}s   "
              f"query {1000 * query_time:7.2f} ms{work}")


def main() -> None:
    # A high-frequency network (large SOFA gains in the paper) and a
    # low-frequency catalogue (modest gains).
    evaluate("LenDB")
    evaluate("ETHZ")
    print("\nAll three methods returned identical (exact) nearest neighbours.")


if __name__ == "__main__":
    main()
