"""Quickstart: build a SOFA index and answer exact similarity queries.

This example walks through the minimal workflow of the library:

1. generate (or load) a dataset of data series,
2. split off a held-out query set,
3. build the SOFA index (SFA summarization + MESSI-style tree),
4. answer exact 1-NN and k-NN queries, and
5. verify the answers against a brute-force scan.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import SerialScan, SofaIndex, load_dataset, split_queries


def main() -> None:
    # 1. A scaled-down stand-in for the paper's LenDB seismic dataset.
    dataset = load_dataset("LenDB", num_series=3000, seed=7)
    print(f"dataset: {dataset.name}, {dataset.num_series} series of "
          f"length {dataset.series_length}")

    # 2. Hold out 10 query series that are never indexed.
    index_set, queries = split_queries(dataset, num_queries=10)

    # 3. Build the index.  leaf_size is scaled down together with the dataset
    #    (the paper uses 20 000 series per leaf on 100M-series collections).
    start = time.perf_counter()
    index = SofaIndex(word_length=16, alphabet_size=256, leaf_size=100).build(index_set)
    print(f"index built in {time.perf_counter() - start:.2f}s "
          f"({len(index.tree.leaves())} leaves)")

    # 4. Exact 1-NN and k-NN queries.
    scan = SerialScan().build(index_set)
    total_time = 0.0
    for query in queries.values:
        start = time.perf_counter()
        result = index.nearest_neighbor(query)
        total_time += time.perf_counter() - start

        # 5. The answer is exact: it matches the brute-force scan.
        _, expected = scan.nearest_neighbor(query)
        assert np.isclose(result.nearest_distance, expected), "exactness violated!"

    print(f"answered {queries.num_series} exact 1-NN queries, "
          f"mean {1000 * total_time / queries.num_series:.2f} ms per query")

    result = index.knn(queries.values[0], k=5)
    print("\n5-NN of the first query:")
    for rank, (row, distance) in enumerate(zip(result.indices, result.distances), start=1):
        print(f"  {rank}. series #{row}  distance {distance:.4f}")

    stats = result.stats
    print(f"\nwork done for that query: {stats.exact_distances} exact distances "
          f"out of {index_set.num_series} series "
          f"({100 * (1 - stats.exact_distances / index_set.num_series):.1f}% pruned), "
          f"{stats.leaves_visited} leaves visited")


if __name__ == "__main__":
    main()
