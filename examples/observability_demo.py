"""Observability demo: metrics scrape, per-query tracing, slow-query log.

The whole observability layer (``repro.obs``) in one script:

1. build a SOFA index and serve it writable with a slow-query threshold,
2. answer ``/knn`` queries, one of them traced (``"trace": true``) — the
   answer carries a span breakdown whose phases sum to ~the wall time,
3. ingest writes so the write-path gauges move, then compact,
4. scrape ``GET /metrics`` (Prometheus text format) and show the families
   the run populated,
5. read the structured slow-query log (``GET /slow_queries``),
6. check ``/healthz`` now reports the writable index's WAL/delta/tombstone
   debt in its ``writers`` section.

Answers are bit-identical with observability on or off — tracing and
metrics only ever *observe* a query, never steer it.

Run with::

    python examples/observability_demo.py
"""

from __future__ import annotations

import json
import urllib.request

from repro import SofaIndex, load_dataset, split_queries
from repro.serve import IndexServer, SearchApp, ServeConfig


def call(url: str, payload: "dict | None" = None) -> dict:
    """POST ``payload`` (or GET when ``None``) and decode the JSON answer."""
    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    # ---- 1. build and serve with a (deliberately hair-trigger) slow
    # threshold so the demo run produces log entries ----------------------
    dataset = load_dataset("LenDB", num_series=800)
    index_set, queries = split_queries(dataset, num_queries=6)
    dynamic = SofaIndex(word_length=8, alphabet_size=64,
                        leaf_size=32).build(index_set).dynamic()

    app = SearchApp(ServeConfig(slow_query_s=1e-6))
    app.add_index("lendb", dynamic)
    with IndexServer(app) as server:
        print(f"serving on {server.url}")

        # ---- 2. plain and traced queries: identical answers --------------
        query = queries.values[0].tolist()
        plain = call(f"{server.url}/lendb/knn", {"query": query, "k": 5})
        traced = call(f"{server.url}/lendb/knn",
                      {"query": query, "k": 5, "trace": True})
        assert plain["ids"] == traced["ids"]
        assert plain["distances"] == traced["distances"]
        print(f"5-NN ids {traced['ids']} (traced == untraced)")
        wall = traced["wall_time_s"]
        print(f"trace: wall {wall * 1e3:.2f} ms, phases "
              f"{{{', '.join(f'{name}: {secs * 1e3:.2f} ms' for name, secs in traced['trace']['phases'].items())}}}")
        phase_sum = traced["trace"]["phase_seconds"]
        print(f"phase sum {phase_sum * 1e3:.2f} ms "
              f"({100 * phase_sum / wall:.0f}% of wall)")

        # ---- 3. writes move the write-path gauges ------------------------
        call(f"{server.url}/lendb/insert",
             {"series": queries.values[1].tolist()})
        call(f"{server.url}/lendb/delete", {"row": 3})
        for row in queries.values[2:]:
            call(f"{server.url}/lendb/knn", {"query": row.tolist(), "k": 3})
        call(f"{server.url}/lendb/compact", {})

        # ---- 4. scrape /metrics ------------------------------------------
        with urllib.request.urlopen(f"{server.url}/metrics") as response:
            content_type = response.headers.get("Content-Type")
            exposition = response.read().decode()
        print(f"\nGET /metrics ({content_type}):")
        families = sorted({line.split()[2] for line in exposition.splitlines()
                           if line.startswith("# TYPE")})
        print(f"  {len(families)} metric families, among them:")
        for name in families:
            if name.startswith(("repro_query", "repro_compaction",
                                "repro_wal", "repro_microbatch")):
                print(f"    {name}")
        for line in exposition.splitlines():
            if line.startswith(("repro_queries_total",
                                "repro_compactions_total",
                                "repro_index_generation")):
                print(f"  {line}")

        # ---- 5. the slow-query log ---------------------------------------
        slow = call(f"{server.url}/slow_queries")
        print(f"\nslow-query log: {slow['logged']} entries over "
              f"{slow['threshold_s']}s; latest:")
        latest = slow["slow_queries"][-1]
        print(json.dumps({key: latest[key]
                          for key in ("index", "k", "wall_time_s", "work")},
                         indent=2))

        # ---- 6. /healthz writers section ---------------------------------
        health = call(f"{server.url}/healthz")
        print(f"\nhealthz: {health}")
        assert "writers" in health and "lendb" in health["writers"]
    print("server stopped")


if __name__ == "__main__":
    main()
