"""Streaming ingest: build → serve → ingest → compact → snapshot → reload.

A serving deployment rarely gets to index a frozen collection: series keep
arriving, and rebuilding from scratch for every batch would burn the entire
construction cost per update.  This example walks the full dynamic
maintenance loop of :class:`repro.DynamicIndex`:

1. **build** a SOFA index over the initial collection,
2. **serve** queries from it while **ingesting** a stream of new batches into
   the delta buffer (words via the vectorized summarization — no tree
   surgery) and tombstoning a few stale rows,
3. verify the served answers are *bit-identical* to a scratch rebuild on the
   surviving rows,
4. **compact** when the delta fraction crosses the configured threshold —
   the surviving series are merged through the parallel build pipeline and
   the new tree is swapped in atomically,
5. **snapshot** the index mid-ingest (format v2 keeps the delta and
   tombstones) and **reload** it, resuming with identical state.

Run with::

    python examples/streaming_ingest.py
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import DynamicIndex, SofaIndex, load_dataset, split_queries

INITIAL_SERIES = 3200
STREAM_BATCHES = 6
BATCH_SIZE = 64
K = 5


def main() -> None:
    # --- build: the read-optimized base tree ------------------------------
    dataset = load_dataset("LenDB", num_series=INITIAL_SERIES + STREAM_BATCHES
                           * BATCH_SIZE + 16, seed=11)
    collection, queries = split_queries(dataset, num_queries=16)
    base = collection.values[:INITIAL_SERIES]
    stream = collection.values[INITIAL_SERIES:]

    start = time.perf_counter()
    index = SofaIndex(word_length=16, alphabet_size=256, leaf_size=100).build(base)
    print(f"built SOFA over {INITIAL_SERIES} series in "
          f"{1000 * (time.perf_counter() - start):.0f} ms")

    # --- serve + ingest ---------------------------------------------------
    served = index.dynamic(compact_threshold=0.10)
    start = time.perf_counter()
    for batch_start in range(0, stream.shape[0], BATCH_SIZE):
        served.insert_batch(stream[batch_start:batch_start + BATCH_SIZE])
    ingest_seconds = time.perf_counter() - start
    print(f"ingested {stream.shape[0]} series in {1000 * ingest_seconds:.1f} ms "
          f"({stream.shape[0] / ingest_seconds:,.0f} rows/s), "
          f"delta fraction now {served.delta_fraction:.1%}")
    for stale_row in (17, 1234, INITIAL_SERIES + 3):  # retire a few rows
        served.delete(stale_row)

    start = time.perf_counter()
    answers = served.knn_batch(queries.values, k=K)
    delta_query_seconds = time.perf_counter() - start

    # The served answers equal a scratch rebuild on the surviving rows —
    # the delta buffer and tombstones are fused into the exact search.
    alive = np.ones(served.num_base + served.delta_count, dtype=bool)
    alive[[17, 1234, INITIAL_SERIES + 3]] = False
    union = np.vstack([base, stream])[alive]
    scratch = SofaIndex(word_length=16, alphabet_size=256, leaf_size=100).build(union)
    scratch_ids = np.flatnonzero(alive)
    for query, served_answer in zip(queries.values, answers):
        rebuilt = scratch.knn(query, k=K)
        assert scratch_ids[rebuilt.indices].tolist() == served_answer.indices.tolist()
        assert np.array_equal(rebuilt.distances, served_answer.distances)
    print(f"queries over tree ∪ delta − tombstones: "
          f"{1000 * delta_query_seconds:.1f} ms for {len(answers)} queries, "
          "bit-identical to a scratch rebuild")

    # --- compact ----------------------------------------------------------
    assert served.needs_compaction  # 384 buffered rows > 10% of 3200
    start = time.perf_counter()
    mapping = served.compact()
    compact_seconds = time.perf_counter() - start
    start = time.perf_counter()
    compacted_answers = served.knn_batch(queries.values, k=K)
    compacted_query_seconds = time.perf_counter() - start
    for before, after in zip(answers, compacted_answers):
        assert np.array_equal(mapping[before.indices], after.indices)
        assert np.array_equal(before.distances, after.distances)
    print(f"compacted {served.num_base} surviving series in "
          f"{1000 * compact_seconds:.0f} ms (parallel rebuild); query batch "
          f"now {1000 * compacted_query_seconds:.1f} ms "
          f"(was {1000 * delta_query_seconds:.1f} ms with the delta)")

    # --- snapshot mid-ingest and reload -----------------------------------
    served.insert_batch(queries.values[:8])  # keep ingesting past compaction
    served.delete(2)
    snapshot = Path(tempfile.mkdtemp(prefix="dynamic-example-")) / "serving"
    try:
        start = time.perf_counter()
        served.save(snapshot)
        save_seconds = time.perf_counter() - start
        start = time.perf_counter()
        resumed = DynamicIndex.load(snapshot, mmap=True)
        load_seconds = time.perf_counter() - start
        assert resumed.delta_count == served.delta_count == 8
        assert resumed.num_surviving == served.num_surviving
        for query in queries.values[:4]:
            old = served.knn(query, k=K)
            new = resumed.knn(query, k=K)
            assert old.indices.tolist() == new.indices.tolist()
            assert np.array_equal(old.distances, new.distances)
        print(f"snapshot saved in {1000 * save_seconds:.0f} ms, reloaded "
              f"mid-ingest in {1000 * load_seconds:.1f} ms with "
              f"{resumed.delta_count} buffered series and its tombstones intact")
    finally:
        shutil.rmtree(snapshot.parent, ignore_errors=True)

    print("\na serving process restarts mid-ingest and keeps answering "
          "exactly — no rebuild, no lost writes.")


if __name__ == "__main__":
    main()
