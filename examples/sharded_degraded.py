"""Sharded scatter-gather under partial failure: degrade, repair, readmit.

One index, ``N`` independently built and persisted shards.  A query fans
out to every healthy shard and the per-shard answers are merged under a
total order, so a healthy sharded index is **bit-identical** to the
unsharded one.  When a shard breaks — here, corrupt payload bytes on
disk — it trips the ``healthy → suspect → quarantined`` ladder and the
index keeps answering from the survivors, reporting exactly how much of
the data the answer covers.  This example runs the full lifecycle of
:class:`repro.index.sharded.ShardedIndex`:

1. **build** a 4-shard index and show the healthy answer equals the
   unsharded reference, global ids and distances alike,
2. **corrupt** one shard's on-disk payload: the next query detects it
   (checksummed load → typed ``CorruptionError``), quarantines the shard,
   and answers with ``partial=True`` and ``coverage == 3/4``,
3. **repair** the bytes and ``probe_shard``: the shard reloads from its
   snapshot, is readmitted, and answers are whole again.

Run with::

    python examples/sharded_degraded.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.datasets.synthetic import random_walk
from repro.index.shard_health import HealthPolicy, RetryPolicy
from repro.index.sharded import ShardedIndex
from repro.index.sofa import SofaIndex

NUM_SERIES = 400
SERIES_LENGTH = 96
NUM_SHARDS = 4
K = 5


def factory() -> SofaIndex:
    return SofaIndex(word_length=8, alphabet_size=64, leaf_size=32)


def describe(result) -> str:
    stats = result.stats
    flavour = "partial" if stats.partial else "complete"
    return (f"{flavour}, coverage {stats.shards_answered}/{stats.shards_total},"
            f" ids {result.indices.tolist()}")


def main() -> None:
    rows = random_walk(NUM_SERIES, SERIES_LENGTH, seed=404)
    query = rows[7] + 0.05 * random_walk(1, SERIES_LENGTH, seed=405)[0]
    workdir = Path(tempfile.mkdtemp(prefix="sharded-degraded-example-"))
    try:
        # --- 1. healthy: sharded == unsharded, bit for bit ----------------
        index = ShardedIndex.build(
            rows, workdir / "shards", num_shards=NUM_SHARDS,
            index_factory=factory,
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.005),
            health=HealthPolicy(auto_probe=False))
        reference = factory().build(rows)
        healthy = index.knn(query, k=K)
        expected = reference.knn(query, k=K)
        assert np.array_equal(healthy.indices, expected.indices)
        assert np.array_equal(healthy.distances, expected.distances)
        print(f"healthy : {describe(healthy)}  (== unsharded reference)")

        # --- 2. corrupt shard 2 on disk -----------------------------------
        victim_shard = index._shards[2]
        victim_shard.engine.close()
        victim_shard.engine = None  # the next query reloads from disk
        (payload,) = sorted(victim_shard.path.glob("*.npy"))[:1]
        pristine = payload.read_bytes()
        payload.write_bytes(pristine[:64] + b"\xff" * 32 + pristine[96:])

        degraded = index.knn(query, k=K)
        print(f"degraded: {describe(degraded)}")
        print(f"states  : {index.shard_states()}")
        assert degraded.stats.partial
        assert index.shard_states()[2] == "quarantined"
        # A quarantined shard is skipped outright — no per-query retry tax.
        assert index.probe_shard(2) is False  # still broken on disk

        # --- 3. repair + probe + readmit ----------------------------------
        payload.write_bytes(pristine)
        assert index.probe_shard(2) is True
        repaired = index.knn(query, k=K)
        assert np.array_equal(repaired.indices, expected.indices)
        assert np.array_equal(repaired.distances, expected.distances)
        print(f"repaired: {describe(repaired)}  (bit-identical again)")
        report = index.health_report()
        print(f"report  : quarantined={report['quarantined']} "
              f"readmits={report['shards'][2]['readmits']}")
        index.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
