"""Parallel two-stage index construction with the vectorized build pipeline.

The paper's construction pipeline (Figure 5) has two parallel stages — chunked
summarization and embarrassingly-parallel per-root-subtree growth — and the
reproduction's `build` actually exploits them:

1. the default *vectorized* builder grows each subtree a whole frontier of
   nodes per pass instead of recursing node by node (several times faster than
   the seed recursive builder on one worker already),
2. ``num_workers`` maps both stages over a thread pool (the NumPy kernels
   release the GIL), dispatching subtrees largest-first,
3. the built index is **bit-identical** for every builder and worker count —
   same tree, same snapshots, same ``knn`` / ``knn_batch`` answers.

Run with::

    python examples/parallel_build.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import SofaIndex, load_dataset, split_queries


def timed_build(label: str, **build_kwargs) -> SofaIndex:
    index = SofaIndex(word_length=16, alphabet_size=256, leaf_size=100,
                      builder=build_kwargs.pop("builder", "vectorized"))
    start = time.perf_counter()
    index.build(**build_kwargs)
    elapsed = time.perf_counter() - start
    timings = index.timings
    print(f"{label:<28} {1000 * elapsed:7.1f} ms wall "
          f"(learn {1000 * timings.learn_time:.1f} ms, "
          f"transform {1000 * timings.transform_time:.1f} ms, "
          f"tree {1000 * timings.tree_time:.1f} ms)")
    return index


def main() -> None:
    dataset = load_dataset("LenDB", num_series=4000, seed=7)
    index_set, queries = split_queries(dataset, num_queries=16)
    print(f"building over {index_set.num_series} series x "
          f"{index_set.series_length} points\n")

    # The seed recursive builder (kept as the reference implementation).
    seed = timed_build("recursive builder, 1 worker", dataset=index_set,
                       builder="recursive", num_workers=1)
    # The vectorized frontier builder — the default.
    vectorized = timed_build("vectorized builder, 1 worker", dataset=index_set,
                             num_workers=1)
    # Both construction stages on a 4-thread pool.  (On a single hardware
    # core this only adds dispatch overhead; on a multi-core machine the
    # GIL-releasing kernels overlap.)
    parallel = timed_build("vectorized builder, 4 workers", dataset=index_set,
                           num_workers=4)

    # --- bit-identity: every build answers exactly the same -----------------
    batch = queries.values
    expected = seed.knn_batch(batch, k=5, num_workers=1)
    for other in (vectorized, parallel):
        for left, right in zip(expected, other.knn_batch(batch, k=5)):
            assert np.array_equal(left.indices, right.indices)
            assert np.array_equal(left.distances, right.distances)
    print("\nall three builds answer 16 x 5-NN queries bit-identically")

    # The recorded per-item costs still drive the virtual-core simulator
    # (Figure 7); the measured wall clock now rides along.
    timings = parallel.timings
    print(f"recorded work items: {len(timings.transform_chunk_times)} transform "
          f"chunks, {len(timings.subtree_times)} subtrees; "
          f"wall {1000 * timings.wall_time:.1f} ms")


if __name__ == "__main__":
    main()
