"""Crash recovery: snapshot + write-ahead log → kill → recover, exactly.

A serving process that buffers inserts in memory loses them when it dies.
This example runs the durability loop of :class:`repro.DynamicIndex`:

1. **build** a MESSI index, attach a **write-ahead log** and take a
   checkpoint snapshot,
2. **ingest** while every insert/delete is appended (checksummed, fsynced)
   to the log *before* it is acknowledged — and measure what the logging
   costs next to unlogged ingest,
3. **kill** the process mid-write: the object is abandoned without a clean
   close, and the log's tail is torn mid-record exactly as a power cut
   would leave it,
4. **recover**: replay the log over the snapshot.  Every acked write is
   restored, the torn (never-acked) tail record is discarded, and the
   answers are bit-identical to the pre-crash index.

Run with::

    python examples/crash_recovery.py
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import DynamicIndex, MessiIndex, load_dataset, split_queries

INITIAL_SERIES = 2000
STREAM_BATCHES = 5
BATCH_SIZE = 64
K = 5


def ingest(served, stream: np.ndarray) -> float:
    start = time.perf_counter()
    for batch_start in range(0, stream.shape[0], BATCH_SIZE):
        served.insert_batch(stream[batch_start:batch_start + BATCH_SIZE])
    return time.perf_counter() - start


def main() -> None:
    dataset = load_dataset("LenDB", num_series=INITIAL_SERIES + STREAM_BATCHES
                           * BATCH_SIZE + 16, seed=23)
    collection, queries = split_queries(dataset, num_queries=16)
    base = collection.values[:INITIAL_SERIES]
    stream = collection.values[INITIAL_SERIES:]

    workdir = Path(tempfile.mkdtemp(prefix="crash-recovery-example-"))
    snapshot = workdir / "snapshot"
    wal_dir = workdir / "wal"
    try:
        # --- build + attach the log + checkpoint --------------------------
        index = MessiIndex(word_length=16, alphabet_size=256,
                           leaf_size=100).build(base)

        # Unlogged baseline first, to price the durability below.
        bare_seconds = ingest(index.dynamic(), stream)

        served = index.dynamic(wal_dir=wal_dir, wal_fsync="batch")
        served.save(snapshot)  # checkpoint: recovery replays only newer LSNs
        print(f"built over {INITIAL_SERIES} series; write-ahead log at "
              f"{wal_dir.name}/, checkpoint snapshot at {snapshot.name}/")

        # --- logged ingest ------------------------------------------------
        logged_seconds = ingest(served, stream)
        served.delete(17)
        served.delete(INITIAL_SERIES + 3)
        expected = served.knn_batch(queries.values, k=K)
        acked_state = (served.num_surviving, served.delta_count)
        rate = stream.shape[0] / logged_seconds
        print(f"ingested {stream.shape[0]} series + 2 deletes under the log "
              f"in {1000 * logged_seconds:.1f} ms ({rate:,.0f} rows/s, "
              f"{logged_seconds / bare_seconds:.2f}x the unlogged time)")

        # --- kill ---------------------------------------------------------
        # The process dies: no close(), no checkpoint.  One more insert is
        # cut off mid-append — its record never finished, so it was never
        # acknowledged to any client.
        served.insert(queries.values[0])
        del served  # abandon; the OS would reclaim the file handle
        torn = sorted(wal_dir.glob("wal-*.log"))[-1]
        torn.write_bytes(torn.read_bytes()[:-11])
        print("killed the serving process mid-append "
              f"(tore the tail of {torn.name})")

        # --- recover ------------------------------------------------------
        start = time.perf_counter()
        recovered = DynamicIndex.recover(snapshot, wal_dir)
        recover_seconds = time.perf_counter() - start
        assert (recovered.num_surviving,
                recovered.delta_count) == acked_state
        observed = recovered.knn_batch(queries.values, k=K)
        for want, got in zip(expected, observed):
            assert want.indices.tolist() == got.indices.tolist()
            assert np.array_equal(want.distances, got.distances)
        print(f"recovered in {1000 * recover_seconds:.1f} ms: snapshot + "
              f"replay of {stream.shape[0]} logged inserts and 2 deletes, "
              "torn tail discarded, answers bit-identical to the last ack")

        # The recovered index is live: the log is re-attached and writes flow.
        recovered.insert(queries.values[0])
        recovered.close()
        print("\nevery acknowledged write survived the crash; the one "
              "never-acked torn record was dropped — exactly the contract "
              "a client can build on.")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
