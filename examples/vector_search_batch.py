"""Domain example: batched exact k-NN over an embedding-vector collection.

The paper compares SOFA against FAISS IndexFlatL2 on vector benchmarks
(SIFT1b, BigANN, Deep1B), processing queries in mini-batches of one query per
core.  This example reproduces that workflow on a SIFT-like stand-in and
contrasts three ways of answering the same exact 10-NN workload:

* the FlatL2 brute-force baseline (mini-batched GEMM over everything),
* SOFA answering queries one at a time (the exploratory-analysis scenario),
* SOFA's batched multi-query engine (``knn_batch``), which vectorizes the
  lower-bound kernels and distance GEMMs across the whole workload and
  returns results identical to the sequential loop.

Run with::

    python examples/vector_search_batch.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import FlatL2Index, SofaIndex, load_dataset, split_queries


def main() -> None:
    dataset = load_dataset("SIFT1b", num_series=5000, seed=23)
    index_set, queries = split_queries(dataset, num_queries=64)
    print(f"collection: {index_set.num_series} vectors of dimension "
          f"{index_set.series_length}; {queries.num_series} queries, k=10")

    # FAISS-IndexFlatL2-style brute force with one mini-batch per "core group".
    flat = FlatL2Index(batch_size=36)
    start = time.perf_counter()
    flat.build(index_set)
    print(f"FlatL2 build: {time.perf_counter() - start:.3f}s")

    start = time.perf_counter()
    flat_result = flat.search(queries.values, k=10)
    flat_time = time.perf_counter() - start
    print(f"FlatL2 batch search: {1000 * flat_time / queries.num_series:.2f} ms/query")

    sofa = SofaIndex(leaf_size=150)
    start = time.perf_counter()
    sofa.build(index_set)
    print(f"SOFA build: {time.perf_counter() - start:.3f}s")

    # SOFA one query at a time (the exploratory-analysis scenario).
    start = time.perf_counter()
    pruned_fraction = []
    looped_results = []
    for query in queries.values:
        result = sofa.knn(query, k=10)
        looped_results.append(result)
        pruned_fraction.append(result.stats.pruning_ratio)
    sequential_time = time.perf_counter() - start
    print(f"SOFA sequential search: "
          f"{1000 * sequential_time / queries.num_series:.2f} ms/query, "
          f"mean pruning {100 * np.mean(pruned_fraction):.1f}% of the collection")

    # SOFA answering the whole workload with the batched multi-query engine.
    start = time.perf_counter()
    batched_results = sofa.knn_batch(queries.values, k=10)
    batched_time = time.perf_counter() - start
    print(f"SOFA batched search:    "
          f"{1000 * batched_time / queries.num_series:.2f} ms/query "
          f"({sequential_time / batched_time:.1f}x the sequential throughput)")

    for row in range(queries.num_series):
        assert np.allclose(batched_results[row].distances,
                           flat_result.distances[row], atol=1e-6), \
            "SOFA and FlatL2 disagree!"
        assert np.array_equal(batched_results[row].indices,
                              looped_results[row].indices), \
            "batched and sequential SOFA disagree!"
        assert np.array_equal(batched_results[row].distances,
                              looped_results[row].distances), \
            "batched and sequential SOFA disagree!"

    print("\nAll three methods returned identical exact 10-NN results for "
          "every query; the batched engine and the sequential loop match "
          "bit for bit.")


if __name__ == "__main__":
    main()
