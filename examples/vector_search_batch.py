"""Domain example: batched exact k-NN over an embedding-vector collection.

The paper compares SOFA against FAISS IndexFlatL2 on vector benchmarks
(SIFT1b, BigANN, Deep1B), processing queries in mini-batches of one query per
core.  This example reproduces that workflow on a SIFT-like stand-in: it
builds the FlatL2 baseline and the SOFA index, answers a batch of exact 10-NN
queries with both, and cross-checks the results.

Run with::

    python examples/vector_search_batch.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import FlatL2Index, SofaIndex, load_dataset, split_queries


def main() -> None:
    dataset = load_dataset("SIFT1b", num_series=5000, seed=23)
    index_set, queries = split_queries(dataset, num_queries=36)
    print(f"collection: {index_set.num_series} vectors of dimension "
          f"{index_set.series_length}; {queries.num_series} queries, k=10")

    # FAISS-IndexFlatL2-style brute force with one mini-batch per "core group".
    flat = FlatL2Index(batch_size=36)
    start = time.perf_counter()
    flat.build(index_set)
    print(f"FlatL2 build: {time.perf_counter() - start:.3f}s")

    start = time.perf_counter()
    flat_result = flat.search(queries.values, k=10)
    flat_time = time.perf_counter() - start
    print(f"FlatL2 batch search: {1000 * flat_time / queries.num_series:.2f} ms/query")

    # SOFA answers the same queries one at a time (the exploratory-analysis
    # scenario of the paper).
    sofa = SofaIndex(leaf_size=150)
    start = time.perf_counter()
    sofa.build(index_set)
    print(f"SOFA build: {time.perf_counter() - start:.3f}s")

    start = time.perf_counter()
    pruned_fraction = []
    for row, query in enumerate(queries.values):
        result = sofa.knn(query, k=10)
        assert np.allclose(result.distances, flat_result.distances[row], atol=1e-6), \
            "SOFA and FlatL2 disagree!"
        pruned_fraction.append(1.0 - result.stats.exact_distances / index_set.num_series)
    sofa_time = time.perf_counter() - start
    print(f"SOFA sequential search: {1000 * sofa_time / queries.num_series:.2f} ms/query, "
          f"mean pruning {100 * np.mean(pruned_fraction):.1f}% of the collection")

    print("\nBoth methods returned identical exact 10-NN results for every query.")


if __name__ == "__main__":
    main()
