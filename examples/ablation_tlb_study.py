"""Ablation example: reproduce the tightness-of-lower-bound study (Section V-E).

The paper's ablation compares five summarization variants — iSAX and SFA with
equi-depth or equi-width binning, with and without variance-based coefficient
selection — by the tightness of their lower bounds (TLB) over many datasets
and alphabet sizes, and summarises the comparison with average ranks and a
critical-difference analysis (Tables V/VI, Figures 14/15).

This example runs a small version of that study on the UCR-like suite and
prints the TLB table, the average ranks and the statistically
indistinguishable cliques.

Run with::

    python examples/ablation_tlb_study.py
"""

from __future__ import annotations

from repro import critical_difference, generate_ucr_like_suite, tlb_study
from repro.evaluation.reporting import format_table
from repro.evaluation.tlb import ABLATION_METHODS, mean_tlb_table


def main() -> None:
    suite = generate_ucr_like_suite(num_datasets=12, train_size=120, test_size=15)
    datasets = {entry.name: (entry.train, entry.test) for entry in suite}
    alphabet_sizes = (4, 16, 64, 256)

    print(f"running the TLB grid: {len(datasets)} datasets x "
          f"{len(alphabet_sizes)} alphabet sizes x {len(ABLATION_METHODS)} methods ...")
    records = tlb_study(datasets, alphabet_sizes=alphabet_sizes,
                        methods=ABLATION_METHODS, word_length=16,
                        max_pairs_per_query=50)

    table = mean_tlb_table(records)
    rows = [[method] + [table[method][alphabet] for alphabet in alphabet_sizes]
            for method in ABLATION_METHODS]
    rows.sort(key=lambda row: row[-1], reverse=True)
    print()
    print(format_table(["method"] + [str(a) for a in alphabet_sizes], rows,
                       title="Mean TLB by alphabet size (higher is better)"))

    # Critical-difference analysis at the largest alphabet, as in Figure 15.
    scores: dict[str, list[float]] = {method: [] for method in ABLATION_METHODS}
    for record in records:
        if record.alphabet_size == 256:
            scores[record.method].append(record.tlb)
    result = critical_difference(scores)

    print()
    print(format_table(["method", "average rank"],
                       [[method, result.average_ranks[method]]
                        for method in result.ordered_methods()],
                       title=f"Average TLB ranks (alphabet 256); "
                             f"Friedman p = {result.friedman_pvalue:.2e}"))
    if result.cliques:
        print("\nstatistically indistinguishable cliques (Wilcoxon-Holm, alpha=0.05):")
        for clique in result.cliques:
            print("  " + " ~ ".join(clique))
    else:
        print("\nall pairwise differences are significant at alpha=0.05")


if __name__ == "__main__":
    main()
