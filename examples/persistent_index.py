"""Build-once / serve-many: index snapshots with zero-copy mmap loading.

A production deployment never wants to pay the index construction cost
(learning the summarization, transforming every series, growing the tree) in
every serving process.  This example shows the persistence workflow:

1. build a SOFA index once and ``save`` it as a versioned snapshot directory,
2. simulate several serving processes that each ``load`` the snapshot with
   ``mmap=True`` — milliseconds instead of a full rebuild, and one shared
   page-cache copy of the data across processes,
3. verify that every loaded "server" answers queries bit-identically to the
   originally built index, single queries and batches alike.

Run with::

    python examples/persistent_index.py
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import SofaIndex, load_dataset, split_queries


def main() -> None:
    # --- build once -------------------------------------------------------
    dataset = load_dataset("LenDB", num_series=4000, seed=7)
    index_set, queries = split_queries(dataset, num_queries=16)

    start = time.perf_counter()
    index = SofaIndex(word_length=16, alphabet_size=256, leaf_size=100).build(index_set)
    build_seconds = time.perf_counter() - start
    print(f"built SOFA over {index_set.num_series} series "
          f"in {1000 * build_seconds:.0f} ms")

    snapshot = Path(tempfile.mkdtemp(prefix="sofa-example-")) / "lendb-index"
    start = time.perf_counter()
    index.save(snapshot)
    print(f"saved snapshot to {snapshot} in "
          f"{1000 * (time.perf_counter() - start):.0f} ms")

    # --- serve many -------------------------------------------------------
    # Each serving process would run exactly this: open the snapshot memory-
    # mapped (no copy of the value matrix) and start answering immediately.
    reference = [index.knn(query, k=5) for query in queries.values]
    try:
        for server_id in range(3):
            start = time.perf_counter()
            server = SofaIndex.load(snapshot, mmap=True)
            warm_start = time.perf_counter() - start

            answers = server.knn_batch(queries.values, k=5)
            for expected, got in zip(reference, answers):
                assert np.array_equal(expected.indices, got.indices)
                assert np.array_equal(expected.distances, got.distances)
            print(f"server {server_id}: warm start in {1000 * warm_start:.1f} ms "
                  f"({build_seconds / warm_start:.0f}x faster than rebuilding), "
                  f"{len(answers)} queries answered bit-identically")
    finally:
        shutil.rmtree(snapshot.parent, ignore_errors=True)

    print("\nbuild once, serve many: the snapshot replaces every rebuild "
          "after the first.")


if __name__ == "__main__":
    main()
