"""Intra-query parallel exact search: one query, many workers, one shared BSF.

The batched engine (``knn_batch``) helps when queries arrive by the dozen;
a single *interactive* query used to be served by one core no matter how
many the machine has.  ``knn(..., num_workers=n)`` closes that gap the way
MESSI does (and the paper's Figure 10 measures):

1. the approximate descent seeds the best-so-far (BSF) answer,
2. the lower-bound-ordered surviving-leaf queue is split into work items
   drained by ``n`` threads — the batched lower-bound and blocked ED kernels
   release the GIL, so items overlap on real cores,
3. all workers share one thread-safe k-NN heap and re-read its threshold
   between refinement blocks, so one worker's tightened BSF prunes every
   other worker's remaining work,
4. the answer is **bit-identical for every worker count** (the bounded heap
   keeps the k best under the total order (distance², row), whatever the
   offer interleaving).

On a single hardware core the extra workers only add dispatch overhead; on a
multi-core machine the refinement phase — the bulk of a hard query — scales
with the workers.  Run with::

    python examples/parallel_query.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import SofaIndex, load_dataset, split_queries

WORKER_COUNTS = (1, 2, 4)


def mean_latency(index: SofaIndex, queries: np.ndarray, num_workers: int,
                 k: int = 10) -> float:
    index.knn(queries[0], k=k, num_workers=num_workers)  # warm the pool
    start = time.perf_counter()
    for query in queries:
        index.knn(query, k=k, num_workers=num_workers)
    return (time.perf_counter() - start) / queries.shape[0]


def main() -> None:
    dataset = load_dataset("SIFT1b", num_series=4000, seed=7)
    index_set, queries = split_queries(dataset, num_queries=16)
    index = SofaIndex(leaf_size=100).build(index_set)
    print(f"serving 10-NN queries over {index_set.num_series} series x "
          f"{index_set.series_length} points\n")

    reference = [index.knn(query, k=10, num_workers=1)
                 for query in queries.values]
    for num_workers in WORKER_COUNTS:
        latency = mean_latency(index, queries.values, num_workers)
        # Bit-identity: every worker count returns the same exact answer.
        for expected, query in zip(reference, queries.values):
            actual = index.knn(query, k=10, num_workers=num_workers)
            assert np.array_equal(expected.indices, actual.indices)
            assert np.array_equal(expected.distances, actual.distances)
        print(f"num_workers={num_workers}:  {1000 * latency:6.2f} ms/query "
              f"(answers bit-identical)")

    # The dynamic write path parallelizes too: the delta buffer is one more
    # work item on the shared queue.
    dynamic = index.dynamic()
    rng = np.random.default_rng(0)
    dynamic.insert_batch(rng.normal(size=(400, index_set.series_length))
                         .cumsum(axis=1))
    dynamic.delete(3)
    sequential = dynamic.knn(queries[0], k=10, num_workers=1)
    parallel = dynamic.knn(queries[0], k=10, num_workers=4)
    assert np.array_equal(sequential.indices, parallel.indices)
    assert np.array_equal(sequential.distances, parallel.distances)
    print(f"\nmid-ingest (delta {dynamic.delta_count} rows, 1 tombstone): "
          f"parallel answers match the sequential engine bit for bit")

    stats = parallel.stats
    print(f"last query: {stats.num_workers} workers, "
          f"{stats.leaves_visited} leaves visited, "
          f"{stats.exact_distances} exact distances "
          f"({100 * stats.pruning_ratio:.1f}% pruned)")


if __name__ == "__main__":
    main()
