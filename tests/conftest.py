"""Shared fixtures for the test suite.

The fixtures provide small, deterministic datasets so that the full suite runs
in well under a minute while still exercising every code path: a clustered
high-frequency dataset (where SOFA's pruning advantage shows), a smooth
low-frequency dataset, and held-out query sets for both.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.series import Dataset
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import oscillatory, random_walk, smooth_signal


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_matrix() -> np.ndarray:
    """A tiny raw matrix of random-walk series (not wrapped in a Dataset)."""
    return random_walk(40, 64, seed=7)


@pytest.fixture(scope="session")
def walk_dataset() -> Dataset:
    """A small random-walk dataset, z-normalized."""
    return Dataset(random_walk(120, 64, seed=3), name="walk")


@pytest.fixture(scope="session")
def oscillatory_dataset() -> Dataset:
    """A small high-frequency dataset, z-normalized."""
    return Dataset(oscillatory(120, 128, seed=5), name="osc")


@pytest.fixture(scope="session")
def smooth_dataset() -> Dataset:
    """A small smooth low-frequency dataset, z-normalized."""
    return Dataset(smooth_signal(120, 128, seed=9), name="smooth")


@pytest.fixture(scope="session")
def clustered_index_and_queries() -> tuple[Dataset, Dataset]:
    """A clustered high-frequency benchmark dataset split into index/query sets."""
    dataset = load_dataset("LenDB", num_series=600, seed=11)
    return dataset.split(20, rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def lowfreq_index_and_queries() -> tuple[Dataset, Dataset]:
    """A clustered low-frequency benchmark dataset split into index/query sets."""
    dataset = load_dataset("SALD", num_series=600, seed=13)
    return dataset.split(20, rng=np.random.default_rng(0))
