"""Tests for the scan and brute-force baselines."""

import numpy as np
import pytest

from repro.baselines.flatl2 import FlatL2Index
from repro.baselines.serial_scan import SerialScan
from repro.baselines.ucr_suite import UcrSuiteScan
from repro.core.errors import SearchError


class TestSerialScan:
    def test_requires_build(self):
        with pytest.raises(SearchError):
            SerialScan().knn(np.zeros(8))

    def test_self_query_returns_zero_distance(self, walk_dataset):
        scan = SerialScan().build(walk_dataset)
        index, distance = scan.nearest_neighbor(walk_dataset[5])
        assert index == 5
        assert distance == pytest.approx(0.0, abs=1e-9)

    def test_knn_distances_sorted(self, walk_dataset):
        scan = SerialScan().build(walk_dataset)
        _, distances = scan.knn(walk_dataset[0], k=10)
        assert np.all(np.diff(distances) >= 0)

    def test_invalid_k(self, walk_dataset):
        scan = SerialScan().build(walk_dataset)
        with pytest.raises(SearchError):
            scan.knn(walk_dataset[0], k=0)


class TestUcrSuiteScan:
    def test_matches_serial_scan(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        reference = SerialScan().build(index_set)
        ucr = UcrSuiteScan(num_chunks=7, block_size=16).build(index_set)
        for query in queries.values[:10]:
            _, expected = reference.nearest_neighbor(query)
            result = ucr.nearest_neighbor(query)
            assert result.distances[0] == pytest.approx(expected, abs=1e-8)

    def test_knn_matches_serial_scan(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        reference = SerialScan().build(index_set)
        ucr = UcrSuiteScan(num_chunks=4).build(index_set)
        for query in queries.values[:5]:
            _, expected = reference.knn(query, k=5)
            result = ucr.knn(query, k=5)
            assert np.allclose(result.distances, expected, atol=1e-8)

    def test_records_per_chunk_times(self, walk_dataset):
        ucr = UcrSuiteScan(num_chunks=6).build(walk_dataset)
        result = ucr.nearest_neighbor(walk_dataset[0])
        assert len(result.stats.chunk_times) == 6
        assert result.stats.exact_distances > 0

    def test_early_abandoning_happens_on_clustered_data(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        ucr = UcrSuiteScan(num_chunks=4, block_size=8).build(index_set)
        result = ucr.nearest_neighbor(queries[0])
        assert result.stats.early_abandons > 0

    def test_invalid_parameters(self):
        with pytest.raises(SearchError):
            UcrSuiteScan(num_chunks=0)
        with pytest.raises(SearchError):
            UcrSuiteScan(block_size=0)

    def test_requires_build(self):
        with pytest.raises(SearchError):
            UcrSuiteScan().knn(np.zeros(8))


class TestFlatL2Index:
    def test_single_query_matches_serial_scan(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        reference = SerialScan().build(index_set)
        flat = FlatL2Index(batch_size=8).build(index_set)
        for query in queries.values[:10]:
            _, expected = reference.nearest_neighbor(query)
            index, distance = flat.nearest_neighbor(query)
            assert distance == pytest.approx(expected, abs=1e-8)

    def test_batch_search_shapes(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        flat = FlatL2Index(batch_size=6).build(index_set)
        result = flat.search(queries.values, k=3)
        assert result.indices.shape == (queries.num_series, 3)
        assert result.distances.shape == (queries.num_series, 3)
        assert len(result.stats.batch_times) == int(np.ceil(queries.num_series / 6))

    def test_batch_results_match_per_query_results(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        flat = FlatL2Index(batch_size=4).build(index_set)
        batch = flat.search(queries.values[:8], k=2)
        for row in range(8):
            indices, distances = flat.knn(queries.values[row], k=2)
            assert np.allclose(batch.distances[row], distances, atol=1e-8)

    def test_k_equal_to_collection_size(self, walk_dataset):
        flat = FlatL2Index().build(walk_dataset)
        _, distances = flat.knn(walk_dataset[0], k=walk_dataset.num_series)
        assert distances.shape == (walk_dataset.num_series,)
        assert np.all(np.diff(distances) >= 0)

    def test_build_time_recorded(self, walk_dataset):
        flat = FlatL2Index().build(walk_dataset)
        assert flat.build_time >= 0.0

    def test_validation(self, walk_dataset):
        flat = FlatL2Index().build(walk_dataset)
        with pytest.raises(SearchError):
            flat.search(np.zeros((2, walk_dataset.series_length + 1)))
        with pytest.raises(SearchError):
            flat.knn(walk_dataset[0], k=0)
        with pytest.raises(SearchError):
            FlatL2Index(batch_size=0)
        with pytest.raises(SearchError):
            FlatL2Index().search(np.zeros((1, 4)))


class TestBaselineAgreement:
    def test_all_baselines_agree(self, lowfreq_index_and_queries):
        """Serial scan, UCR scan and FlatL2 return identical nearest neighbours."""
        index_set, queries = lowfreq_index_and_queries
        serial = SerialScan().build(index_set)
        ucr = UcrSuiteScan(num_chunks=5).build(index_set)
        flat = FlatL2Index(batch_size=3).build(index_set)
        for query in queries.values[:10]:
            _, expected = serial.nearest_neighbor(query)
            assert ucr.nearest_neighbor(query).distances[0] == pytest.approx(expected, abs=1e-8)
            assert flat.nearest_neighbor(query)[1] == pytest.approx(expected, abs=1e-8)
