"""Tests for the workload runner (the glue used by most benchmarks)."""

import numpy as np
import pytest

from repro.baselines.serial_scan import SerialScan
from repro.core.errors import InvalidParameterError
from repro.datasets.registry import load_dataset
from repro.evaluation.workloads import METHODS, WorkloadRunner


@pytest.fixture(scope="module")
def tiny_workload():
    dataset = load_dataset("LenDB", num_series=300, seed=21)
    return dataset.split(8, rng=np.random.default_rng(0))


class TestMethodFactory:
    def test_all_paper_methods_are_constructible(self):
        runner = WorkloadRunner(core_counts=(2,), leaf_size=30)
        for method in METHODS:
            assert runner.make_method(method) is not None

    def test_unknown_method_raises(self):
        with pytest.raises(InvalidParameterError):
            WorkloadRunner(core_counts=(2,)).make_method("HNSW")

    def test_empty_core_counts_raise(self):
        with pytest.raises(InvalidParameterError):
            WorkloadRunner(core_counts=())

    def test_sofa_kwargs_forwarded(self):
        runner = WorkloadRunner(core_counts=(2,), sofa_kwargs={"binning": "equi-depth"})
        assert runner.make_method("SOFA").summarization.binning == "equi-depth"


class TestRunDataset:
    def test_records_for_every_method_core_and_k(self, tiny_workload):
        index_set, queries = tiny_workload
        runner = WorkloadRunner(core_counts=(2, 4), leaf_size=30)
        result = runner.run_dataset(index_set, queries, methods=("SOFA", "MESSI"),
                                    k_values=(1, 3))
        assert len(result.build_records) == 2 * 2       # methods x cores
        assert len(result.query_records) == 2 * 2 * 2   # methods x k x cores
        record = result.query_record(index_set.name, "SOFA", cores=2, k=1)
        assert len(record.query_times) == queries.num_series
        assert record.mean_time > 0.0
        assert record.median_time > 0.0

    def test_all_methods_run_and_report_positive_times(self, tiny_workload):
        index_set, queries = tiny_workload
        runner = WorkloadRunner(core_counts=(4,), leaf_size=30)
        result = runner.run_dataset(index_set, queries, methods=METHODS)
        for method in METHODS:
            record = result.query_record(index_set.name, method, cores=4, k=1)
            assert record.mean_time > 0.0

    def test_reference_checking_confirms_exactness(self, tiny_workload):
        index_set, queries = tiny_workload
        scan = SerialScan().build(index_set)
        reference = [scan.nearest_neighbor(query) for query in queries.values]
        runner = WorkloadRunner(core_counts=(2,), leaf_size=30)
        result = runner.run_dataset(index_set, queries, methods=("SOFA", "MESSI", "FAISS"),
                                    reference=reference)
        assert all(record.exact_correct for record in result.query_records)

    def test_more_cores_do_not_increase_simulated_tree_query_time(self, tiny_workload):
        index_set, queries = tiny_workload
        runner = WorkloadRunner(core_counts=(1, 8), leaf_size=30, sync_overhead=0.0)
        result = runner.run_dataset(index_set, queries, methods=("SOFA",))
        single = result.query_record(index_set.name, "SOFA", cores=1).mean_time
        many = result.query_record(index_set.name, "SOFA", cores=8).mean_time
        assert many <= single + 1e-9

    def test_build_records_have_phase_breakdown(self, tiny_workload):
        index_set, queries = tiny_workload
        runner = WorkloadRunner(core_counts=(2,), leaf_size=30)
        result = runner.run_dataset(index_set, queries, methods=("SOFA",))
        record = result.build_records[0]
        assert record.total_time > 0.0
        assert record.total_time >= record.learn_time
        assert record.transform_time > 0.0
        assert record.tree_time > 0.0

    def test_missing_record_lookup_raises(self, tiny_workload):
        index_set, queries = tiny_workload
        runner = WorkloadRunner(core_counts=(2,), leaf_size=30)
        result = runner.run_dataset(index_set, queries, methods=("SOFA",))
        with pytest.raises(KeyError):
            result.query_record("nope", "SOFA", cores=2)

    def test_run_suite_combines_datasets(self):
        first = load_dataset("SALD", num_series=200, seed=1).split(5)
        second = load_dataset("TXED", num_series=200, seed=2).split(5)
        runner = WorkloadRunner(core_counts=(2,), leaf_size=30)
        result = runner.run_suite({"SALD": first, "TXED": second}, methods=("MESSI",))
        datasets = {record.dataset for record in result.query_records}
        assert datasets == {"SALD", "TXED"}
        timings = result.mean_query_times("MESSI", cores=2)
        assert len(timings.times) == 10
