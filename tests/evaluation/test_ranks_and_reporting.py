"""Tests for critical-difference analysis, timing helpers and table formatting."""

import numpy as np
import pytest

from repro.evaluation.ranks import (
    compute_average_ranks,
    critical_difference,
    friedman_test,
    holm_correction,
    wilcoxon_pvalue,
)
from repro.evaluation.reporting import format_milliseconds, format_table, relative_to_baseline
from repro.evaluation.timing import QueryTimings, Timer


class TestAverageRanks:
    def test_clear_winner_gets_rank_one(self):
        scores = {"good": [0.9, 0.8, 0.95], "bad": [0.1, 0.2, 0.15]}
        ranks = compute_average_ranks(scores)
        assert ranks["good"] == pytest.approx(1.0)
        assert ranks["bad"] == pytest.approx(2.0)

    def test_lower_is_better_orientation(self):
        scores = {"fast": [1.0, 2.0], "slow": [10.0, 20.0]}
        ranks = compute_average_ranks(scores, higher_is_better=False)
        assert ranks["fast"] == pytest.approx(1.0)

    def test_ties_get_average_rank(self):
        scores = {"a": [0.5], "b": [0.5]}
        ranks = compute_average_ranks(scores)
        assert ranks["a"] == ranks["b"] == pytest.approx(1.5)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            compute_average_ranks({"a": [1.0, 2.0], "b": [1.0]})


class TestStatisticalTests:
    def test_friedman_detects_consistent_differences(self):
        rng = np.random.default_rng(0)
        base = rng.uniform(0.3, 0.6, 30)
        scores = {"low": list(base), "mid": list(base + 0.1), "high": list(base + 0.2)}
        assert friedman_test(scores) < 0.01

    def test_friedman_with_two_methods_falls_back_to_wilcoxon(self):
        scores = {"a": [1.0, 2.0, 3.0, 4.0, 5.0], "b": [1.1, 2.1, 3.1, 4.1, 5.1]}
        assert 0.0 <= friedman_test(scores) <= 1.0

    def test_wilcoxon_identical_samples_give_pvalue_one(self):
        sample = np.array([1.0, 2.0, 3.0])
        assert wilcoxon_pvalue(sample, sample) == 1.0

    def test_holm_correction_is_monotone_and_bounded(self):
        corrected = holm_correction([0.01, 0.04, 0.03, 0.5])
        assert all(0.0 <= p <= 1.0 for p in corrected)
        assert corrected[0] >= 0.01  # correction never lowers a p-value


class TestCriticalDifference:
    def test_full_analysis_orders_methods(self):
        rng = np.random.default_rng(1)
        base = rng.uniform(0.4, 0.6, 25)
        scores = {
            "iSAX": list(base - 0.15),
            "SFA ED": list(base),
            "SFA EW +VAR": list(base + 0.15),
        }
        result = critical_difference(scores)
        ordered = result.ordered_methods()
        assert ordered[0] == "SFA EW +VAR"
        assert ordered[-1] == "iSAX"
        assert result.friedman_pvalue < 0.05

    def test_indistinguishable_methods_form_a_clique(self):
        rng = np.random.default_rng(2)
        base = rng.uniform(0.4, 0.6, 20)
        noise = rng.normal(0, 0.001, 20)
        scores = {"a": list(base), "b": list(base + noise), "c": list(base - 0.3)}
        result = critical_difference(scores)
        assert any({"a", "b"} <= set(clique) for clique in result.cliques)


class TestTimingHelpers:
    def test_timer_measures_elapsed_time(self):
        with Timer() as timer:
            _ = sum(range(10_000))
        assert timer.elapsed >= 0.0

    def test_query_timings_statistics(self):
        timings = QueryTimings()
        for value in (0.1, 0.2, 0.3, 0.4):
            timings.add(value)
        assert timings.mean == pytest.approx(0.25)
        assert timings.median == pytest.approx(0.25)
        assert timings.total == pytest.approx(1.0)
        assert timings.percentile(100) == pytest.approx(0.4)
        assert timings.as_milliseconds()["mean_ms"] == pytest.approx(250.0)

    def test_empty_timings(self):
        timings = QueryTimings()
        assert timings.mean == 0.0
        assert timings.median == 0.0


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        table = format_table(["name", "value"], [["a", 1.23456], ["bb", 2]],
                             title="Demo", float_format="{:.2f}")
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "1.23" in table
        assert "bb" in table

    def test_format_milliseconds(self):
        assert format_milliseconds(0.058) == "58.0 ms"

    def test_relative_to_baseline(self):
        times = {"MESSI": 2.0, "SOFA": 0.5}
        relative = relative_to_baseline(times, "MESSI")
        assert relative["MESSI"] == pytest.approx(1.0)
        assert relative["SOFA"] == pytest.approx(0.25)

    def test_relative_to_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            relative_to_baseline({"SOFA": 1.0}, "MESSI")

    def test_relative_to_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            relative_to_baseline({"MESSI": 0.0}, "MESSI")
