"""Tests for the TLB ablation machinery and pruning-power evaluation."""

import numpy as np
import pytest

from repro.core.series import Dataset
from repro.datasets.synthetic import oscillatory
from repro.evaluation.pruning import evaluate_pruning_power
from repro.evaluation.tlb import (
    ABLATION_METHODS,
    evaluate_tlb,
    make_ablation_method,
    mean_tlb_table,
    tlb_study,
)
from repro.transforms.sax import SAX
from repro.transforms.sfa import SFA


@pytest.fixture(scope="module")
def train_and_queries():
    train = Dataset(oscillatory(120, 128, seed=1), name="train")
    queries = Dataset(oscillatory(15, 128, seed=2), name="queries")
    return train, queries


class TestEvaluateTlb:
    def test_tlb_in_unit_interval(self, train_and_queries):
        train, queries = train_and_queries
        tlb = evaluate_tlb(SFA(word_length=16, sample_fraction=1.0), train, queries)
        assert 0.0 <= tlb <= 1.0

    def test_sfa_beats_sax_on_high_frequency_data(self, train_and_queries):
        """Tables V/VI direction: SFA variants have higher TLB than iSAX here."""
        train, queries = train_and_queries
        sfa_tlb = evaluate_tlb(SFA(word_length=16, alphabet_size=64, sample_fraction=1.0),
                               train, queries)
        sax_tlb = evaluate_tlb(SAX(word_length=16, alphabet_size=64), train, queries)
        assert sfa_tlb > sax_tlb

    def test_larger_alphabet_increases_tlb(self, train_and_queries):
        train, queries = train_and_queries
        small = evaluate_tlb(SFA(word_length=16, alphabet_size=4, sample_fraction=1.0),
                             train, queries)
        large = evaluate_tlb(SFA(word_length=16, alphabet_size=256, sample_fraction=1.0),
                             train, queries)
        assert large >= small

    def test_subsampled_pairs(self, train_and_queries):
        train, queries = train_and_queries
        tlb = evaluate_tlb(SFA(word_length=8, sample_fraction=1.0), train, queries,
                           max_pairs_per_query=20)
        assert 0.0 <= tlb <= 1.0


class TestAblationFactory:
    @pytest.mark.parametrize("method", ABLATION_METHODS)
    def test_every_method_is_constructible(self, method):
        summarization = make_ablation_method(method, word_length=8, alphabet_size=16)
        assert summarization.word_length == 8

    def test_isax_maps_to_sax(self):
        assert isinstance(make_ablation_method("iSAX"), SAX)

    def test_variants_map_to_sfa_options(self):
        ed_var = make_ablation_method("SFA ED +VAR")
        ew = make_ablation_method("SFA EW")
        assert isinstance(ed_var, SFA) and ed_var.binning == "equi-depth"
        assert ed_var.variance_selection is True
        assert ew.binning == "equi-width" and ew.variance_selection is False

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            make_ablation_method("PAA EW")


class TestTlbStudy:
    def test_study_grid_shape(self, train_and_queries):
        train, queries = train_and_queries
        records = tlb_study({"toy": (train, queries)}, alphabet_sizes=(4, 16),
                            methods=("iSAX", "SFA EW +VAR"), word_length=8,
                            max_pairs_per_query=20)
        assert len(records) == 2 * 2
        assert {record.method for record in records} == {"iSAX", "SFA EW +VAR"}
        assert all(0.0 <= record.tlb <= 1.0 for record in records)

    def test_mean_tlb_table_aggregation(self, train_and_queries):
        train, queries = train_and_queries
        records = tlb_study({"a": (train, queries), "b": (train, queries)},
                            alphabet_sizes=(8,), methods=("iSAX",), word_length=8,
                            max_pairs_per_query=10)
        table = mean_tlb_table(records)
        assert set(table) == {"iSAX"}
        assert set(table["iSAX"]) == {8}
        expected = np.mean([record.tlb for record in records])
        assert table["iSAX"][8] == pytest.approx(expected)


class TestPruningPower:
    def test_pruning_power_in_unit_interval(self, train_and_queries):
        train, queries = train_and_queries
        power = evaluate_pruning_power(SFA(word_length=16, sample_fraction=1.0),
                                       train, queries)
        assert 0.0 <= power <= 1.0

    def test_sfa_prunes_more_than_sax_on_high_frequency_data(self, train_and_queries):
        train, queries = train_and_queries
        sfa_power = evaluate_pruning_power(SFA(word_length=16, alphabet_size=64,
                                               sample_fraction=1.0), train, queries)
        sax_power = evaluate_pruning_power(SAX(word_length=16, alphabet_size=64),
                                           train, queries)
        assert sfa_power >= sax_power
