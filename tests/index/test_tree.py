"""Tests for the shared MESSI/SOFA tree index structure."""

import numpy as np
import pytest

from repro.core.errors import IndexError_, InvalidParameterError
from repro.core.series import Dataset
from repro.index.tree import TreeIndex
from repro.transforms.sax import SAX
from repro.transforms.sfa import SFA


def _build_tree(dataset, leaf_size=25, summarization=None, **kwargs):
    summarization = summarization or SAX(word_length=8, alphabet_size=16)
    tree = TreeIndex(summarization, leaf_size=leaf_size, **kwargs)
    return tree.build(dataset)


class TestConstruction:
    def test_invalid_leaf_size(self):
        with pytest.raises(InvalidParameterError):
            TreeIndex(SAX(), leaf_size=0)

    def test_invalid_split_policy(self):
        with pytest.raises(InvalidParameterError):
            TreeIndex(SAX(), split_policy="random")

    def test_not_built_flags(self):
        tree = TreeIndex(SAX())
        assert not tree.is_built
        with pytest.raises(IndexError_):
            _ = tree.num_series

    def test_build_accepts_raw_arrays(self, small_matrix):
        tree = TreeIndex(SAX(word_length=4, alphabet_size=8), leaf_size=10)
        tree.build(small_matrix)
        assert tree.is_built
        assert tree.num_series == small_matrix.shape[0]


class TestStructure:
    def test_every_series_is_stored_exactly_once(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        stored = np.concatenate([leaf.indices for leaf in tree.leaves()])
        assert np.array_equal(np.sort(stored), np.arange(walk_dataset.num_series))

    def test_leaf_capacity_is_respected_or_unsplittable(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        for leaf in tree.leaves():
            if leaf.size > tree.leaf_size:
                # Oversized leaves are only allowed when no dimension can be
                # split further (identical words or exhausted bits).
                assert np.all(leaf.bits >= tree.summarization.bits) or \
                    np.unique(leaf.words, axis=0).shape[0] == 1

    def test_leaf_words_match_node_prefix(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        bits = tree.summarization.bits
        for leaf in tree.leaves():
            for dim in range(leaf.word_length):
                used = int(leaf.bits[dim])
                if used == 0:
                    continue
                prefixes = leaf.words[:, dim] >> (bits - used)
                assert np.all(prefixes == leaf.symbols[dim])

    def test_root_children_keys_are_top_bits(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        bits = tree.summarization.bits
        words = tree.summarization.words(walk_dataset)
        expected_keys = {tuple(row) for row in (words >> (bits - 1))}
        assert set(tree.root_children) == expected_keys

    def test_larger_leaf_size_gives_fewer_leaves(self, walk_dataset):
        small = _build_tree(walk_dataset, leaf_size=5)
        large = _build_tree(walk_dataset, leaf_size=50)
        assert len(large.leaves()) <= len(small.leaves())

    def test_round_robin_policy_builds_valid_tree(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10, split_policy="round-robin")
        stored = np.concatenate([leaf.indices for leaf in tree.leaves()])
        assert np.array_equal(np.sort(stored), np.arange(walk_dataset.num_series))

    def test_sfa_tree_builds(self, oscillatory_dataset):
        summarization = SFA(word_length=8, alphabet_size=16, sample_fraction=1.0)
        tree = _build_tree(oscillatory_dataset, leaf_size=15, summarization=summarization)
        stored = np.concatenate([leaf.indices for leaf in tree.leaves()])
        assert np.array_equal(np.sort(stored), np.arange(oscillatory_dataset.num_series))


class TestLowerBounds:
    def test_node_lower_bound_is_valid_for_members(self, walk_dataset):
        """A node's lower bound never exceeds the distance to any series in it."""
        from repro.core.distance import euclidean

        tree = _build_tree(walk_dataset, leaf_size=10)
        query = walk_dataset[0]
        summary = tree.summarization.transform(query)
        for leaf in tree.leaves()[:10]:
            node_bound = np.sqrt(tree.node_lower_bound(summary, leaf))
            for row in leaf.indices[:5]:
                assert node_bound <= euclidean(query, walk_dataset.values[row]) + 1e-9

    def test_leaf_directory_matches_per_node_bounds(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        summary = tree.summarization.transform(walk_dataset[3])
        directory_bounds = tree.leaf_lower_bounds(summary)
        individual = np.array([tree.node_lower_bound(summary, leaf)
                               for leaf in tree.leaf_nodes])
        assert np.allclose(directory_bounds, individual)

    def test_series_lower_bounds_are_valid(self, walk_dataset):
        from repro.core.distance import euclidean

        tree = _build_tree(walk_dataset, leaf_size=10)
        query = walk_dataset[7]
        summary = tree.summarization.transform(query)
        for leaf in tree.leaves()[:5]:
            bounds = np.sqrt(tree.series_lower_bounds(summary, leaf))
            true = np.array([euclidean(query, walk_dataset.values[row])
                             for row in leaf.indices])
            assert np.all(bounds <= true + 1e-9)

    def test_leaf_lower_bounds_requires_build(self):
        tree = TreeIndex(SAX())
        with pytest.raises(IndexError_):
            tree.leaf_lower_bounds(np.zeros(16))


class TestDirectoryHelpers:
    """Edge cases of the PR-1 helpers: series_directory, leaf_position,
    approximate_leaf — on degenerate tree shapes."""

    @pytest.fixture()
    def single_leaf_tree(self):
        """All-positive, unnormalized values share the top SAX bit, so every
        series lands in one root child and (with a large leaf budget) one leaf."""
        values = np.abs(np.random.default_rng(11).normal(5.0, 0.5, size=(30, 32))) + 1.0
        dataset = Dataset(values, name="positive", normalize=False)
        return _build_tree(dataset, leaf_size=100,
                           summarization=SAX(word_length=4, alphabet_size=4)), dataset

    def test_single_leaf_tree_directory(self, single_leaf_tree):
        tree, dataset = single_leaf_tree
        assert len(tree.leaf_nodes) == 1
        lower, upper, rows, offsets, sizes = tree.series_directory()
        assert lower.shape == (dataset.num_series, 4)
        assert upper.shape == (dataset.num_series, 4)
        assert np.array_equal(np.sort(rows), np.arange(dataset.num_series))
        assert offsets.tolist() == [0]
        assert sizes.tolist() == [dataset.num_series]
        assert tree.leaf_position(tree.leaf_nodes[0]) == 0

    def test_single_leaf_approximate_descent(self, single_leaf_tree):
        tree, dataset = single_leaf_tree
        the_leaf = tree.leaf_nodes[0]
        summarization = tree.summarization
        # A query inside the populated root child descends to the only leaf.
        inside = dataset.values[0]
        summary = summarization.transform(inside)
        assert tree.approximate_leaf(summarization.bins.symbols(summary),
                                     summary) is the_leaf
        # A query whose 1-bit prefix has no root child falls back to the
        # smallest-lower-bound leaf — still the only one.
        outside = -dataset.values[0]
        summary = summarization.transform(outside)
        assert tree.approximate_leaf(summarization.bins.symbols(summary),
                                     summary) is the_leaf

    def test_leaf_size_one_tree(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=1)
        lower, upper, rows, offsets, sizes = tree.series_directory()
        assert rows.shape[0] == walk_dataset.num_series
        assert np.array_equal(offsets, np.concatenate([[0], np.cumsum(sizes[:-1])]))
        for position, leaf in enumerate(tree.leaf_nodes):
            assert tree.leaf_position(leaf) == position
            start = int(offsets[position])
            assert np.array_equal(rows[start:start + int(sizes[position])],
                                  leaf.indices)
        # Every query word descends to a leaf whose region contains it.
        summarization = tree.summarization
        for query in walk_dataset.values[:10]:
            summary = summarization.transform(query)
            leaf = tree.approximate_leaf(summarization.bins.symbols(summary), summary)
            assert leaf is not None
            assert tree.leaf_position(leaf) >= 0

    def test_leaf_position_rejects_foreign_leaf(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        other = _build_tree(walk_dataset, leaf_size=10)
        with pytest.raises(IndexError_, match="does not belong"):
            tree.leaf_position(other.leaf_nodes[0])

    def test_series_directory_requires_build(self):
        with pytest.raises(IndexError_):
            TreeIndex(SAX()).series_directory()

    def test_dataset_below_sfa_sample_floor(self):
        """Three series: the MCB sample floor (2) exceeds the 1 % fraction."""
        from repro.index.sofa import SofaIndex

        values = np.random.default_rng(23).normal(size=(3, 64))
        index = SofaIndex(word_length=8, alphabet_size=16, leaf_size=2,
                          sample_fraction=0.01).build(values)
        tree = index.tree
        lower, upper, rows, offsets, sizes = tree.series_directory()
        assert rows.shape[0] == 3
        assert int(sizes.sum()) == 3
        for leaf in tree.leaf_nodes:
            assert tree.leaf_position(leaf) in range(len(tree.leaf_nodes))
        summarization = tree.summarization
        query = values[1]
        normalized = (query - query.mean()) / query.std()
        summary = summarization.transform(normalized)
        leaf = tree.approximate_leaf(summarization.bins.symbols(summary), summary)
        assert leaf is not None
        # The exact engine still answers correctly over the tiny collection.
        result = index.knn(query, k=3)
        assert result.nearest_index == 1
        assert result.nearest_distance == pytest.approx(0.0, abs=1e-9)
        assert sorted(result.indices.tolist()) == [0, 1, 2]


class TestTimings:
    def test_build_timings_are_recorded(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        timings = tree.timings
        assert timings.learn_time >= 0.0
        assert timings.transform_time > 0.0
        assert timings.tree_time > 0.0
        assert len(timings.subtree_times) == len(tree.root_children)
        assert timings.total_time == pytest.approx(
            timings.learn_time + timings.transform_time + timings.tree_time)

    def test_len_matches_num_series(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        assert len(tree) == walk_dataset.num_series


class TestStats:
    def test_structure_stats(self, walk_dataset):
        from repro.index.stats import compute_structure_stats

        tree = _build_tree(walk_dataset, leaf_size=10)
        stats = compute_structure_stats(tree)
        assert stats.num_series == walk_dataset.num_series
        assert stats.num_leaves == len(tree.leaves())
        assert stats.num_subtrees == len(tree.root_children)
        assert stats.average_depth >= 1.0
        assert stats.max_depth >= stats.average_depth
        assert 0.0 < stats.average_leaf_size <= walk_dataset.num_series
        assert stats.as_dict()["num_leaves"] == stats.num_leaves

    def test_structure_stats_requires_built_index(self):
        from repro.index.stats import compute_structure_stats

        with pytest.raises(IndexError_):
            compute_structure_stats(TreeIndex(SAX()))
