"""Tests for the shared MESSI/SOFA tree index structure."""

import numpy as np
import pytest

from repro.core.errors import IndexError_, InvalidParameterError
from repro.core.series import Dataset
from repro.index.tree import TreeIndex
from repro.transforms.sax import SAX
from repro.transforms.sfa import SFA


def _build_tree(dataset, leaf_size=25, summarization=None, **kwargs):
    summarization = summarization or SAX(word_length=8, alphabet_size=16)
    tree = TreeIndex(summarization, leaf_size=leaf_size, **kwargs)
    return tree.build(dataset)


class TestConstruction:
    def test_invalid_leaf_size(self):
        with pytest.raises(InvalidParameterError):
            TreeIndex(SAX(), leaf_size=0)

    def test_invalid_split_policy(self):
        with pytest.raises(InvalidParameterError):
            TreeIndex(SAX(), split_policy="random")

    def test_not_built_flags(self):
        tree = TreeIndex(SAX())
        assert not tree.is_built
        with pytest.raises(IndexError_):
            _ = tree.num_series

    def test_build_accepts_raw_arrays(self, small_matrix):
        tree = TreeIndex(SAX(word_length=4, alphabet_size=8), leaf_size=10)
        tree.build(small_matrix)
        assert tree.is_built
        assert tree.num_series == small_matrix.shape[0]


class TestStructure:
    def test_every_series_is_stored_exactly_once(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        stored = np.concatenate([leaf.indices for leaf in tree.leaves()])
        assert np.array_equal(np.sort(stored), np.arange(walk_dataset.num_series))

    def test_leaf_capacity_is_respected_or_unsplittable(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        for leaf in tree.leaves():
            if leaf.size > tree.leaf_size:
                # Oversized leaves are only allowed when no dimension can be
                # split further (identical words or exhausted bits).
                assert np.all(leaf.bits >= tree.summarization.bits) or \
                    np.unique(leaf.words, axis=0).shape[0] == 1

    def test_leaf_words_match_node_prefix(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        bits = tree.summarization.bits
        for leaf in tree.leaves():
            for dim in range(leaf.word_length):
                used = int(leaf.bits[dim])
                if used == 0:
                    continue
                prefixes = leaf.words[:, dim] >> (bits - used)
                assert np.all(prefixes == leaf.symbols[dim])

    def test_root_children_keys_are_top_bits(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        bits = tree.summarization.bits
        words = tree.summarization.words(walk_dataset)
        expected_keys = {tuple(row) for row in (words >> (bits - 1))}
        assert set(tree.root_children) == expected_keys

    def test_larger_leaf_size_gives_fewer_leaves(self, walk_dataset):
        small = _build_tree(walk_dataset, leaf_size=5)
        large = _build_tree(walk_dataset, leaf_size=50)
        assert len(large.leaves()) <= len(small.leaves())

    def test_round_robin_policy_builds_valid_tree(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10, split_policy="round-robin")
        stored = np.concatenate([leaf.indices for leaf in tree.leaves()])
        assert np.array_equal(np.sort(stored), np.arange(walk_dataset.num_series))

    def test_sfa_tree_builds(self, oscillatory_dataset):
        summarization = SFA(word_length=8, alphabet_size=16, sample_fraction=1.0)
        tree = _build_tree(oscillatory_dataset, leaf_size=15, summarization=summarization)
        stored = np.concatenate([leaf.indices for leaf in tree.leaves()])
        assert np.array_equal(np.sort(stored), np.arange(oscillatory_dataset.num_series))


class TestLowerBounds:
    def test_node_lower_bound_is_valid_for_members(self, walk_dataset):
        """A node's lower bound never exceeds the distance to any series in it."""
        from repro.core.distance import euclidean

        tree = _build_tree(walk_dataset, leaf_size=10)
        query = walk_dataset[0]
        summary = tree.summarization.transform(query)
        for leaf in tree.leaves()[:10]:
            node_bound = np.sqrt(tree.node_lower_bound(summary, leaf))
            for row in leaf.indices[:5]:
                assert node_bound <= euclidean(query, walk_dataset.values[row]) + 1e-9

    def test_leaf_directory_matches_per_node_bounds(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        summary = tree.summarization.transform(walk_dataset[3])
        directory_bounds = tree.leaf_lower_bounds(summary)
        individual = np.array([tree.node_lower_bound(summary, leaf)
                               for leaf in tree.leaf_nodes])
        assert np.allclose(directory_bounds, individual)

    def test_series_lower_bounds_are_valid(self, walk_dataset):
        from repro.core.distance import euclidean

        tree = _build_tree(walk_dataset, leaf_size=10)
        query = walk_dataset[7]
        summary = tree.summarization.transform(query)
        for leaf in tree.leaves()[:5]:
            bounds = np.sqrt(tree.series_lower_bounds(summary, leaf))
            true = np.array([euclidean(query, walk_dataset.values[row])
                             for row in leaf.indices])
            assert np.all(bounds <= true + 1e-9)

    def test_leaf_lower_bounds_requires_build(self):
        tree = TreeIndex(SAX())
        with pytest.raises(IndexError_):
            tree.leaf_lower_bounds(np.zeros(16))


class TestTimings:
    def test_build_timings_are_recorded(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        timings = tree.timings
        assert timings.learn_time >= 0.0
        assert timings.transform_time > 0.0
        assert timings.tree_time > 0.0
        assert len(timings.subtree_times) == len(tree.root_children)
        assert timings.total_time == pytest.approx(
            timings.learn_time + timings.transform_time + timings.tree_time)

    def test_len_matches_num_series(self, walk_dataset):
        tree = _build_tree(walk_dataset, leaf_size=10)
        assert len(tree) == walk_dataset.num_series


class TestStats:
    def test_structure_stats(self, walk_dataset):
        from repro.index.stats import compute_structure_stats

        tree = _build_tree(walk_dataset, leaf_size=10)
        stats = compute_structure_stats(tree)
        assert stats.num_series == walk_dataset.num_series
        assert stats.num_leaves == len(tree.leaves())
        assert stats.num_subtrees == len(tree.root_children)
        assert stats.average_depth >= 1.0
        assert stats.max_depth >= stats.average_depth
        assert 0.0 < stats.average_leaf_size <= walk_dataset.num_series
        assert stats.as_dict()["num_leaves"] == stats.num_leaves

    def test_structure_stats_requires_built_index(self):
        from repro.index.stats import compute_structure_stats

        with pytest.raises(IndexError_):
            compute_structure_stats(TreeIndex(SAX()))
