"""Tests for the exact GEMINI search engine (correctness against brute force)."""

import numpy as np
import pytest

from repro.baselines.serial_scan import SerialScan
from repro.core.errors import IndexError_, SearchError
from repro.index.messi import MessiIndex
from repro.index.search import ExactSearcher, _KnnHeap
from repro.index.sofa import SofaIndex
from repro.index.tree import TreeIndex
from repro.transforms.sax import SAX


class TestKnnHeap:
    def test_threshold_is_infinite_until_full(self):
        heap = _KnnHeap(3)
        heap.offer(1.0, 0)
        heap.offer(2.0, 1)
        assert heap.threshold == np.inf
        heap.offer(3.0, 2)
        assert heap.threshold == 3.0

    def test_keeps_k_smallest(self):
        heap = _KnnHeap(2)
        for distance, index in [(5.0, 0), (1.0, 1), (3.0, 2), (0.5, 3)]:
            heap.offer(distance, index)
        items = heap.sorted_items()
        assert [index for _, index in items] == [3, 1]
        assert heap.threshold == 1.0

    def test_sorted_items_ascending(self):
        heap = _KnnHeap(4)
        for distance in [4.0, 2.0, 3.0, 1.0]:
            heap.offer(distance, int(distance))
        distances = [distance for distance, _ in heap.sorted_items()]
        assert distances == sorted(distances)


class TestSearcherValidation:
    def test_requires_built_index(self):
        with pytest.raises(SearchError):
            ExactSearcher(TreeIndex(SAX()))

    def test_invalid_k(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        index = MessiIndex(leaf_size=50).build(index_set)
        with pytest.raises(SearchError):
            index.knn(queries[0], k=0)
        with pytest.raises(SearchError):
            index.knn(queries[0], k=index_set.num_series + 1)

    def test_wrong_query_length(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        index = MessiIndex(leaf_size=50).build(index_set)
        with pytest.raises(SearchError):
            index.knn(np.zeros(index_set.series_length + 1))

    def test_query_before_build_raises(self):
        with pytest.raises(IndexError_, match=r"MessiIndex has not been built; "
                                              r"call build\(dataset\) or MessiIndex\.load"):
            MessiIndex().knn(np.zeros(8))
        with pytest.raises(IndexError_, match=r"SofaIndex has not been built; "
                                              r"call build\(dataset\) or SofaIndex\.load"):
            SofaIndex().knn(np.zeros(8))


class TestExactness:
    """Every index must return exactly the brute-force answer."""

    @pytest.mark.parametrize("index_factory", [
        lambda: MessiIndex(leaf_size=40),
        lambda: SofaIndex(leaf_size=40),
        lambda: SofaIndex(leaf_size=40, binning="equi-depth"),
        lambda: SofaIndex(leaf_size=40, variance_selection=False),
    ])
    def test_1nn_matches_brute_force(self, clustered_index_and_queries, index_factory):
        index_set, queries = clustered_index_and_queries
        index = index_factory().build(index_set)
        scan = SerialScan().build(index_set)
        for query in queries.values:
            result = index.nearest_neighbor(query)
            _, expected = scan.nearest_neighbor(query)
            assert result.nearest_distance == pytest.approx(expected, abs=1e-8)

    @pytest.mark.parametrize("k", [1, 3, 5, 10])
    def test_knn_matches_brute_force(self, clustered_index_and_queries, k):
        index_set, queries = clustered_index_and_queries
        index = SofaIndex(leaf_size=40).build(index_set)
        scan = SerialScan().build(index_set)
        for query in queries.values[:8]:
            result = index.knn(query, k=k)
            _, expected = scan.knn(query, k=k)
            assert result.distances.shape == (k,)
            assert np.allclose(result.distances, expected, atol=1e-8)

    def test_low_frequency_dataset_is_also_exact(self, lowfreq_index_and_queries):
        index_set, queries = lowfreq_index_and_queries
        sofa = SofaIndex(leaf_size=40).build(index_set)
        messi = MessiIndex(leaf_size=40).build(index_set)
        scan = SerialScan().build(index_set)
        for query in queries.values[:10]:
            _, expected = scan.nearest_neighbor(query)
            assert sofa.nearest_neighbor(query).nearest_distance == pytest.approx(expected)
            assert messi.nearest_neighbor(query).nearest_distance == pytest.approx(expected)

    def test_indexed_series_is_its_own_nearest_neighbor(self, clustered_index_and_queries):
        index_set, _ = clustered_index_and_queries
        index = SofaIndex(leaf_size=40).build(index_set)
        result = index.nearest_neighbor(index_set[17])
        assert result.nearest_index == 17
        assert result.nearest_distance == pytest.approx(0.0, abs=1e-9)

    def test_distances_are_sorted_ascending(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        index = SofaIndex(leaf_size=40).build(index_set)
        result = index.knn(queries[0], k=7)
        assert np.all(np.diff(result.distances) >= 0)


class TestPruningBehaviour:
    def test_stats_are_populated(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        index = SofaIndex(leaf_size=40).build(index_set)
        stats = index.nearest_neighbor(queries[0]).stats
        assert stats.leaves_visited >= 1
        assert stats.exact_distances >= 1
        assert stats.series_lower_bounds >= stats.exact_distances
        assert stats.approximate_time >= 0.0
        assert stats.total_time >= stats.refinement_time

    def test_sofa_prunes_more_than_messi_on_high_frequency_data(
            self, clustered_index_and_queries):
        """The paper's core claim, measured as exact-distance computations."""
        index_set, queries = clustered_index_and_queries
        sofa = SofaIndex(leaf_size=40).build(index_set)
        messi = MessiIndex(leaf_size=40).build(index_set)
        sofa_work = sum(sofa.nearest_neighbor(q).stats.exact_distances
                        for q in queries.values)
        messi_work = sum(messi.nearest_neighbor(q).stats.exact_distances
                         for q in queries.values)
        assert sofa_work < messi_work

    def test_search_prunes_something_on_clustered_data(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        index = SofaIndex(leaf_size=40).build(index_set)
        total_exact = sum(index.nearest_neighbor(q).stats.exact_distances
                          for q in queries.values)
        total_possible = index_set.num_series * queries.num_series
        assert total_exact < 0.5 * total_possible

    def test_unnormalized_query_handling(self, clustered_index_and_queries):
        """Queries are z-normalized by default, so scaling must not change results."""
        index_set, queries = clustered_index_and_queries
        index = SofaIndex(leaf_size=40).build(index_set)
        query = queries[0]
        reference = index.nearest_neighbor(query)
        scaled = index.nearest_neighbor(5.0 * query + 3.0)
        assert scaled.nearest_index == reference.nearest_index
        assert scaled.nearest_distance == pytest.approx(reference.nearest_distance)
