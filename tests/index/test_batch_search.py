"""Tests for the batched multi-query search engine.

The contract under test: :class:`repro.index.batch_search.BatchSearcher`
returns, for every query of a batch, *exactly* the result the per-query
:class:`repro.index.search.ExactSearcher` returns — identical neighbour
indices and bit-identical distances — on both the tree path and the
degenerate flat path, for 1-NN and k-NN, with and without worker sharding.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SearchError
from repro.index.batch_search import BatchSearcher
from repro.index.messi import MessiIndex
from repro.index.search import ExactSearcher
from repro.index.sofa import SofaIndex


@pytest.fixture(scope="module")
def built_tree(clustered_index_and_queries):
    index_set, queries = clustered_index_and_queries
    return SofaIndex(leaf_size=40).build(index_set).tree, queries


def _assert_results_identical(batched, looped):
    assert len(batched) == len(looped)
    for batched_result, looped_result in zip(batched, looped):
        assert np.array_equal(batched_result.indices, looped_result.indices)
        assert np.array_equal(batched_result.distances, looped_result.distances)


class TestExactEquivalence:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_tree_path_matches_per_query(self, built_tree, k):
        tree, queries = built_tree
        searcher = ExactSearcher(tree, flat_refinement_threshold=0.0)
        batcher = BatchSearcher(tree, flat_refinement_threshold=0.0)
        batched = batcher.knn_batch(queries.values, k=k)
        looped = [searcher.knn(query, k=k) for query in queries.values]
        _assert_results_identical(batched, looped)

    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_flat_path_matches_per_query(self, built_tree, k):
        tree, queries = built_tree
        searcher = ExactSearcher(tree, flat_refinement_threshold=np.inf)
        batcher = BatchSearcher(tree, flat_refinement_threshold=np.inf)
        batched = batcher.knn_batch(queries.values, k=k)
        looped = [searcher.knn(query, k=k) for query in queries.values]
        _assert_results_identical(batched, looped)

    def test_paths_agree_with_each_other(self, built_tree):
        """Tree-path and flat-path batched answers are themselves identical."""
        tree, queries = built_tree
        via_tree = BatchSearcher(tree, flat_refinement_threshold=0.0)
        via_flat = BatchSearcher(tree, flat_refinement_threshold=np.inf)
        _assert_results_identical(via_tree.knn_batch(queries.values, k=5),
                                  via_flat.knn_batch(queries.values, k=5))

    def test_worker_sharding_matches_single_thread(self, built_tree):
        tree, queries = built_tree
        batcher = BatchSearcher(tree)
        single = batcher.knn_batch(queries.values, k=3)
        sharded = batcher.knn_batch(queries.values, k=3, num_workers=4)
        _assert_results_identical(sharded, single)

    def test_tied_distances_select_identical_neighbours(self):
        """Duplicate series force exact distance ties; both engines must keep
        the same rows (smaller dataset row wins under the shared total order)."""
        rng = np.random.default_rng(7)
        base = rng.normal(size=(40, 64)).cumsum(axis=1)
        data = np.vstack([base, base, base])
        queries = base[:10] + rng.normal(scale=0.05, size=(10, 64))
        index = SofaIndex(leaf_size=20).build(data)
        batched = index.knn_batch(queries, k=5)
        looped = [index.knn(query, k=5) for query in queries]
        _assert_results_identical(batched, looped)

    def test_messi_batch_matches_per_query(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        messi = MessiIndex(leaf_size=40).build(index_set)
        batched = messi.knn_batch(queries.values[:8], k=3)
        looped = [messi.knn(query, k=3) for query in queries.values[:8]]
        _assert_results_identical(batched, looped)

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=7),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=15, deadline=None)
    def test_property_random_batches(self, built_tree, seed, k, batch_size):
        """Any random sub-batch and k: batched == per-query, bit for bit."""
        tree, queries = built_tree
        rng = np.random.default_rng(seed)
        chosen = rng.choice(queries.num_series, size=batch_size, replace=False)
        workload = queries.values[chosen]
        searcher = ExactSearcher(tree)
        batcher = BatchSearcher(tree)
        batched = batcher.knn_batch(workload, k=k)
        looped = [searcher.knn(query, k=k) for query in workload]
        _assert_results_identical(batched, looped)


class TestApiAndStats:
    def test_single_query_row_is_promoted(self, built_tree):
        tree, queries = built_tree
        batcher = BatchSearcher(tree)
        results = batcher.knn_batch(queries[0], k=2)
        assert len(results) == 1
        assert results[0].distances.shape == (2,)

    def test_empty_batch_returns_empty_list(self, built_tree):
        tree, _ = built_tree
        batcher = BatchSearcher(tree)
        assert batcher.knn_batch(np.empty((0, tree.dataset.series_length))) == []

    def test_validation_errors(self, built_tree):
        tree, queries = built_tree
        batcher = BatchSearcher(tree)
        with pytest.raises(SearchError):
            batcher.knn_batch(queries.values, k=0)
        with pytest.raises(SearchError):
            batcher.knn_batch(queries.values, k=tree.num_series + 1)
        with pytest.raises(SearchError):
            batcher.knn_batch(np.zeros((2, 3)))
        with pytest.raises(SearchError):
            BatchSearcher(tree, group_target=0)
        with pytest.raises(SearchError):
            BatchSearcher(tree, flat_block_size=0)

    def test_unbuilt_index_rejected(self):
        with pytest.raises(SearchError):
            BatchSearcher(SofaIndex(leaf_size=40).tree)

    def test_stats_are_populated_per_query(self, built_tree):
        tree, queries = built_tree
        batcher = BatchSearcher(tree, flat_refinement_threshold=0.0)
        results = batcher.knn_batch(queries.values[:6], k=3)
        for result in results:
            stats = result.stats
            assert stats.num_series == tree.num_series
            assert stats.exact_distances >= 3
            assert stats.series_lower_bounds >= stats.exact_distances
            assert 0.0 <= stats.pruning_ratio < 1.0
            assert stats.total_time > 0.0

    def test_results_are_sorted_and_exact_against_scan(self, built_tree):
        """Batched distances agree with a brute-force scan (exactness)."""
        tree, queries = built_tree
        values = tree.dataset.values
        batcher = BatchSearcher(tree)
        results = batcher.knn_batch(queries.values[:5], k=4)
        from repro.core.normalization import znormalize

        for row, result in enumerate(results):
            assert np.all(np.diff(result.distances) >= 0)
            query = znormalize(queries.values[row])
            brute = np.sqrt(np.sort(np.sum((values - query) ** 2, axis=1)))[:4]
            assert np.allclose(np.sort(result.distances), brute, atol=1e-8)
