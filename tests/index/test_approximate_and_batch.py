"""Tests for the approximate-search mode and the batch-query helper.

Approximate similarity search with SFA is listed as future work in the paper;
the library ships the natural variant (refine only the candidates with the
smallest lower bounds).  These tests pin down its contract: high recall on
clustered data, convergence to the exact answer as the refinement budget
grows, and strictly less refinement work than exact search.
"""

import numpy as np
import pytest

from repro.baselines.serial_scan import SerialScan
from repro.core.errors import SearchError
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex


@pytest.fixture(scope="module")
def built_index(clustered_index_and_queries):
    index_set, queries = clustered_index_and_queries
    return SofaIndex(leaf_size=40).build(index_set), index_set, queries


class TestApproximateSearch:
    def test_high_recall_on_clustered_data(self, built_index):
        index, index_set, queries = built_index
        scan = SerialScan().build(index_set)
        hits = 0
        for query in queries.values:
            exact_index, _ = scan.nearest_neighbor(query)
            approximate = index.approximate_knn(query, k=1, max_refined_series=64)
            hits += int(approximate.nearest_index == exact_index)
        assert hits >= int(0.8 * queries.num_series)

    def test_full_budget_equals_exact_answer(self, built_index):
        index, index_set, queries = built_index
        for query in queries.values[:5]:
            exact = index.knn(query, k=3)
            approximate = index.approximate_knn(query, k=3,
                                                max_refined_series=index_set.num_series)
            assert np.allclose(approximate.distances, exact.distances)

    def test_distance_never_below_exact(self, built_index):
        """An approximate answer can only be equal to or worse than the exact one."""
        index, _, queries = built_index
        for query in queries.values[:8]:
            exact = index.nearest_neighbor(query).nearest_distance
            approximate = index.approximate_knn(query, k=1,
                                                max_refined_series=8).nearest_distance
            assert approximate >= exact - 1e-9

    def test_does_less_refinement_work_than_exact(self, built_index):
        index, _, queries = built_index
        budget = 32
        for query in queries.values[:5]:
            stats = index.approximate_knn(query, k=1, max_refined_series=budget).stats
            assert stats.exact_distances <= budget

    def test_budget_validation(self, built_index):
        index, _, queries = built_index
        with pytest.raises(SearchError):
            index.approximate_knn(queries[0], k=5, max_refined_series=3)
        with pytest.raises(SearchError):
            index.approximate_knn(queries[0], k=0)
        with pytest.raises(SearchError):
            index.approximate_knn(np.zeros(3), k=1)

    def test_works_on_messi_too(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        messi = MessiIndex(leaf_size=40).build(index_set)
        result = messi.approximate_knn(queries[0], k=3, max_refined_series=64)
        assert result.distances.shape == (3,)
        assert np.all(np.diff(result.distances) >= 0)


class TestKnnBatch:
    def test_batch_matches_single_queries(self, built_index):
        index, _, queries = built_index
        batch = index.knn_batch(queries.values[:6], k=2)
        assert len(batch) == 6
        for row, result in enumerate(batch):
            single = index.knn(queries.values[row], k=2)
            assert np.allclose(result.distances, single.distances)
            assert np.array_equal(result.indices, single.indices)

    def test_single_query_input_is_promoted(self, built_index):
        index, _, queries = built_index
        batch = index.knn_batch(queries[0], k=1)
        assert len(batch) == 1
        assert batch[0].distances.shape == (1,)
