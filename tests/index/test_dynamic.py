"""Tests of the dynamic-maintenance subsystem (``repro.index.dynamic``).

The central contract: a :class:`~repro.index.dynamic.DynamicIndex` serving
*tree ∪ delta − tombstones* answers ``knn`` and ``knn_batch`` **bit-identically
to a scratch rebuild** on the surviving rows — for any interleaving of
inserts, deletes and compactions (hypothesis-driven), for SOFA and MESSI, on
both the tree and the flat refinement paths, including the edge cases
``k > surviving-row-count``, everything-deleted and an empty delta.  The
persistence contract (format-v2 snapshots round-trip the delta and
tombstones; v1 snapshots upgrade to a compacted index) is covered in
``test_persistence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_, InvalidParameterError, SearchError
from repro.datasets.synthetic import random_walk
from repro.index.dynamic import DynamicIndex
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex
from repro.index.tree import TreeIndex
from repro.transforms.sax import SAX

INDEX_CLASSES = {"sofa": SofaIndex, "messi": MessiIndex}

SERIES_LENGTH = 32
#: leaf_size=2 degenerates the tree into the flat refinement path;
#: leaf_size=64 keeps whole root subtrees in one leaf (tree path).
LEAF_SIZES = (2, 64)


def _build(kind: str, matrix: np.ndarray, leaf_size: int):
    return INDEX_CLASSES[kind](word_length=8, alphabet_size=16,
                               leaf_size=leaf_size).build(matrix)


class _ReferenceModel:
    """Book-keeping twin of a DynamicIndex: raw rows, aliveness, id mapping."""

    def __init__(self, base: np.ndarray) -> None:
        self.rows: list[np.ndarray] = [row for row in base]
        self.alive: list[bool] = [True] * len(self.rows)

    def insert(self, block: np.ndarray) -> None:
        for row in block:
            self.rows.append(row)
            self.alive.append(True)

    def delete(self, row: int) -> None:
        assert self.alive[row]
        self.alive[row] = False

    def compact(self, mapping: np.ndarray) -> None:
        survivors = [row for row, alive in zip(self.rows, self.alive) if alive]
        for old_id, new_id in enumerate(mapping):
            if self.alive[old_id]:
                assert new_id == sum(self.alive[:old_id])
            else:
                assert new_id == -1
        self.rows = survivors
        self.alive = [True] * len(survivors)

    @property
    def surviving_ids(self) -> list[int]:
        return [row for row, alive in enumerate(self.alive) if alive]

    def surviving_matrix(self) -> np.ndarray:
        return np.vstack([self.rows[row] for row in self.surviving_ids])


def _assert_matches_scratch(kind: str, leaf_size: int, dynamic: DynamicIndex,
                            model: _ReferenceModel, queries: np.ndarray,
                            k_values=(1, 3)) -> None:
    """Dynamic answers must be bit-identical to a fresh build on survivors."""
    surviving = model.surviving_ids
    assert dynamic.num_surviving == len(surviving)
    scratch = _build(kind, model.surviving_matrix(), leaf_size)
    to_scratch = {global_id: position
                  for position, global_id in enumerate(surviving)}
    for k in (*k_values, len(surviving)):
        if k > len(surviving):
            continue
        batched = dynamic.knn_batch(queries, k=k)
        scratch_batched = scratch.knn_batch(queries, k=k)
        for query, batch_result, scratch_batch in zip(queries, batched,
                                                      scratch_batched):
            result = dynamic.knn(query, k=k)
            expected = scratch.knn(query, k=k)
            mapped = [to_scratch[int(row)] for row in result.indices]
            assert mapped == expected.indices.tolist()
            assert np.array_equal(result.distances, expected.distances)
            mapped = [to_scratch[int(row)] for row in batch_result.indices]
            assert mapped == scratch_batch.indices.tolist()
            assert np.array_equal(batch_result.distances, scratch_batch.distances)


@pytest.fixture(params=sorted(INDEX_CLASSES))
def kind(request):
    return request.param


class TestEquivalenceWithScratchRebuild:
    @pytest.mark.parametrize("leaf_size", LEAF_SIZES)
    def test_inserts_then_deletes_match_scratch(self, kind, leaf_size):
        base = random_walk(40, SERIES_LENGTH, seed=11)
        extra = random_walk(16, SERIES_LENGTH, seed=12)
        queries = random_walk(4, SERIES_LENGTH, seed=13)
        dynamic = _build(kind, base, leaf_size).dynamic()
        model = _ReferenceModel(base)

        dynamic.insert_batch(extra[:10])
        model.insert(extra[:10])
        for row in (0, 17, 39, 41, 48):
            dynamic.delete(row)
            model.delete(row)
        dynamic.insert(extra[10])
        model.insert(extra[10:11])
        _assert_matches_scratch(kind, leaf_size, dynamic, model, queries)

    @pytest.mark.parametrize("leaf_size", LEAF_SIZES)
    def test_compaction_matches_scratch(self, kind, leaf_size):
        base = random_walk(30, SERIES_LENGTH, seed=21)
        extra = random_walk(12, SERIES_LENGTH, seed=22)
        queries = random_walk(3, SERIES_LENGTH, seed=23)
        dynamic = _build(kind, base, leaf_size).dynamic()
        model = _ReferenceModel(base)
        dynamic.insert_batch(extra)
        model.insert(extra)
        for row in (2, 31):
            dynamic.delete(row)
            model.delete(row)
        model.compact(dynamic.compact())
        assert dynamic.delta_count == 0
        assert dynamic.num_base == dynamic.num_surviving == len(model.rows)
        _assert_matches_scratch(kind, leaf_size, dynamic, model, queries)
        # A second ingest round on the compacted generation works the same.
        more = random_walk(5, SERIES_LENGTH, seed=24)
        dynamic.insert_batch(more)
        model.insert(more)
        dynamic.delete(1)
        model.delete(1)
        _assert_matches_scratch(kind, leaf_size, dynamic, model, queries)

    def test_tombstones_only_no_delta(self, kind):
        """Deletes without any pending insert still fuse correctly."""
        base = random_walk(25, SERIES_LENGTH, seed=31)
        queries = random_walk(3, SERIES_LENGTH, seed=32)
        dynamic = _build(kind, base, 8).dynamic()
        model = _ReferenceModel(base)
        for row in (0, 1, 24):
            dynamic.delete(row)
            model.delete(row)
        assert dynamic.delta_count == 0
        _assert_matches_scratch(kind, 8, dynamic, model, queries)

    def test_empty_delta_is_bit_identical_to_static(self, kind):
        """With no writes at all the dynamic layer is a pass-through."""
        base = random_walk(30, SERIES_LENGTH, seed=41)
        queries = random_walk(4, SERIES_LENGTH, seed=42)
        index = _build(kind, base, 8)
        dynamic = index.dynamic()
        for k in (1, 4):
            for query, batch_result in zip(queries,
                                           dynamic.knn_batch(queries, k=k)):
                static = index.knn(query, k=k)
                result = dynamic.knn(query, k=k)
                assert result.indices.tolist() == static.indices.tolist()
                assert np.array_equal(result.distances, static.distances)
                assert batch_result.indices.tolist() == static.indices.tolist()

    def test_exact_ties_across_base_and_delta(self, kind):
        """A delta row duplicating a base row produces a real, ordered tie."""
        base = random_walk(20, SERIES_LENGTH, seed=51)
        dynamic = _build(kind, base, 8).dynamic()
        dynamic.insert(base[4])  # duplicate of base row 4 -> global id 20
        result = dynamic.knn(base[4], k=2)
        assert result.indices.tolist() == [4, 20]  # smaller row wins the tie
        assert result.distances[0] == result.distances[1]

    @given(data=st.data())
    @settings(max_examples=12, deadline=None)
    def test_interleaved_operations_property(self, data):
        """Random insert/delete/compact interleavings stay scratch-identical."""
        kind = data.draw(st.sampled_from(sorted(INDEX_CLASSES)), label="kind")
        leaf_size = data.draw(st.sampled_from(LEAF_SIZES), label="leaf_size")
        seed = data.draw(st.integers(0, 10_000), label="seed")
        base = random_walk(data.draw(st.integers(15, 35), label="base"),
                           SERIES_LENGTH, seed=seed)
        queries = random_walk(3, SERIES_LENGTH, seed=seed + 1)
        fresh = iter(random_walk(64, SERIES_LENGTH, seed=seed + 2))
        dynamic = _build(kind, base, leaf_size).dynamic()
        model = _ReferenceModel(base)

        num_operations = data.draw(st.integers(3, 8), label="ops")
        for _ in range(num_operations):
            choice = data.draw(st.sampled_from(["insert", "delete", "compact"]))
            if choice == "insert":
                count = data.draw(st.integers(1, 4))
                block = np.vstack([next(fresh) for _ in range(count)])
                identifiers = dynamic.insert_batch(block)
                assert identifiers.tolist() == list(
                    range(len(model.rows), len(model.rows) + count))
                model.insert(block)
            elif choice == "delete":
                surviving = model.surviving_ids
                if len(surviving) <= 1:
                    continue  # keep at least one row alive
                row = surviving[data.draw(st.integers(0, len(surviving) - 1))]
                dynamic.delete(row)
                model.delete(row)
            else:
                model.compact(dynamic.compact())
        _assert_matches_scratch(kind, leaf_size, dynamic, model, queries)


class TestEdgeCases:
    def test_k_exceeding_surviving_rows_raises(self, kind):
        base = random_walk(10, SERIES_LENGTH, seed=61)
        dynamic = _build(kind, base, 4).dynamic()
        dynamic.delete(3)
        queries = random_walk(2, SERIES_LENGTH, seed=62)
        assert dynamic.num_surviving == 9
        dynamic.knn(queries[0], k=9)  # exactly the surviving count is fine
        with pytest.raises(SearchError, match="exceeds the number of surviving"):
            dynamic.knn(queries[0], k=10)
        with pytest.raises(SearchError, match="exceeds the number of surviving"):
            dynamic.knn_batch(queries, k=10)

    def test_all_deleted_raises_on_query_and_compact(self, kind):
        base = random_walk(4, SERIES_LENGTH, seed=63)
        dynamic = _build(kind, base, 4).dynamic()
        for row in range(4):
            dynamic.delete(row)
        assert dynamic.num_surviving == 0
        query = random_walk(1, SERIES_LENGTH, seed=64)[0]
        with pytest.raises(SearchError, match="surviving series \\(0\\)"):
            dynamic.knn(query, k=1)
        with pytest.raises(IndexError_, match="all deleted"):
            dynamic.compact()
        # Inserting brings the index back to life.
        dynamic.insert(query)
        result = dynamic.knn(query, k=1)
        assert result.indices.tolist() == [4]
        dynamic.compact()
        assert dynamic.num_base == 1

    def test_delete_validation(self, kind):
        base = random_walk(8, SERIES_LENGTH, seed=65)
        dynamic = _build(kind, base, 4).dynamic()
        dynamic.insert(random_walk(1, SERIES_LENGTH, seed=66)[0])
        with pytest.raises(IndexError_, match="out of range"):
            dynamic.delete(9)
        with pytest.raises(IndexError_, match="out of range"):
            dynamic.delete(-1)
        dynamic.delete(2)
        with pytest.raises(IndexError_, match="already deleted"):
            dynamic.delete(2)
        dynamic.delete(8)  # the buffered row
        with pytest.raises(IndexError_, match="already deleted"):
            dynamic.delete(8)

    def test_insert_validation(self, kind):
        base = random_walk(8, SERIES_LENGTH, seed=67)
        dynamic = _build(kind, base, 4).dynamic()
        with pytest.raises(IndexError_, match="length 16"):
            dynamic.insert(np.zeros(16))
        with pytest.raises(IndexError_, match="single 1-D series"):
            dynamic.insert(np.zeros((2, SERIES_LENGTH)))
        with pytest.raises(IndexError_, match="length 16"):
            dynamic.insert_batch(np.zeros((3, 16)))
        with pytest.raises(IndexError_, match="non-empty 2-D"):
            dynamic.insert_batch(np.zeros((0, SERIES_LENGTH)))
        with pytest.raises(IndexError_, match="NaN or infinite"):
            dynamic.insert(np.full(SERIES_LENGTH, np.nan))
        assert dynamic.delta_count == 0  # nothing was partially buffered

    def test_constructor_validation(self):
        with pytest.raises(IndexError_, match="requires a built index"):
            DynamicIndex(MessiIndex())
        with pytest.raises(IndexError_, match="cannot wrap"):
            DynamicIndex(object())
        built = _build("messi", random_walk(8, SERIES_LENGTH, seed=68), 4)
        with pytest.raises(InvalidParameterError, match="compact_threshold"):
            DynamicIndex(built, compact_threshold=0.0)

    def test_bare_tree_is_supported(self):
        tree = TreeIndex(SAX(word_length=8, alphabet_size=16), leaf_size=4)
        tree.build(random_walk(10, SERIES_LENGTH, seed=69))
        dynamic = DynamicIndex(tree)
        assert dynamic.index_type == "tree"
        dynamic.insert(random_walk(1, SERIES_LENGTH, seed=70)[0])
        dynamic.compact()
        assert dynamic.num_base == 11

    def test_approximate_knn_refuses_pending_delta(self):
        index = _build("messi", random_walk(12, SERIES_LENGTH, seed=71), 4)
        dynamic = index.dynamic()
        dynamic.insert(random_walk(1, SERIES_LENGTH, seed=72)[0])
        searcher = dynamic._state.searcher
        with pytest.raises(SearchError, match="compact"):
            searcher.approximate_knn(random_walk(1, SERIES_LENGTH, seed=73)[0])


class TestCompactionMachinery:
    def test_compact_without_pending_writes_is_identity(self, kind):
        base = random_walk(9, SERIES_LENGTH, seed=81)
        dynamic = _build(kind, base, 4).dynamic()
        tree_before = dynamic.tree
        mapping = dynamic.compact()
        assert mapping.tolist() == list(range(9))
        assert dynamic.tree is tree_before  # no rebuild happened

    def test_compact_remaps_row_ids(self, kind):
        base = random_walk(6, SERIES_LENGTH, seed=82)
        dynamic = _build(kind, base, 4).dynamic()
        dynamic.insert_batch(random_walk(3, SERIES_LENGTH, seed=83))
        dynamic.delete(1)
        dynamic.delete(7)
        mapping = dynamic.compact()
        assert mapping.tolist() == [0, -1, 1, 2, 3, 4, 5, -1, 6]

    def test_delta_fraction_and_needs_compaction(self, kind):
        base = random_walk(10, SERIES_LENGTH, seed=84)
        dynamic = _build(kind, base, 4).dynamic(compact_threshold=0.3)
        assert dynamic.delta_fraction == 0.0
        assert not dynamic.needs_compaction
        dynamic.insert_batch(random_walk(2, SERIES_LENGTH, seed=85))
        dynamic.delete(0)  # tombstones count as pending write work too
        assert dynamic.delta_fraction == pytest.approx(0.3)
        assert dynamic.needs_compaction
        dynamic.compact()
        assert dynamic.delta_fraction == 0.0

    def test_background_compaction_serves_during_merge(self, kind):
        base = random_walk(40, SERIES_LENGTH, seed=86)
        queries = random_walk(4, SERIES_LENGTH, seed=87)
        dynamic = _build(kind, base, 8).dynamic()
        dynamic.insert_batch(random_walk(10, SERIES_LENGTH, seed=88))
        dynamic.delete(5)
        expected = [dynamic.knn(query, k=3) for query in queries]
        task = dynamic.compact_in_background()
        # Queries issued while the merge may still be running stay exact.
        during = [dynamic.knn(query, k=3) for query in queries]
        mapping = task.wait(timeout=30.0)
        assert task.done()
        after = [dynamic.knn(query, k=3) for query in queries]
        assert dynamic.delta_count == 0
        for before_result, during_result, after_result in zip(expected, during,
                                                              after):
            remapped = [int(mapping[row]) for row in before_result.indices]
            assert remapped == after_result.indices.tolist()
            assert np.array_equal(before_result.distances,
                                  after_result.distances)
            assert np.array_equal(during_result.distances,
                                  after_result.distances)

    def test_auto_compact_triggers_in_background(self, kind):
        base = random_walk(10, SERIES_LENGTH, seed=89)
        dynamic = _build(kind, base, 4).dynamic(compact_threshold=0.2,
                                                auto_compact=True)
        dynamic.insert_batch(random_walk(4, SERIES_LENGTH, seed=90))
        task = dynamic._compaction_task
        assert task is not None
        task.wait(timeout=30.0)
        assert dynamic.delta_count == 0
        assert dynamic.num_base == 14

    def test_compact_in_background_shares_running_task(self, kind):
        """A second request while a merge runs returns the same handle."""
        import threading

        base = random_walk(12, SERIES_LENGTH, seed=93)
        dynamic = _build(kind, base, 4).dynamic()
        dynamic.insert_batch(random_walk(3, SERIES_LENGTH, seed=94))
        gate = threading.Event()
        original = dynamic._state.tree.clone_unbuilt

        def gated_clone():
            gate.wait(10.0)
            return original()

        dynamic._state.tree.clone_unbuilt = gated_clone
        first = dynamic.compact_in_background()
        second = dynamic.compact_in_background()
        assert second is first  # the in-flight merge's handle is shared
        gate.set()
        first.wait(timeout=30.0)
        assert dynamic.delta_count == 0

    def test_failed_auto_compaction_surfaces_on_next_write(self, kind):
        """A crashed background merge re-raises instead of being swallowed."""
        base = random_walk(10, SERIES_LENGTH, seed=91)
        dynamic = _build(kind, base, 4).dynamic(compact_threshold=0.2,
                                                auto_compact=True)

        def broken_clone():
            raise RuntimeError("rebuild exploded")

        dynamic._state.tree.clone_unbuilt = broken_clone
        block = random_walk(4, SERIES_LENGTH, seed=92)
        dynamic.insert_batch(block)  # crosses the threshold, starts the merge
        dynamic._compaction_task._thread.join(30.0)
        with pytest.raises(RuntimeError, match="rebuild exploded"):
            dynamic.insert_batch(block)
        # The failure was consumed; serving and manual recovery still work.
        assert dynamic._compaction_task is None
        dynamic.knn(block[0], k=3)
        del dynamic._state.tree.clone_unbuilt  # un-break the instance
        dynamic.compact()
        assert dynamic.delta_count == 0
