"""Tests for the flat filter-and-refine path and the grouped leaf refinement.

The exact searcher has three refinement strategies (per-leaf, grouped leaves,
and a flat per-series path used when the tree degenerates into singleton
leaves).  These tests pin down that all strategies return identical, exact
answers and that the degenerate-tree detection behaves as documented.
"""

import numpy as np
import pytest

from repro.baselines.serial_scan import SerialScan
from repro.core.series import Dataset
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import clustered, smooth_signal
from repro.index.search import ExactSearcher
from repro.index.sofa import SofaIndex
from repro.index.tree import TreeIndex
from repro.transforms.sfa import SFA


@pytest.fixture(scope="module")
def degenerate_setup():
    """A smooth dataset on which the SFA tree shatters into singleton leaves."""
    values = clustered(smooth_signal, 500, 128, num_clusters=25,
                       within_cluster_noise=0.25, seed=5, cutoff_fraction=0.05)
    dataset = Dataset(values, name="smooth-degenerate")
    index_set, queries = dataset.split(15, rng=np.random.default_rng(1))
    tree = TreeIndex(SFA(word_length=16, alphabet_size=256, sample_fraction=1.0),
                     leaf_size=50)
    tree.build(index_set)
    return tree, index_set, queries


class TestFlatPathExactness:
    def test_tree_is_actually_degenerate(self, degenerate_setup):
        tree, _, _ = degenerate_setup
        assert tree.average_leaf_size < 1.5

    def test_flat_and_leafwise_paths_agree(self, degenerate_setup):
        tree, index_set, queries = degenerate_setup
        flat = ExactSearcher(tree, flat_refinement_threshold=1.5)
        leafwise = ExactSearcher(tree, flat_refinement_threshold=0.0)
        for query in queries.values:
            flat_result = flat.knn(query, k=3)
            leafwise_result = leafwise.knn(query, k=3)
            assert np.allclose(flat_result.distances, leafwise_result.distances)
            assert np.array_equal(flat_result.indices, leafwise_result.indices)

    def test_flat_path_matches_brute_force(self, degenerate_setup):
        tree, index_set, queries = degenerate_setup
        searcher = ExactSearcher(tree)
        scan = SerialScan().build(index_set)
        for query in queries.values:
            _, expected = scan.knn(query, k=5)
            result = searcher.knn(query, k=5)
            assert np.allclose(result.distances, expected, atol=1e-8)

    def test_flat_path_has_no_duplicate_answers(self, degenerate_setup):
        tree, _, queries = degenerate_setup
        searcher = ExactSearcher(tree)
        result = searcher.knn(queries[0], k=10)
        assert len(set(result.indices.tolist())) == 10

    def test_flat_path_records_block_work(self, degenerate_setup):
        tree, _, queries = degenerate_setup
        searcher = ExactSearcher(tree, flat_refinement_threshold=1.5)
        stats = searcher.knn(queries[0], k=1).stats
        assert stats.series_lower_bounds == tree.num_series
        assert stats.exact_distances >= 1
        assert len(stats.leaf_times) >= 1


class TestAllSeriesLowerBounds:
    def test_bounds_are_valid_for_every_series(self, degenerate_setup):
        from repro.core.distance import squared_euclidean_batch

        tree, index_set, queries = degenerate_setup
        query = queries[0]
        summary = tree.summarization.transform(query)
        bounds, rows = tree.all_series_lower_bounds(summary)
        true = squared_euclidean_batch(query, index_set.values[rows])
        assert bounds.shape == rows.shape
        assert np.all(bounds <= true + 1e-9)

    def test_rows_cover_every_series_once(self, degenerate_setup):
        tree, _, queries = degenerate_setup
        summary = tree.summarization.transform(queries[0])
        _, rows = tree.all_series_lower_bounds(summary)
        assert np.array_equal(np.sort(rows), np.arange(tree.num_series))


class TestGroupedRefinement:
    def test_grouped_path_is_exact_on_clustered_data(self):
        """On a dataset with many small (but not singleton) leaves the grouped
        refinement path is taken and must stay exact."""
        dataset = load_dataset("OBS", num_series=800, seed=9)
        index_set, queries = dataset.split(10, rng=np.random.default_rng(2))
        index = SofaIndex(leaf_size=100).build(index_set)
        scan = SerialScan().build(index_set)
        for query in queries.values:
            _, expected = scan.nearest_neighbor(query)
            assert index.nearest_neighbor(query).nearest_distance == pytest.approx(
                expected, abs=1e-8)

    def test_threshold_zero_disables_flat_path(self, degenerate_setup):
        tree, _, queries = degenerate_setup
        searcher = ExactSearcher(tree, flat_refinement_threshold=0.0)
        stats = searcher.knn(queries[0], k=1).stats
        # The leaf-wise path reports visited leaves; the flat path does not.
        assert stats.leaves_visited >= 1
