"""Sharded scatter-gather: bit-identity, global ids, persistence, lifecycle.

The healthy-path contract under test (see :mod:`repro.index.sharded`): a
:class:`ShardedIndex` over N shards answers ``knn`` / ``knn_batch``
**bit-identically** to one unsharded index built over the same rows — same
neighbour ids, same distance bits, for every shard count, every ``k``, and
under ties.  Global row ids survive inserts, deletes and per-shard
compaction, and a save/load round trip reproduces the same answers.
Fault-path behaviour (retries, quarantine, degraded answers) lives in
``tests/reliability/test_shard_faults.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    IndexError_,
    InvalidParameterError,
    ReadOnlyIndexError,
    SearchError,
    ValidationError,
)
from repro.datasets.synthetic import random_walk
from repro.index.dynamic import DynamicIndex
from repro.index.shard_health import HealthPolicy
from repro.index.sharded import ShardedIndex
from repro.index.sofa import SofaIndex

SERIES_LENGTH = 48


def _factory():
    return SofaIndex(word_length=8, alphabet_size=16, leaf_size=12)


def _rows(count: int, seed: int) -> np.ndarray:
    return random_walk(count, SERIES_LENGTH, seed=seed)


@pytest.fixture(scope="module")
def base_rows() -> np.ndarray:
    return _rows(170, seed=7001)


@pytest.fixture(scope="module")
def queries() -> np.ndarray:
    return _rows(6, seed=7002)


def _build_sharded(values, path, num_shards, **options) -> ShardedIndex:
    options.setdefault("health", HealthPolicy(auto_probe=False))
    return ShardedIndex.build(values, path, num_shards=num_shards,
                              index_factory=_factory, **options)


def _assert_same_result(observed, expected) -> None:
    np.testing.assert_array_equal(observed.indices, expected.indices)
    np.testing.assert_array_equal(observed.distances, expected.distances)


class TestHealthyBitIdentity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_knn_matches_unsharded(self, tmp_path, base_rows, queries,
                                   num_shards, k):
        reference = _factory().build(base_rows)
        sharded = _build_sharded(base_rows, tmp_path / "s", num_shards)
        try:
            for query in queries:
                _assert_same_result(sharded.knn(query, k=k),
                                    reference.knn(query, k=k))
        finally:
            sharded.close()

    @pytest.mark.parametrize("num_shards", [2, 5])
    def test_knn_batch_matches_unsharded(self, tmp_path, base_rows, queries,
                                         num_shards):
        reference = _factory().build(base_rows)
        expected = reference.knn_batch(queries, k=4, num_workers=1)
        sharded = _build_sharded(base_rows, tmp_path / "s", num_shards)
        try:
            observed = sharded.knn_batch(queries, k=4)
            for got, want in zip(observed, expected):
                _assert_same_result(got, want)
        finally:
            sharded.close()

    def test_ties_break_identically(self, tmp_path, queries):
        """Duplicated rows force exact distance ties across shard boundaries;
        the merge's (distance, row) total order must match the unsharded
        engine's tie-breaking bit for bit."""
        unique = _rows(40, seed=7003)
        values = np.concatenate([unique, unique, unique[:10]], axis=0)
        reference = _factory().build(values)
        sharded = _build_sharded(values, tmp_path / "ties", 3)
        try:
            for query in queries:
                _assert_same_result(sharded.knn(query, k=8),
                                    reference.knn(query, k=8))
        finally:
            sharded.close()

    def test_num_workers_is_accepted_and_irrelevant(self, tmp_path, base_rows,
                                                    queries):
        sharded = _build_sharded(base_rows, tmp_path / "s", 3)
        try:
            baseline = sharded.knn(queries[0], k=5)
            for workers in (1, 2, 8):
                _assert_same_result(sharded.knn(queries[0], k=5,
                                                num_workers=workers),
                                    baseline)
        finally:
            sharded.close()


class TestMutationsAndGlobalIds:
    def test_insert_delete_match_unsharded_dynamic(self, tmp_path, base_rows,
                                                   queries):
        """The sharded wrapper assigns the same global ids in arrival order
        as one unsharded DynamicIndex, so mutated answers stay identical."""
        reference = _factory().build(base_rows).dynamic()
        sharded = _build_sharded(base_rows, tmp_path / "s", 4)
        try:
            extra = _rows(9, seed=7004)
            assert sharded.insert_batch(extra).tolist() == \
                reference.insert_batch(extra).tolist()
            single = _rows(1, seed=7005)[0]
            assert sharded.insert(single) == reference.insert_batch(
                single[np.newaxis])[0]
            for row in (3, 171, 40):
                sharded.delete(row)
                reference.delete(row)
            assert sharded.num_surviving == reference.num_surviving
            for query in queries:
                _assert_same_result(sharded.knn(query, k=6),
                                    reference.knn(query, k=6))
        finally:
            sharded.close()
            reference.close()

    def test_compact_keeps_global_ids_stable(self, tmp_path, base_rows,
                                             queries):
        """Unlike the unsharded engine (whose compaction renumbers rows),
        sharded compaction preserves global ids: answers before and after
        compact name the same rows."""
        sharded = _build_sharded(base_rows, tmp_path / "s", 4,
                                 degraded="forbid")
        try:
            sharded.insert_batch(_rows(6, seed=7006))
            for row in (0, 50, 100, 172):
                sharded.delete(row)
            before = [sharded.knn(query, k=5) for query in queries]
            dropped = sharded.compact()
            assert sum(dropped.values()) == 4
            after = [sharded.knn(query, k=5) for query in queries]
            for got, want in zip(after, before):
                _assert_same_result(got, want)
        finally:
            sharded.close()

    def test_delete_unknown_row_is_typed(self, tmp_path, base_rows):
        sharded = _build_sharded(base_rows, tmp_path / "s", 2)
        try:
            with pytest.raises(IndexError_, match="not mapped"):
                sharded.delete(10_000)
        finally:
            sharded.close()

    def test_read_only_rejects_writes(self, tmp_path, base_rows):
        _build_sharded(base_rows, tmp_path / "s", 2).close()
        sharded = ShardedIndex.load(tmp_path / "s", writable=False,
                                    health=HealthPolicy(auto_probe=False))
        try:
            with pytest.raises(ReadOnlyIndexError):
                sharded.insert_batch(_rows(1, seed=1))
            with pytest.raises(ReadOnlyIndexError):
                sharded.delete(0)
            with pytest.raises(ReadOnlyIndexError):
                sharded.compact()
        finally:
            sharded.close()


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, base_rows, queries):
        sharded = _build_sharded(base_rows, tmp_path / "s", 3)
        try:
            sharded.insert_batch(_rows(5, seed=7007))
            sharded.delete(2)
            expected = [sharded.knn(query, k=4) for query in queries]
            sharded.save()
        finally:
            sharded.close()
        reloaded = ShardedIndex.load(tmp_path / "s",
                                     health=HealthPolicy(auto_probe=False))
        try:
            assert reloaded.num_shards == 3
            assert reloaded.num_surviving == len(base_rows) + 5 - 1
            for query, want in zip(queries, expected):
                _assert_same_result(reloaded.knn(query, k=4), want)
            # New inserts continue the global id sequence past the reload.
            assert reloaded.insert_batch(_rows(1, seed=7008))[0] == \
                len(base_rows) + 5
        finally:
            reloaded.close()

    def test_eager_load_works_when_all_shards_healthy(self, tmp_path,
                                                      base_rows, queries):
        _build_sharded(base_rows, tmp_path / "s", 3).close()
        sharded = ShardedIndex.load(tmp_path / "s", lazy=False,
                                    health=HealthPolicy(auto_probe=False))
        try:
            assert sharded.shard_states() == ["healthy"] * 3
            assert sharded.knn(queries[0], k=2).stats.coverage == 1.0
        finally:
            sharded.close()


class TestValidation:
    def test_build_parameters(self, tmp_path, base_rows):
        with pytest.raises(InvalidParameterError, match="num_shards"):
            ShardedIndex.build(base_rows, tmp_path / "a", num_shards=0,
                               index_factory=_factory)
        with pytest.raises(InvalidParameterError, match="non-empty shards"):
            ShardedIndex.build(base_rows[:2], tmp_path / "b", num_shards=5,
                               index_factory=_factory)

    def test_query_validation_is_typed(self, tmp_path, base_rows):
        sharded = _build_sharded(base_rows, tmp_path / "s", 2)
        try:
            with pytest.raises(ValidationError):
                sharded.knn(np.zeros(7), k=1)
            with pytest.raises(SearchError, match="k must be >= 1"):
                sharded.knn(np.zeros(SERIES_LENGTH), k=0)
            with pytest.raises(SearchError, match="surviving"):
                sharded.knn(_rows(1, seed=1)[0], k=10_000)
            with pytest.raises(InvalidParameterError, match="degraded"):
                sharded.knn(_rows(1, seed=1)[0], k=1, degraded="maybe")
            with pytest.raises(ValidationError):
                sharded.knn_batch(np.zeros((2, 7)), k=1)
        finally:
            sharded.close()

    def test_stats_carry_shard_counters(self, tmp_path, base_rows, queries):
        sharded = _build_sharded(base_rows, tmp_path / "s", 4)
        try:
            stats = sharded.knn(queries[0], k=3).stats
            assert stats.shards_total == 4
            assert stats.shards_answered == 4
            assert stats.coverage == 1.0
            assert stats.partial is False
        finally:
            sharded.close()
