"""Tests for tree nodes."""

import numpy as np

from repro.index.node import InnerNode, LeafNode, root_child_word


def _leaf(size: int = 3, word_length: int = 4) -> LeafNode:
    return LeafNode(
        symbols=np.zeros(word_length, dtype=np.int64),
        bits=np.ones(word_length, dtype=np.int64),
        indices=np.arange(size, dtype=np.int64),
        words=np.zeros((size, word_length), dtype=np.int64),
    )


class TestLeafNode:
    def test_is_leaf(self):
        assert _leaf().is_leaf()

    def test_size(self):
        assert _leaf(size=7).size == 7

    def test_depth_is_one(self):
        assert _leaf().depth() == 1

    def test_iter_leaves_yields_itself(self):
        leaf = _leaf()
        assert list(leaf.iter_leaves()) == [leaf]

    def test_count_nodes(self):
        assert _leaf().count_nodes() == 1

    def test_word_length(self):
        assert _leaf(word_length=6).word_length == 6


class TestInnerNode:
    def _tree(self):
        left = _leaf(size=2)
        right_left = _leaf(size=1)
        right_right = _leaf(size=4)
        right = InnerNode(symbols=np.zeros(4, dtype=np.int64),
                          bits=np.ones(4, dtype=np.int64),
                          split_dimension=1, left=right_left, right=right_right)
        root = InnerNode(symbols=np.zeros(4, dtype=np.int64),
                         bits=np.ones(4, dtype=np.int64),
                         split_dimension=0, left=left, right=right)
        return root, left, right_left, right_right

    def test_is_not_leaf(self):
        root, *_ = self._tree()
        assert not root.is_leaf()

    def test_iter_leaves_in_order(self):
        root, left, right_left, right_right = self._tree()
        assert list(root.iter_leaves()) == [left, right_left, right_right]

    def test_depth(self):
        root, *_ = self._tree()
        assert root.depth() == 3

    def test_count_nodes(self):
        root, *_ = self._tree()
        assert root.count_nodes() == 5

    def test_children_skips_missing(self):
        node = InnerNode(symbols=np.zeros(2, dtype=np.int64),
                         bits=np.zeros(2, dtype=np.int64),
                         split_dimension=0, left=_leaf(), right=None)
        assert len(node.children) == 1


class TestRootChildWord:
    def test_key_is_tuple_of_ints(self):
        key = root_child_word(np.array([1, 0, 1]), np.ones(3, dtype=np.int64))
        assert key == (1, 0, 1)
        assert all(isinstance(value, int) for value in key)

    def test_keys_are_hashable_and_distinct(self):
        first = root_child_word(np.array([1, 0]), None)
        second = root_child_word(np.array([0, 1]), None)
        assert first != second
        assert len({first, second}) == 2
