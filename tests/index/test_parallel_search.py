"""Tests for the intra-query parallel exact search engine.

The contract under test: ``knn(..., num_workers=n)`` returns, for every
worker count, *bit-identical* results to the sequential single-worker engine
— identical neighbour indices and distances — on the tree path, the flat
path, exact-tie datasets, long-series (early-abandoning kernel) builds and
dynamic indexes mid-ingest; and the shared best-so-far heap keeps the k
smallest offers under the total order (distance², row) no matter how many
threads hammer it.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.messi import MessiIndex
from repro.index.search import ExactSearcher, SearchStats, SharedKnnHeap, _KnnHeap
from repro.index.sofa import SofaIndex
from repro.index.stats import merge_search_stats

WORKER_COUNTS = (2, 3, 5)


def _assert_identical(reference, candidate):
    assert np.array_equal(reference.indices, candidate.indices)
    assert np.array_equal(reference.distances, candidate.distances)


@pytest.fixture(scope="module")
def built_indexes(clustered_index_and_queries):
    index_set, queries = clustered_index_and_queries
    return {
        "SOFA": SofaIndex(leaf_size=40).build(index_set),
        "MESSI": MessiIndex(leaf_size=40).build(index_set),
    }, queries


class TestWorkerCountDeterminism:
    @pytest.mark.parametrize("label", ["SOFA", "MESSI"])
    @pytest.mark.parametrize("k", [1, 5, 10])
    def test_tree_path_bit_identical(self, built_indexes, label, k):
        indexes, queries = built_indexes
        index = indexes[label]
        for query in queries.values[:8]:
            reference = index.knn(query, k=k, num_workers=1)
            for num_workers in WORKER_COUNTS:
                _assert_identical(reference,
                                  index.knn(query, k=k, num_workers=num_workers))

    @pytest.mark.parametrize("k", [1, 7])
    def test_flat_path_bit_identical(self, built_indexes, k):
        indexes, queries = built_indexes
        searcher = ExactSearcher(indexes["SOFA"].tree,
                                 flat_refinement_threshold=np.inf)
        for query in queries.values[:8]:
            reference = searcher.knn(query, k=k, num_workers=1)
            for num_workers in WORKER_COUNTS:
                _assert_identical(reference,
                                  searcher.knn(query, k=k,
                                               num_workers=num_workers))

    def test_exact_ties_bit_identical(self):
        """Duplicated series force exact distance ties; every worker count
        must keep the same rows (smaller row wins under the total order)."""
        rng = np.random.default_rng(7)
        base = rng.normal(size=(40, 64)).cumsum(axis=1)
        data = np.vstack([base, base, base])
        queries = base[:10] + rng.normal(scale=0.05, size=(10, 64))
        index = SofaIndex(leaf_size=20).build(data)
        for query in queries:
            reference = index.knn(query, k=5, num_workers=1)
            for num_workers in WORKER_COUNTS:
                _assert_identical(reference,
                                  index.knn(query, k=5,
                                            num_workers=num_workers))

    def test_indexed_series_query_is_exact_tie_at_zero(self, built_indexes):
        """A query equal to an indexed series: distance 0, tight lower bound."""
        indexes, _ = built_indexes
        index = indexes["SOFA"]
        query = np.asarray(index.tree.dataset.values[17])
        for num_workers in (1,) + WORKER_COUNTS:
            result = index.knn(query, k=3, num_workers=num_workers)
            assert result.nearest_index == 17
            assert result.nearest_distance == pytest.approx(0.0, abs=1e-9)

    def test_long_series_use_early_abandon_kernel(self):
        """Long-series builds refine through the blocked early-abandoning
        kernel; answers stay bit-identical across worker counts and match a
        searcher forced onto the plain kernel."""
        rng = np.random.default_rng(21)
        data = rng.normal(size=(90, 1100)).cumsum(axis=1)
        index = SofaIndex(leaf_size=30).build(data)
        abandoning = ExactSearcher(index.tree)
        assert abandoning._early_abandon  # 1100 >= the default length gate
        plain = ExactSearcher(index.tree, early_abandon_length=10_000)
        assert not plain._early_abandon
        queries = data[:5] + rng.normal(scale=0.05, size=(5, 1100))
        for query in queries:
            reference = abandoning.knn(query, k=4, num_workers=1)
            _assert_identical(reference, plain.knn(query, k=4, num_workers=1))
            for num_workers in WORKER_COUNTS:
                _assert_identical(reference,
                                  abandoning.knn(query, k=4,
                                                 num_workers=num_workers))

    def test_duplicate_query_ties_at_zero_across_workers(self):
        """Regression: hundreds of exact copies of the query make lower bound
        == distance == final threshold == 0 span many work items; strict
        pruning against the live shared threshold used to let thread timing
        decide whether a smaller-row tie winner was refined at all.  The
        tie-tolerant admission (``_admissible``) must keep every worker
        count — and every trial — on the sequential answer."""
        rng = np.random.default_rng(13)
        length = 1100  # long series: the early-abandoning kernel is live too
        noise = rng.normal(size=(50, length)).cumsum(axis=1)
        probe = rng.normal(size=length).cumsum()
        data = np.vstack([noise, np.tile(probe, (300, 1))])
        index = SofaIndex(leaf_size=20).build(data)
        for flat_threshold in (0.0, np.inf):  # tree path and flat path
            searcher = ExactSearcher(index.tree,
                                     flat_refinement_threshold=flat_threshold)
            expected = searcher.knn(probe, k=3, num_workers=1)
            # The duplicates sit at distance 0; smallest rows win the tie.
            assert expected.indices.tolist() == [50, 51, 52]
            for _ in range(10):
                for num_workers in (2, 4):
                    _assert_identical(expected,
                                      searcher.knn(probe, k=3,
                                                   num_workers=num_workers))

    @given(seed=st.integers(min_value=0, max_value=10_000),
           k=st.integers(min_value=1, max_value=8),
           num_workers=st.sampled_from(WORKER_COUNTS),
           dynamic=st.booleans(),
           flat=st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_property_bit_identical_across_workers(self, seed, k, num_workers,
                                                   dynamic, flat):
        """Random data with duplicate rows (exact ties), optionally flat
        refinement and a mid-ingest dynamic overlay with tombstones on both
        sides of the base/delta boundary: every worker count answers like the
        sequential engine, bit for bit."""
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(50, 64)).cumsum(axis=1)
        data = np.vstack([base, base[:20]])  # duplicates force exact ties
        threshold = np.inf if flat else 0.0
        index = SofaIndex(leaf_size=20).build(data)
        if dynamic:
            target = index.dynamic()
            target.insert_batch(rng.normal(size=(15, 64)).cumsum(axis=1))
            target.delete(int(rng.integers(0, 70)))        # base tombstone
            target.delete(70 + int(rng.integers(0, 15)))   # delta tombstone
            searcher = ExactSearcher(target.tree, flat_refinement_threshold=threshold,
                                     delta_source=target._state.capture)
        else:
            searcher = ExactSearcher(index.tree,
                                     flat_refinement_threshold=threshold)
        queries = base[:4] + rng.normal(scale=0.05, size=(4, 64))
        for query in queries:
            reference = searcher.knn(query, k=k, num_workers=1)
            _assert_identical(reference,
                              searcher.knn(query, k=k, num_workers=num_workers))


class TestDynamicParallel:
    """The delta pseudo-leaf is just another work item on the shared queue."""

    @pytest.fixture()
    def mid_ingest(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        dynamic = SofaIndex(leaf_size=40).build(index_set).dynamic()
        rng = np.random.default_rng(3)
        dynamic.insert_batch(rng.normal(size=(40, index_set.series_length))
                             .cumsum(axis=1))
        dynamic.delete(5)
        dynamic.delete(index_set.num_series + 7)
        return dynamic, queries

    @pytest.mark.parametrize("k", [1, 6])
    def test_mid_ingest_bit_identical(self, mid_ingest, k):
        dynamic, queries = mid_ingest
        for query in queries.values[:8]:
            reference = dynamic.knn(query, k=k, num_workers=1)
            for num_workers in WORKER_COUNTS:
                _assert_identical(reference,
                                  dynamic.knn(query, k=k,
                                              num_workers=num_workers))

    def test_inserted_series_found_by_parallel_search(self, mid_ingest):
        dynamic, _ = mid_ingest
        probe = dynamic._state.delta_values.view[3]
        result = dynamic.knn(probe, k=1, num_workers=4)
        assert result.nearest_index == dynamic.num_base + 3
        assert result.nearest_distance == pytest.approx(0.0, abs=1e-9)

    def test_tombstoned_rows_never_answered(self, mid_ingest):
        dynamic, queries = mid_ingest
        dead = {5, dynamic.num_base + 7}
        for num_workers in (1,) + WORKER_COUNTS:
            for query in queries.values[:5]:
                result = dynamic.knn(query, k=10, num_workers=num_workers)
                assert not dead.intersection(result.indices.tolist())


class TestBatchFallback:
    """knn_batch puts spare workers on intra-query parallelism."""

    def test_small_batch_matches_per_query(self, built_indexes):
        indexes, queries = built_indexes
        index = indexes["SOFA"]
        small_batch = queries.values[:2]
        looped = [index.knn(query, k=4) for query in small_batch]
        batched = index.knn_batch(small_batch, k=4, num_workers=8)
        for reference, candidate in zip(looped, batched):
            _assert_identical(reference, candidate)

    def test_single_query_batch_with_pool(self, built_indexes):
        indexes, queries = built_indexes
        index = indexes["MESSI"]
        batched = index.knn_batch(queries.values[:1], k=3, num_workers=4)
        assert len(batched) == 1
        _assert_identical(index.knn(queries[0], k=3), batched[0])

    def test_fallback_records_worker_count(self, built_indexes):
        indexes, queries = built_indexes
        index = indexes["SOFA"]
        batched = index.knn_batch(queries.values[:2], k=2, num_workers=6)
        for result in batched:
            assert result.stats.num_workers == 6

    def test_large_batch_still_shards(self, built_indexes):
        """Batches at least as large as the pool keep the sharded engine."""
        indexes, queries = built_indexes
        index = indexes["SOFA"]
        batched = index.knn_batch(queries.values, k=3, num_workers=4)
        looped = [index.knn(query, k=3) for query in queries.values]
        for reference, candidate in zip(looped, batched):
            _assert_identical(reference, candidate)


class TestSharedHeapStress:
    def test_concurrent_offers_keep_k_smallest(self):
        """Many threads hammering one shared heap retain exactly the k
        smallest (distance², row) pairs, as a sequential heap does."""
        rng = np.random.default_rng(0)
        k = 16
        num_blocks, block_size = 300, 64
        rows = rng.permutation(num_blocks * block_size).reshape(num_blocks,
                                                               block_size)
        # A coarse distance grid forces plenty of exact ties across blocks.
        squared = (rng.integers(0, 40, size=(num_blocks, block_size))
                   .astype(np.float64) / 7.0)

        sequential = _KnnHeap(k)
        for block in range(num_blocks):
            sequential.offer_block(squared[block], rows[block])

        shared = SharedKnnHeap(k)
        tickets = iter(range(num_blocks))
        lock = threading.Lock()

        def hammer():
            while True:
                with lock:
                    block = next(tickets, None)
                if block is None:
                    return
                shared.offer_block(squared[block], rows[block])

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert shared.sorted_items() == sequential.sorted_items()
        expected = sorted(zip(squared.ravel(), rows.ravel()))[:k]
        assert shared.sorted_items() == [(d, int(r)) for d, r in expected]

    def test_threshold_only_tightens(self):
        heap = SharedKnnHeap(2)
        assert heap.threshold == np.inf
        heap.offer_block(np.array([4.0, 9.0]), np.array([1, 2]))
        assert heap.threshold == 9.0
        heap.offer_block(np.array([25.0]), np.array([3]))  # above: a no-op
        assert heap.threshold == 9.0
        heap.offer_block(np.array([1.0]), np.array([4]))
        assert heap.threshold == 4.0

    def test_tie_at_threshold_still_enters(self):
        """A candidate at exactly the threshold with a smaller row must
        displace the larger row — the pre-filter may not drop it."""
        heap = SharedKnnHeap(1)
        heap.offer_block(np.array([2.0]), np.array([9]))
        heap.offer_block(np.array([2.0]), np.array([3]))
        assert heap.sorted_items() == [(2.0, 3)]


class TestStatsMerging:
    def test_merge_is_deterministic_and_additive(self):
        into = SearchStats(num_series=100, num_workers=3, approximate_time=0.5,
                           traversal_time=0.25)
        parts = [
            SearchStats(leaves_visited=2, exact_distances=10,
                        series_lower_bounds=20, leaf_times=[0.1, 0.2]),
            SearchStats(leaves_visited=1, leaves_pruned_in_queue=4,
                        exact_distances=5, series_lower_bounds=5,
                        leaf_times=[0.3]),
        ]
        merged = merge_search_stats(into, parts)
        assert merged is into
        assert merged.leaves_visited == 3
        assert merged.leaves_pruned_in_queue == 4
        assert merged.exact_distances == 15
        assert merged.series_lower_bounds == 25
        assert merged.leaf_times == [0.1, 0.2, 0.3]
        # The sequential phases belong to the query-level stats.
        assert merged.approximate_time == 0.5
        assert merged.traversal_time == 0.25
        assert merged.num_workers == 3

    def test_parallel_stats_report_all_work(self, built_indexes):
        indexes, queries = built_indexes
        index = indexes["SOFA"]
        result = index.knn(queries[0], k=3, num_workers=3)
        stats = result.stats
        assert stats.num_workers == 3
        assert stats.leaves_visited >= 1
        assert stats.exact_distances >= 3
        assert stats.series_lower_bounds >= stats.exact_distances
        assert stats.num_series == index.tree.num_series
