"""Property tests for the parallel/vectorized construction pipeline.

The contract of :meth:`repro.index.tree.TreeIndex.build` is that the built
index is *bit-identical* no matter how it was built: vectorized frontier
builder vs the seed recursive builder, one worker vs many.  Same tree shape,
same leaf payloads, same directory arrays, same snapshots on disk, same
``knn`` / ``knn_batch`` answers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.series import Dataset
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import random_walk
from repro.index.messi import MessiIndex
from repro.index.persistence import MANIFEST_NAME
from repro.index.sofa import SofaIndex
from repro.index.tree import BUILDERS, TreeIndex
from repro.transforms.sax import SAX

INDEXES = {"SOFA": SofaIndex, "MESSI": MessiIndex}

DIRECTORY_ATTRIBUTES = ("_leaf_lower", "_leaf_upper", "_series_lower",
                        "_series_upper", "_series_rows", "_leaf_sizes",
                        "_leaf_offsets")


def make_index(kind: str, leaf_size: int = 25, num_workers=None,
               builder: str = "vectorized") -> "SofaIndex | MessiIndex":
    common = dict(word_length=8, alphabet_size=16, leaf_size=leaf_size,
                  num_workers=num_workers, builder=builder)
    if kind == "SOFA":
        return SofaIndex(sample_fraction=1.0, **common)
    return MessiIndex(**common)


def assert_identical_trees(reference: TreeIndex, candidate: TreeIndex) -> None:
    """Shape, node words, leaf payloads and directory arrays all match."""
    assert list(reference.root_children) == list(candidate.root_children)
    for key in reference.root_children:
        expected_nodes = list(reference.root_children[key].iter_nodes())
        actual_nodes = list(candidate.root_children[key].iter_nodes())
        assert len(expected_nodes) == len(actual_nodes)
        for expected, actual in zip(expected_nodes, actual_nodes):
            assert expected.is_leaf() == actual.is_leaf()
            assert np.array_equal(expected.symbols, actual.symbols)
            assert np.array_equal(expected.bits, actual.bits)
            if not expected.is_leaf():
                assert expected.split_dimension == actual.split_dimension
    expected_leaves = reference.leaves()
    actual_leaves = candidate.leaves()
    assert len(expected_leaves) == len(actual_leaves)
    for expected, actual in zip(expected_leaves, actual_leaves):
        for attribute in ("indices", "words", "lower", "upper"):
            assert np.array_equal(getattr(expected, attribute),
                                  getattr(actual, attribute)), attribute
    for attribute in DIRECTORY_ATTRIBUTES:
        assert np.array_equal(getattr(reference, attribute),
                              getattr(candidate, attribute)), attribute


def assert_identical_snapshots(first, second) -> None:
    """Two snapshot directories hold the same arrays and the same manifest
    (modulo the recorded timings, which are measurements, not index state)."""
    first_files = sorted(path.name for path in first.iterdir())
    second_files = sorted(path.name for path in second.iterdir())
    assert first_files == second_files
    for name in first_files:
        if name == MANIFEST_NAME:
            with open(first / name, encoding="utf-8") as handle:
                first_manifest = json.load(handle)
            with open(second / name, encoding="utf-8") as handle:
                second_manifest = json.load(handle)
            first_manifest.pop("timings")
            second_manifest.pop("timings")
            # The whole-manifest checksum covers the timings, so it differs
            # between otherwise identical snapshots.
            first_manifest.pop("manifest_checksum", None)
            second_manifest.pop("manifest_checksum", None)
            assert first_manifest == second_manifest
        else:
            assert (first / name).read_bytes() == (second / name).read_bytes(), name


@pytest.fixture(scope="module")
def clustered_split():
    dataset = load_dataset("LenDB", num_series=400, seed=29)
    return dataset.split(10, rng=np.random.default_rng(1))


class TestBuilderEquivalence:
    """Vectorized frontier builder vs the seed recursive reference."""

    @pytest.mark.parametrize("policy", ["balanced", "round-robin"])
    @pytest.mark.parametrize("leaf_size", [1, 10, 1000])
    def test_tree_index_builders_are_bit_identical(self, walk_dataset, policy,
                                                   leaf_size):
        trees = {
            builder: TreeIndex(SAX(word_length=8, alphabet_size=16),
                               leaf_size=leaf_size, split_policy=policy,
                               builder=builder).build(walk_dataset)
            for builder in BUILDERS
        }
        assert_identical_trees(trees["recursive"], trees["vectorized"])

    @pytest.mark.parametrize("kind", list(INDEXES))
    def test_wrapper_builders_answer_identically(self, clustered_split, kind):
        index_set, queries = clustered_split
        reference = make_index(kind, builder="recursive").build(index_set)
        candidate = make_index(kind).build(index_set)
        assert candidate.tree.builder == "vectorized"
        assert_identical_trees(reference.tree, candidate.tree)
        for query in queries.values:
            expected = reference.knn(query, k=5)
            actual = candidate.knn(query, k=5)
            assert np.array_equal(expected.indices, actual.indices)
            assert np.array_equal(expected.distances, actual.distances)


class TestWorkerCountInvariance:
    """build(num_workers=4) is bit-identical to build(num_workers=1)."""

    @pytest.mark.parametrize("kind", list(INDEXES))
    def test_trees_snapshots_and_batches_match(self, clustered_split, tmp_path,
                                               kind):
        index_set, queries = clustered_split
        serial = make_index(kind, num_workers=1).build(index_set)
        threaded = make_index(kind).build(index_set, num_workers=4)
        assert_identical_trees(serial.tree, threaded.tree)

        serial.save(tmp_path / "serial")
        threaded.save(tmp_path / "threaded")
        assert_identical_snapshots(tmp_path / "serial", tmp_path / "threaded")

        for k in (1, 5):
            for expected, actual in zip(serial.knn_batch(queries.values, k=k),
                                        threaded.knn_batch(queries.values, k=k)):
                assert np.array_equal(expected.indices, actual.indices)
                assert np.array_equal(expected.distances, actual.distances)

    @pytest.mark.parametrize("kind", list(INDEXES))
    def test_single_leaf_tree(self, kind):
        """All-positive unnormalized values share every top SAX bit: one root
        child, one leaf — identical for any worker count and builder.  (SFA
        words fan out even here, so the single-leaf shape is asserted for
        MESSI only; the equivalences hold for both.)"""
        values = np.abs(np.random.default_rng(11).normal(5.0, 0.5,
                                                         size=(30, 64))) + 1.0
        dataset = Dataset(values, name="positive", normalize=False)
        serial = make_index(kind, leaf_size=100, num_workers=1).build(dataset)
        threaded = make_index(kind, leaf_size=100, num_workers=4).build(dataset)
        reference = make_index(kind, leaf_size=100,
                               builder="recursive").build(dataset)
        if kind == "MESSI":
            assert len(serial.tree.leaf_nodes) == 1
        assert_identical_trees(serial.tree, threaded.tree)
        assert_identical_trees(reference.tree, serial.tree)

    @pytest.mark.parametrize("kind", list(INDEXES))
    def test_leaf_size_one(self, walk_dataset, kind):
        serial = make_index(kind, leaf_size=1, num_workers=1).build(walk_dataset)
        threaded = make_index(kind, leaf_size=1, num_workers=4).build(walk_dataset)
        assert_identical_trees(serial.tree, threaded.tree)
        query = walk_dataset.values[3]
        assert np.array_equal(serial.knn(query, k=3).indices,
                              threaded.knn(query, k=3).indices)

    @pytest.mark.parametrize("kind", list(INDEXES))
    def test_all_duplicate_words(self, kind):
        """Identical series produce identical words: the root child cannot be
        split and becomes one oversized leaf, for every worker count."""
        row = np.sin(np.linspace(0.0, 6.0, 64))
        dataset = Dataset(np.tile(row, (40, 1)), name="dup", normalize=False)
        serial = make_index(kind, leaf_size=5, num_workers=1).build(dataset)
        threaded = make_index(kind, leaf_size=5, num_workers=4).build(dataset)
        reference = make_index(kind, leaf_size=5,
                               builder="recursive").build(dataset)
        assert len(serial.tree.leaf_nodes) == 1
        assert serial.tree.leaf_nodes[0].size == 40
        assert_identical_trees(serial.tree, threaded.tree)
        assert_identical_trees(reference.tree, serial.tree)


@given(seed=st.integers(min_value=0, max_value=2**16),
       num_series=st.integers(min_value=2, max_value=60),
       leaf_size=st.integers(min_value=1, max_value=30),
       num_workers=st.sampled_from([2, 3, 4]))
@settings(max_examples=15, deadline=None)
def test_build_invariance_property(seed, num_series, leaf_size, num_workers):
    """For random small datasets, builders and worker counts all agree."""
    dataset = Dataset(random_walk(num_series, 32, seed=seed), name="prop")
    summarization = SAX(word_length=4, alphabet_size=16)
    reference = TreeIndex(SAX(word_length=4, alphabet_size=16),
                          leaf_size=leaf_size, builder="recursive").build(dataset)
    vectorized = TreeIndex(summarization, leaf_size=leaf_size).build(
        dataset, num_workers=num_workers)
    assert_identical_trees(reference, vectorized)


class TestBuildConfiguration:
    def test_invalid_builder_rejected(self):
        with pytest.raises(InvalidParameterError):
            TreeIndex(SAX(), builder="magic")
        with pytest.raises(InvalidParameterError):
            MessiIndex(builder="magic")
        with pytest.raises(InvalidParameterError):
            SofaIndex(builder="magic")

    def test_invalid_num_workers_rejected(self):
        with pytest.raises(InvalidParameterError):
            TreeIndex(SAX(), num_workers=0)
        with pytest.raises(InvalidParameterError):
            MessiIndex().build(np.zeros((4, 16)), num_workers=0)

    def test_env_default_num_workers(self, walk_dataset, monkeypatch):
        """REPRO_NUM_WORKERS sets the default worker count of builds."""
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        threaded = make_index("MESSI").build(walk_dataset)
        monkeypatch.delenv("REPRO_NUM_WORKERS")
        serial = make_index("MESSI").build(walk_dataset)
        assert_identical_trees(serial.tree, threaded.tree)

    def test_searcher_caches_follow_in_place_rebuild(self):
        """Rebuilding a tree through an existing searcher must not serve the
        previous build's quantization state: ``fit`` assigns fresh
        bins/weights, and the searchers' hoisted caches re-capture them."""
        from repro.index.search import ExactSearcher
        from repro.transforms.sfa import SFA

        first = Dataset(random_walk(80, 32, seed=1), name="first")
        second = Dataset(random_walk(80, 32, seed=2), name="second")
        tree = TreeIndex(SFA(word_length=4, alphabet_size=16, sample_fraction=1.0),
                         leaf_size=10).build(first)
        searcher = ExactSearcher(tree)
        searcher.knn(first.values[0], k=3)
        searcher.knn_batch(first.values[:4], k=3)

        tree.build(second)  # in-place rebuild: SFA.fit learns new bins/weights
        fresh = ExactSearcher(tree)
        searcher.knn(second.values[0], k=3)
        # The hoisted caches must have re-captured the freshly fitted state.
        assert searcher._bins is tree.summarization.bins
        assert searcher._weights is tree.summarization.weights
        for query in second.values[:5]:
            expected = fresh.knn(query, k=3)
            actual = searcher.knn(query, k=3)
            assert np.array_equal(expected.indices, actual.indices)
            assert np.array_equal(expected.distances, actual.distances)
        for expected, actual in zip(fresh.knn_batch(second.values[:5], k=3),
                                    searcher.knn_batch(second.values[:5], k=3)):
            assert np.array_equal(expected.indices, actual.indices)
            assert np.array_equal(expected.distances, actual.distances)

    def test_wall_time_recorded_and_persisted(self, walk_dataset, tmp_path):
        # Pinned to one worker: only there does the wall clock dominate the
        # sum of the per-item costs (parallel per-item timings overlap).
        index = make_index("MESSI", num_workers=1).build(walk_dataset)
        timings = index.timings
        assert timings.wall_time > 0.0
        assert timings.wall_time >= timings.transform_time + timings.tree_time
        index.save(tmp_path / "snapshot")
        loaded = MessiIndex.load(tmp_path / "snapshot")
        assert loaded.timings.wall_time == timings.wall_time
