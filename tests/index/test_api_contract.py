"""API-contract regression tests for the query surface.

The serving layer maps typed errors to HTTP statuses, which only works if the
query entry points never leak bare ``TypeError``/``ValueError``/``RuntimeError``
for documented failure modes.  These tests pin that contract:

* ``nearest_neighbor`` accepts and forwards ``timeout_s`` on every wrapper
  (``SofaIndex``, ``MessiIndex``, ``DynamicIndex``, ``ExactSearcher``), and an
  expired budget sets ``stats.timed_out``;
* malformed ``k`` / ``timeout_s`` / query inputs raise types from
  :mod:`repro.core.errors` on every entry point;
* an empty query batch (shape ``(0, l)``) contractually returns ``[]`` on both
  the static and the dynamic engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import (
    InvalidParameterError,
    ReproError,
    SearchError,
    ValidationError,
)
from repro.datasets.synthetic import random_walk
from repro.index.batch_search import BatchSearcher
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex

SERIES_LENGTH = 64


@pytest.fixture(scope="module")
def sofa_index():
    rows = random_walk(300, SERIES_LENGTH, seed=501)
    return SofaIndex(word_length=8, alphabet_size=16, leaf_size=10).build(rows)


@pytest.fixture(scope="module")
def messi_index():
    rows = random_walk(300, SERIES_LENGTH, seed=502)
    return MessiIndex(word_length=8, alphabet_size=16, leaf_size=10).build(rows)


@pytest.fixture(scope="module")
def dynamic_index():
    rows = random_walk(300, SERIES_LENGTH, seed=503)
    dynamic = SofaIndex(word_length=8, alphabet_size=16,
                        leaf_size=10).build(rows).dynamic()
    dynamic.insert_batch(random_walk(10, SERIES_LENGTH, seed=504))
    dynamic.delete(0)
    return dynamic


@pytest.fixture(scope="module")
def query():
    return random_walk(1, SERIES_LENGTH, seed=505)[0]


# ------------------------------------------- nearest_neighbor timeout budget


class TestNearestNeighborTimeout:
    def test_sofa_forwards_timeout(self, sofa_index, query):
        rushed = sofa_index.nearest_neighbor(query, timeout_s=1e-9)
        assert rushed.stats.timed_out is True

    def test_messi_forwards_timeout(self, messi_index, query):
        rushed = messi_index.nearest_neighbor(query, timeout_s=1e-9)
        assert rushed.stats.timed_out is True

    def test_dynamic_forwards_timeout(self, dynamic_index, query):
        rushed = dynamic_index.nearest_neighbor(query, timeout_s=1e-9)
        assert rushed.stats.timed_out is True

    def test_searcher_forwards_timeout(self, sofa_index, query):
        rushed = sofa_index._require_built().nearest_neighbor(
            query, timeout_s=1e-9)
        assert rushed.stats.timed_out is True

    @pytest.mark.parametrize("index_fixture",
                             ["sofa_index", "messi_index", "dynamic_index"])
    def test_generous_budget_is_bit_identical(self, index_fixture, query,
                                              request):
        index = request.getfixturevalue(index_fixture)
        full = index.nearest_neighbor(query)
        relaxed = index.nearest_neighbor(query, timeout_s=3600.0)
        assert relaxed.stats.timed_out is False
        np.testing.assert_array_equal(full.indices, relaxed.indices)
        np.testing.assert_array_equal(full.distances, relaxed.distances)

    def test_timed_out_answer_is_exact_where_reported(self, sofa_index, query):
        from repro.core.normalization import znormalize

        rushed = sofa_index.nearest_neighbor(query, timeout_s=1e-9)
        values = sofa_index.tree.dataset.values
        normalized = znormalize(query)
        for row, distance in zip(rushed.indices, rushed.distances):
            exact = float(np.sqrt(np.sum((values[row] - normalized) ** 2)))
            assert distance == pytest.approx(exact, abs=1e-9)


# --------------------------------------------------- typed input validation


class TestTypedKValidation:
    """Malformed ``k`` raises from the typed hierarchy on every entry point."""

    @pytest.mark.parametrize("bad_k", ["3", 2.5, None, [3]])
    def test_knn_rejects_non_integral_k(self, sofa_index, query, bad_k):
        with pytest.raises(ValidationError, match="k must be an integer"):
            sofa_index.knn(query, k=bad_k)

    @pytest.mark.parametrize("bad_k", ["3", 2.5, None])
    def test_knn_batch_rejects_non_integral_k(self, sofa_index, query, bad_k):
        with pytest.raises(ValidationError, match="k must be an integer"):
            sofa_index.knn_batch(query[None, :], k=bad_k)

    @pytest.mark.parametrize("bad_k", ["3", 2.5])
    def test_dynamic_rejects_non_integral_k(self, dynamic_index, query, bad_k):
        with pytest.raises(ValidationError):
            dynamic_index.knn(query, k=bad_k)
        with pytest.raises(ValidationError):
            dynamic_index.knn_batch(query[None, :], k=bad_k)

    @pytest.mark.parametrize("bad_k", ["3", 2.5])
    def test_approximate_knn_rejects_non_integral_k(self, sofa_index, query,
                                                    bad_k):
        with pytest.raises(ValidationError):
            sofa_index.approximate_knn(query, k=bad_k)

    def test_approximate_knn_rejects_bad_budget(self, sofa_index, query):
        with pytest.raises(ValidationError,
                           match="max_refined_series must be an integer"):
            sofa_index.approximate_knn(query, k=1, max_refined_series=2.5)

    def test_out_of_range_k_keeps_search_error(self, sofa_index, messi_index,
                                               query):
        for index in (sofa_index, messi_index):
            with pytest.raises(SearchError, match="k must be >= 1"):
                index.knn(query, k=0)
            with pytest.raises(SearchError, match="k must be >= 1"):
                index.knn_batch(query[None, :], k=-2)


class TestTypedTimeoutValidation:
    @pytest.mark.parametrize("bad_timeout", ["1", [1.0]])
    def test_knn_rejects_non_numeric_timeout(self, sofa_index, query,
                                             bad_timeout):
        with pytest.raises(ValidationError, match="timeout_s must be a number"):
            sofa_index.knn(query, timeout_s=bad_timeout)
        with pytest.raises(ValidationError, match="timeout_s must be a number"):
            sofa_index.knn_batch(query[None, :], timeout_s=bad_timeout)

    @pytest.mark.parametrize("bad_timeout", [0, -1.5, float("nan")])
    def test_non_positive_timeout_keeps_invalid_parameter(self, sofa_index,
                                                          query, bad_timeout):
        with pytest.raises(InvalidParameterError, match="timeout_s"):
            sofa_index.knn(query, timeout_s=bad_timeout)

    def test_nearest_neighbor_validates_timeout(self, dynamic_index, query):
        with pytest.raises(ValidationError):
            dynamic_index.nearest_neighbor(query, timeout_s="soon")


class TestEveryDocumentedFailureIsTyped:
    """Sweep the documented failure modes: all must raise ``ReproError``."""

    def failure_calls(self, index, query):
        length = SERIES_LENGTH
        return [
            lambda: index.knn(query, k="3"),
            lambda: index.knn(query, k=0),
            lambda: index.knn(query, k=10 ** 9),
            lambda: index.knn(None),
            lambda: index.knn([[1.0, 2.0], [3.0]]),
            lambda: index.knn(np.full(length, np.nan)),
            lambda: index.knn(np.zeros(length + 1)),
            lambda: index.knn(query, timeout_s="1"),
            lambda: index.knn(query, timeout_s=0),
            lambda: index.knn(query, num_workers=0),
            lambda: index.knn_batch(query[None, :], k=2.5),
            lambda: index.knn_batch(None),
            lambda: index.knn_batch([[1.0, 2.0], [3.0]]),
            lambda: index.knn_batch(np.full((2, length), np.inf)),
            lambda: index.knn_batch(np.zeros((2, length + 3))),
            lambda: index.knn_batch(query[None, :], timeout_s=-1),
        ]

    @pytest.mark.parametrize("index_fixture",
                             ["sofa_index", "messi_index", "dynamic_index"])
    def test_static_and_dynamic_surfaces(self, index_fixture, query, request):
        index = request.getfixturevalue(index_fixture)
        for position, call in enumerate(self.failure_calls(index, query)):
            with pytest.raises(ReproError):
                call()


# ----------------------------------------------------- empty-batch contract


class TestEmptyBatchContract:
    def test_static_engines_return_empty_list(self, sofa_index, messi_index):
        empty = np.empty((0, SERIES_LENGTH))
        assert sofa_index.knn_batch(empty, k=3) == []
        assert messi_index.knn_batch(empty, k=3) == []

    def test_batch_searcher_returns_empty_list(self, sofa_index):
        searcher = BatchSearcher(sofa_index.tree)
        assert searcher.knn_batch(np.empty((0, SERIES_LENGTH)), k=2) == []

    def test_dynamic_engine_returns_empty_list(self, dynamic_index):
        empty = np.empty((0, SERIES_LENGTH))
        assert dynamic_index.knn_batch(empty, k=3) == []

    def test_empty_batch_with_workers(self, sofa_index):
        empty = np.empty((0, SERIES_LENGTH))
        assert sofa_index.knn_batch(empty, k=1, num_workers=4) == []

    def test_empty_batch_still_validates_inputs(self, sofa_index):
        with pytest.raises(ValidationError):
            sofa_index.knn_batch(np.empty((0, SERIES_LENGTH + 1)), k=1)
        with pytest.raises(ValidationError):
            sofa_index.knn_batch(np.empty((0, SERIES_LENGTH)), k="1")
