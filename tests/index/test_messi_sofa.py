"""Tests for the MessiIndex and SofaIndex public wrappers."""

import numpy as np
import pytest

from repro.core.errors import IndexError_, ReproError
from repro.index.messi import MessiIndex
from repro.index.sofa import SofaIndex
from repro.index.stats import compute_structure_stats


class TestUnbuiltIndexErrors:
    """Querying an unbuilt wrapper raises the typed library exception with a
    message that names both recovery paths (build and load)."""

    @pytest.mark.parametrize("index_cls", [MessiIndex, SofaIndex])
    def test_every_query_method_raises_typed_error(self, index_cls):
        index = index_cls()
        expected = (f"{index_cls.__name__} has not been built; "
                    f"call build\\(dataset\\) or {index_cls.__name__}\\.load\\(path\\)")
        with pytest.raises(IndexError_, match=expected):
            index.knn(np.zeros(8))
        with pytest.raises(IndexError_, match=expected):
            index.nearest_neighbor(np.zeros(8))
        with pytest.raises(IndexError_, match=expected):
            index.approximate_knn(np.zeros(8))
        with pytest.raises(IndexError_, match=expected):
            index.knn_batch(np.zeros((2, 8)))
        with pytest.raises(IndexError_, match=expected):
            index.save("/tmp/never-written")

    @pytest.mark.parametrize("index_cls", [MessiIndex, SofaIndex])
    def test_typed_error_is_catchable_as_library_error(self, index_cls):
        with pytest.raises(ReproError):
            index_cls().knn(np.zeros(8))


class TestMessiIndex:
    def test_build_returns_self(self, clustered_index_and_queries):
        index_set, _ = clustered_index_and_queries
        index = MessiIndex(leaf_size=50)
        assert index.build(index_set) is index
        assert index.is_built

    def test_uses_sax_summarization(self):
        assert MessiIndex().summarization_name == "SAX"
        assert type(MessiIndex().summarization).__name__ == "SAX"

    def test_timings_exposed(self, clustered_index_and_queries):
        index_set, _ = clustered_index_and_queries
        index = MessiIndex(leaf_size=50).build(index_set)
        assert index.timings.total_time > 0.0

    def test_accepts_raw_arrays(self, small_matrix):
        index = MessiIndex(word_length=8, alphabet_size=16, leaf_size=10).build(small_matrix)
        result = index.nearest_neighbor(small_matrix[0])
        assert result.nearest_distance == pytest.approx(0.0, abs=1e-9)


class TestSofaIndex:
    def test_build_returns_self(self, clustered_index_and_queries):
        index_set, _ = clustered_index_and_queries
        index = SofaIndex(leaf_size=50)
        assert index.build(index_set) is index
        assert index.is_built

    def test_uses_sfa_summarization(self):
        assert SofaIndex().summarization_name == "SFA"
        assert type(SofaIndex().summarization).__name__ == "SFA"

    def test_binning_option_is_forwarded(self):
        assert SofaIndex(binning="equi-depth").summarization.binning == "equi-depth"
        assert SofaIndex().summarization.binning == "equi-width"

    def test_variance_selection_is_forwarded(self):
        assert SofaIndex(variance_selection=False).summarization.variance_selection is False

    def test_mean_selected_coefficient_index(self, clustered_index_and_queries):
        index_set, _ = clustered_index_and_queries
        index = SofaIndex(leaf_size=50, sample_fraction=1.0).build(index_set)
        mean_index = index.mean_selected_coefficient_index()
        assert 0.0 < mean_index <= 16.0

    def test_knn_returns_k_results(self, clustered_index_and_queries):
        index_set, queries = clustered_index_and_queries
        index = SofaIndex(leaf_size=50).build(index_set)
        result = index.knn(queries[0], k=5)
        assert result.indices.shape == (5,)
        assert result.distances.shape == (5,)


class TestStructureComparison:
    def test_both_indexes_have_comparable_structure(self, clustered_index_and_queries):
        """Figure 8: MESSI and SOFA produce trees of similar shape."""
        index_set, _ = clustered_index_and_queries
        messi = MessiIndex(leaf_size=50).build(index_set)
        sofa = SofaIndex(leaf_size=50).build(index_set)
        messi_stats = compute_structure_stats(messi.tree)
        sofa_stats = compute_structure_stats(sofa.tree)
        assert messi_stats.num_series == sofa_stats.num_series
        for stats in (messi_stats, sofa_stats):
            assert stats.num_leaves >= stats.num_subtrees
            assert stats.average_leaf_size <= 50 * 2  # only unsplittable leaves exceed capacity
