"""Round-trip and golden-file tests of the index persistence subsystem.

The contract under test: a saved-then-loaded index (both ``mmap=True`` and
in-memory) answers ``knn`` and ``knn_batch`` *bit-identically* to the freshly
built index it came from, for SOFA and MESSI, across k values, exact-tie
datasets and worker-sharded batch search.  The golden fixture in
``tests/data/golden-messi-v1`` additionally pins the on-disk layout of format
version 1 across library versions.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import IndexError_
from repro.core.series import Dataset
from repro.datasets.synthetic import random_walk
from repro.index import persistence
from repro.index.dynamic import DynamicIndex
from repro.index.messi import MessiIndex
from repro.index.search import ExactSearcher
from repro.index.sofa import SofaIndex
from repro.index.stats import compute_structure_stats
from repro.index.tree import TreeIndex
from repro.transforms.sax import SAX

DATA_DIR = Path(__file__).parent.parent / "data"
GOLDEN_SNAPSHOT = DATA_DIR / "golden-messi-v1"
GOLDEN_EXPECTED = DATA_DIR / "golden-messi-v1.expected.json"
GOLDEN_DYNAMIC_SNAPSHOT = DATA_DIR / "golden-dynamic-v2"
GOLDEN_DYNAMIC_EXPECTED = DATA_DIR / "golden-dynamic-v2.expected.json"

INDEX_CLASSES = {"sofa": SofaIndex, "messi": MessiIndex}


@pytest.fixture()
def expected_golden():
    with open(GOLDEN_EXPECTED, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture()
def expected_golden_dynamic():
    with open(GOLDEN_DYNAMIC_EXPECTED, encoding="utf-8") as handle:
        return json.load(handle)


def _tie_matrix() -> np.ndarray:
    """A dataset with duplicated rows, so exact ties are guaranteed."""
    base = random_walk(60, 64, seed=41)
    return np.vstack([base, base[:12]])


def _assert_same_result(built, loaded) -> None:
    assert np.array_equal(built.indices, loaded.indices)
    assert np.array_equal(built.distances, loaded.distances)
    assert built.distances.dtype == loaded.distances.dtype


@pytest.fixture(scope="module", params=sorted(INDEX_CLASSES))
def saved_index(request, tmp_path_factory):
    """(kind, built index, snapshot path, queries) for both index families."""
    kind = request.param
    index = INDEX_CLASSES[kind](word_length=8, alphabet_size=16,
                                leaf_size=8).build(_tie_matrix())
    path = tmp_path_factory.mktemp(f"snapshot-{kind}") / "index"
    index.save(path)
    queries = random_walk(6, 64, seed=97)
    return kind, index, path, queries


class TestRoundTrip:
    @pytest.mark.parametrize("mmap", [True, False], ids=["mmap", "in-memory"])
    @pytest.mark.parametrize("k", [1, 2, 5, 12])
    def test_knn_bit_identical(self, saved_index, mmap, k):
        kind, index, path, queries = saved_index
        loaded = INDEX_CLASSES[kind].load(path, mmap=mmap)
        for query in queries:
            _assert_same_result(index.knn(query, k=k), loaded.knn(query, k=k))

    @pytest.mark.parametrize("mmap", [True, False], ids=["mmap", "in-memory"])
    @pytest.mark.parametrize("num_workers", [1, 3])
    def test_knn_batch_bit_identical(self, saved_index, mmap, num_workers):
        kind, index, path, queries = saved_index
        loaded = INDEX_CLASSES[kind].load(path, mmap=mmap)
        built_results = index.knn_batch(queries, k=4, num_workers=num_workers)
        loaded_results = loaded.knn_batch(queries, k=4, num_workers=num_workers)
        for built, loaded_result in zip(built_results, loaded_results):
            _assert_same_result(built, loaded_result)

    def test_exact_ties_round_trip(self, saved_index):
        """Queries that equal duplicated rows produce tied answers either way."""
        kind, index, path, _ = saved_index
        loaded = INDEX_CLASSES[kind].load(path)
        values = index.tree.dataset.values
        for row in (0, 5, 11):  # rows 0..11 are duplicated at 60..71
            built = index.knn(values[row], k=2)
            loaded_result = loaded.knn(values[row], k=2)
            assert built.distances[0] == built.distances[1]  # the tie is real
            assert set(built.indices) == {row, 60 + row}
            _assert_same_result(built, loaded_result)

    def test_generic_loader_restores_wrapper_type(self, saved_index):
        kind, _, path, _ = saved_index
        loaded = persistence.load_index(path)
        assert type(loaded) is INDEX_CLASSES[kind]
        assert loaded.is_built

    def test_resave_of_loaded_index_round_trips(self, saved_index, tmp_path):
        kind, index, path, queries = saved_index
        loaded = INDEX_CLASSES[kind].load(path)
        loaded.save(tmp_path / "again")
        again = INDEX_CLASSES[kind].load(tmp_path / "again")
        for query in queries:
            _assert_same_result(index.knn(query, k=3), again.knn(query, k=3))

    def test_in_place_resave_of_mmap_loaded_index(self, tmp_path):
        """Saving a mmap-loaded index over its own snapshot must not corrupt
        the files it is still reading (writes go to temp files + rename)."""
        index = MessiIndex(word_length=8, alphabet_size=16,
                           leaf_size=8).build(random_walk(40, 32, seed=5))
        path = tmp_path / "snap"
        index.save(path)
        loaded = MessiIndex.load(path, mmap=True)
        loaded.save(path)  # in place, while the maps are open
        reread = MessiIndex.load(path, mmap=True)
        for query in random_walk(4, 32, seed=6):
            _assert_same_result(index.knn(query, k=3), reread.knn(query, k=3))
        # The still-open first load keeps answering from the old inodes.
        for query in random_walk(4, 32, seed=7):
            _assert_same_result(index.knn(query, k=3), loaded.knn(query, k=3))

    def test_structure_and_timings_preserved(self, saved_index):
        kind, index, path, _ = saved_index
        loaded = INDEX_CLASSES[kind].load(path)
        assert (compute_structure_stats(loaded.tree).as_dict()
                == compute_structure_stats(index.tree).as_dict())
        assert loaded.timings.learn_time == index.timings.learn_time
        assert loaded.timings.total_time == index.timings.total_time

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_random_queries_bit_identical(self, saved_index, seed, k):
        kind, index, path, _ = saved_index
        loaded = INDEX_CLASSES[kind].load(path)
        query = random_walk(1, 64, seed=seed)[0]
        _assert_same_result(index.knn(query, k=k), loaded.knn(query, k=k))


class TestTreeRoundTrip:
    def test_bare_tree_round_trip(self, tmp_path):
        tree = TreeIndex(SAX(word_length=8, alphabet_size=16), leaf_size=6)
        tree.build(Dataset(random_walk(50, 32, seed=13), name="walk50"))
        tree.save(tmp_path / "tree")

        loaded = TreeIndex.load(tmp_path / "tree")
        assert persistence.load_index(tmp_path / "tree") is not None
        assert type(persistence.load_index(tmp_path / "tree")) is TreeIndex
        assert loaded.is_built
        assert loaded.num_series == tree.num_series
        assert loaded.dataset.name == "walk50"
        np.testing.assert_array_equal(np.asarray(loaded.dataset.values),
                                      tree.dataset.values)
        np.testing.assert_array_equal(np.asarray(loaded._words), tree._words)
        for stored, restored in zip(tree.series_directory(),
                                    loaded.series_directory()):
            np.testing.assert_array_equal(np.asarray(stored), np.asarray(restored))

        built_searcher = ExactSearcher(tree)
        loaded_searcher = ExactSearcher(loaded)
        for query in random_walk(5, 32, seed=14):
            built = built_searcher.knn(query, k=3)
            restored = loaded_searcher.knn(query, k=3)
            _assert_same_result(built, restored)

    def test_mmap_load_is_zero_copy(self, tmp_path):
        tree = TreeIndex(SAX(word_length=8, alphabet_size=16), leaf_size=6)
        tree.build(Dataset(random_walk(50, 32, seed=13)))
        tree.save(tmp_path / "tree")
        loaded = TreeIndex.load(tmp_path / "tree", mmap=True)

        def backed_by_mmap(array: np.ndarray) -> bool:
            while array is not None:
                if isinstance(array, np.memmap):
                    return True
                array = array.base
            return False

        assert backed_by_mmap(loaded.dataset.values)
        assert backed_by_mmap(loaded._series_lower)
        assert backed_by_mmap(loaded.leaf_nodes[0].lower)
        assert backed_by_mmap(loaded.leaf_nodes[0].indices)
        # In-memory loading materializes plain arrays instead.
        eager = TreeIndex.load(tmp_path / "tree", mmap=False)
        assert not backed_by_mmap(eager.dataset.values)


class TestValidation:
    def test_save_unbuilt_raises(self, tmp_path):
        with pytest.raises(IndexError_, match="has not been built"):
            SofaIndex().save(tmp_path / "x")
        with pytest.raises(IndexError_, match="has not been built"):
            MessiIndex().save(tmp_path / "x")
        with pytest.raises(IndexError_, match="only a built index"):
            TreeIndex(SAX()).save(tmp_path / "x")

    def test_wrapper_mismatch_raises(self, tmp_path):
        index = MessiIndex(word_length=4, alphabet_size=4,
                           leaf_size=10).build(random_walk(20, 16, seed=3))
        index.save(tmp_path / "messi")
        with pytest.raises(IndexError_, match="holds a 'messi' index, not 'sofa'"):
            SofaIndex.load(tmp_path / "messi")

    def test_not_a_snapshot_raises(self, tmp_path):
        with pytest.raises(IndexError_, match="not an index snapshot"):
            persistence.load_index(tmp_path)

    def test_refuses_foreign_non_empty_directory(self, tmp_path):
        (tmp_path / "precious.txt").write_text("do not clobber")
        index = MessiIndex(word_length=4, alphabet_size=4,
                           leaf_size=10).build(random_walk(20, 16, seed=3))
        with pytest.raises(IndexError_, match="refusing to write"):
            index.save(tmp_path)
        assert (tmp_path / "precious.txt").read_text() == "do not clobber"


class TestFormatVersioning:
    @pytest.fixture()
    def snapshot(self, tmp_path):
        index = MessiIndex(word_length=4, alphabet_size=4,
                           leaf_size=10).build(random_walk(20, 16, seed=3))
        path = tmp_path / "snap"
        index.save(path)
        return path

    def _rewrite_manifest(self, path: Path, **overrides) -> None:
        manifest = json.loads((path / "manifest.json").read_text())
        manifest.update(overrides)
        # Re-stamp so the deliberate edit is not reported as corruption.
        persistence.stamp_manifest_checksum(manifest)
        (path / "manifest.json").write_text(json.dumps(manifest))

    def test_newer_version_raises_index_error(self, snapshot):
        self._rewrite_manifest(snapshot, version=persistence.FORMAT_VERSION + 1)
        with pytest.raises(IndexError_, match=(
                f"format version {persistence.FORMAT_VERSION + 1}.*only supports "
                f"versions up to {persistence.FORMAT_VERSION}")):
            persistence.load_index(snapshot)

    def test_invalid_version_raises(self, snapshot):
        self._rewrite_manifest(snapshot, version="two")
        with pytest.raises(IndexError_, match="invalid format version"):
            persistence.load_index(snapshot)

    def test_bad_magic_raises(self, snapshot):
        self._rewrite_manifest(snapshot, format="something-else")
        with pytest.raises(IndexError_, match="not an index snapshot"):
            persistence.load_index(snapshot)

    def test_corrupt_manifest_raises(self, snapshot):
        (snapshot / "manifest.json").write_text("{not json")
        with pytest.raises(IndexError_, match="unreadable snapshot manifest"):
            persistence.load_index(snapshot)

    def test_missing_array_file_raises(self, snapshot):
        (snapshot / "values.npy").unlink()
        with pytest.raises(IndexError_, match="missing array file values.npy"):
            persistence.load_index(snapshot)

    def test_missing_manifest_keys_raise_typed_error(self, snapshot, tmp_path):
        minimal = {"format": persistence.FORMAT_MAGIC,
                   "version": persistence.FORMAT_VERSION}
        (snapshot / "manifest.json").write_text(json.dumps(minimal))
        with pytest.raises(IndexError_, match="missing required key 'arrays'"):
            persistence.load_index(snapshot)

    def test_missing_tree_subkeys_raise_typed_error(self, snapshot):
        manifest = json.loads((snapshot / "manifest.json").read_text())
        del manifest["tree"]["leaf_size"]
        persistence.stamp_manifest_checksum(manifest)
        (snapshot / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(IndexError_, match="missing required key 'tree.leaf_size'"):
            persistence.load_index(snapshot)


class TestGoldenSnapshot:
    """The checked-in format-v1 fixture must keep loading and answering."""

    def test_golden_manifest_is_format_v1(self):
        """The fixture pins format v1; the library must keep reading it."""
        manifest = persistence.read_manifest(GOLDEN_SNAPSHOT)
        assert manifest["version"] == 1
        assert manifest["version"] <= persistence.FORMAT_VERSION
        assert manifest["index_type"] == "messi"
        assert "dynamic" not in manifest  # v1 predates dynamic snapshots

    @pytest.mark.parametrize("mmap", [True, False], ids=["mmap", "in-memory"])
    def test_golden_answers_are_stable(self, expected_golden, mmap):
        index = MessiIndex.load(GOLDEN_SNAPSHOT, mmap=mmap)
        queries = np.asarray(expected_golden["queries"], dtype=np.float64)
        for k, per_query in expected_golden["answers"].items():
            for query, answer in zip(queries, per_query):
                result = index.knn(query, k=int(k))
                assert result.indices.tolist() == answer["indices"]
                np.testing.assert_allclose(result.distances, answer["distances"],
                                           rtol=1e-9, atol=1e-12)

    def test_golden_batch_matches_per_query(self, expected_golden):
        index = MessiIndex.load(GOLDEN_SNAPSHOT)
        queries = np.asarray(expected_golden["queries"], dtype=np.float64)
        batched = index.knn_batch(queries, k=3)
        for query, batch_result in zip(queries, batched):
            _assert_same_result(index.knn(query, k=3), batch_result)

    def test_golden_snapshot_survives_newer_version_probe(self, tmp_path):
        """A future-versioned copy of the golden fixture fails cleanly."""
        copy = tmp_path / "future"
        shutil.copytree(GOLDEN_SNAPSHOT, copy)
        manifest = json.loads((copy / "manifest.json").read_text())
        manifest["version"] = 99
        (copy / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(IndexError_, match="format version 99"):
            MessiIndex.load(copy)


class TestGoldenDynamicV2:
    """The checked-in format-v2 dynamic fixture must keep loading mid-ingest.

    Format v2 predates the crash-safe storage metadata (``generation``,
    ``files``, ``checksums``, ``manifest_checksum``) — the v3 reader must
    fall back to plain filenames and skip checksum verification rather than
    reject the snapshot.
    """

    def test_golden_manifest_is_format_v2(self):
        manifest = persistence.read_manifest(GOLDEN_DYNAMIC_SNAPSHOT)
        assert manifest["version"] == 2
        assert manifest["version"] <= persistence.FORMAT_VERSION
        assert "dynamic" in manifest
        for v3_key in ("generation", "files", "checksums",
                       "manifest_checksum"):
            assert v3_key not in manifest

    def test_golden_v2_restores_pending_writes(self, expected_golden_dynamic):
        dynamic = DynamicIndex.load(GOLDEN_DYNAMIC_SNAPSHOT)
        assert dynamic.delta_count == 6
        assert dynamic.num_surviving == dynamic.num_base + 6 - 2
        assert dynamic.needs_compaction
        queries = np.asarray(expected_golden_dynamic["queries"],
                             dtype=np.float64)
        for k, per_query in expected_golden_dynamic["answers"].items():
            for query, answer in zip(queries, per_query):
                result = dynamic.knn(query, k=int(k))
                assert result.indices.tolist() == answer["indices"]
                np.testing.assert_allclose(result.distances,
                                           answer["distances"],
                                           rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("verify", ["eager", "lazy", "off"])
    def test_golden_v2_loads_under_every_verify_mode(self, verify):
        """No checksums recorded → nothing to verify, never a rejection."""
        dynamic = persistence.load_dynamic(GOLDEN_DYNAMIC_SNAPSHOT,
                                           verify=verify)
        assert dynamic.delta_count == 6

    def test_golden_v2_accepts_writes_and_compaction(
            self, expected_golden_dynamic):
        dynamic = DynamicIndex.load(GOLDEN_DYNAMIC_SNAPSHOT)
        queries = np.asarray(expected_golden_dynamic["queries"],
                             dtype=np.float64)
        surviving = dynamic.num_surviving
        inserted = dynamic.insert(queries[0])
        assert dynamic.knn(queries[0], k=1).nearest_index == inserted
        dynamic.compact()
        assert dynamic.delta_count == 0
        assert dynamic.num_surviving == surviving + 1


class TestV1UpgradePath:
    """Format-v1 snapshots load as compacted dynamic indexes (empty delta)."""

    def test_golden_v1_loads_as_compacted_dynamic_index(self, expected_golden):
        dynamic = DynamicIndex.load(GOLDEN_SNAPSHOT)
        assert dynamic.index_type == "messi"
        assert dynamic.delta_count == 0
        assert dynamic.num_surviving == dynamic.num_base
        assert not dynamic.needs_compaction
        queries = np.asarray(expected_golden["queries"], dtype=np.float64)
        for k, per_query in expected_golden["answers"].items():
            for query, answer in zip(queries, per_query):
                result = dynamic.knn(query, k=int(k))
                assert result.indices.tolist() == answer["indices"]
                np.testing.assert_allclose(result.distances,
                                           answer["distances"],
                                           rtol=1e-9, atol=1e-12)

    def test_upgraded_v1_index_accepts_writes(self, expected_golden):
        dynamic = DynamicIndex.load(GOLDEN_SNAPSHOT)
        queries = np.asarray(expected_golden["queries"], dtype=np.float64)
        inserted = dynamic.insert(queries[0])
        result = dynamic.knn(queries[0], k=1)
        assert result.nearest_index == inserted
        dynamic.delete(inserted)
        dynamic.delete(0)
        dynamic.compact()
        assert dynamic.num_base == len(
            np.load(GOLDEN_SNAPSHOT / "values.npy")) - 1

    def test_static_v2_snapshot_also_upgrades(self, tmp_path):
        """A v2 snapshot written by save_index upgrades the same way."""
        index = MessiIndex(word_length=8, alphabet_size=16,
                           leaf_size=8).build(random_walk(30, 32, seed=15))
        index.save(tmp_path / "static")
        manifest = persistence.read_manifest(tmp_path / "static")
        assert manifest["version"] == persistence.FORMAT_VERSION
        dynamic = DynamicIndex.load(tmp_path / "static")
        assert dynamic.delta_count == 0
        query = random_walk(1, 32, seed=16)[0]
        static = index.knn(query, k=3)
        result = dynamic.knn(query, k=3)
        assert result.indices.tolist() == static.indices.tolist()
        assert np.array_equal(result.distances, static.distances)


class TestDynamicSnapshots:
    """Format-v2 snapshots round-trip the delta buffer and tombstones."""

    @pytest.fixture()
    def mid_ingest(self, tmp_path):
        base = random_walk(40, 32, seed=17)
        extra = random_walk(12, 32, seed=18)
        dynamic = MessiIndex(word_length=8, alphabet_size=16,
                             leaf_size=8).build(base).dynamic()
        dynamic.insert_batch(extra)
        for row in (3, 11, 45):
            dynamic.delete(row)
        path = tmp_path / "dynamic"
        dynamic.save(path)
        return dynamic, path

    def test_manifest_records_dynamic_section(self, mid_ingest):
        dynamic, path = mid_ingest
        manifest = persistence.read_manifest(path)
        assert manifest["version"] == persistence.FORMAT_VERSION
        assert manifest["dynamic"] == {"delta_count": 12, "base_dead": 2,
                                       "delta_dead": 1}

    @pytest.mark.parametrize("mmap", [True, False], ids=["mmap", "in-memory"])
    def test_round_trip_is_bit_identical(self, mid_ingest, mmap):
        dynamic, path = mid_ingest
        loaded = DynamicIndex.load(path, mmap=mmap)
        assert loaded.num_surviving == dynamic.num_surviving
        assert loaded.delta_count == dynamic.delta_count
        queries = random_walk(5, 32, seed=19)
        for k in (1, 4):
            loaded_batch = loaded.knn_batch(queries, k=k)
            saved_batch = dynamic.knn_batch(queries, k=k)
            for query, loaded_result, saved_result in zip(queries, loaded_batch,
                                                          saved_batch):
                _assert_same_result(dynamic.knn(query, k=k),
                                    loaded.knn(query, k=k))
                _assert_same_result(saved_result, loaded_result)

    def test_loaded_index_resumes_ingest(self, mid_ingest):
        """The restart continues mid-ingest: same ids, writes keep working."""
        dynamic, path = mid_ingest
        loaded = DynamicIndex.load(path)
        series = random_walk(1, 32, seed=20)[0]
        assert loaded.insert(series) == dynamic.insert(series)
        loaded.delete(0)
        dynamic.delete(0)
        assert loaded.num_surviving == dynamic.num_surviving
        model_mapping = dynamic.compact()
        loaded_mapping = loaded.compact()
        assert np.array_equal(model_mapping, loaded_mapping)
        query = random_walk(1, 32, seed=21)[0]
        _assert_same_result(dynamic.knn(query, k=3), loaded.knn(query, k=3))

    def test_generic_loader_returns_dynamic_index(self, mid_ingest):
        _, path = mid_ingest
        loaded = persistence.load_index(path)
        assert type(loaded) is DynamicIndex

    def test_static_loader_refuses_pending_writes(self, mid_ingest):
        _, path = mid_ingest
        with pytest.raises(IndexError_, match="pending writes"):
            MessiIndex.load(path)
        with pytest.raises(IndexError_, match="pending writes"):
            persistence.load_index(path, expected_type="messi")

    def test_corrupt_delta_row_count_raises(self, mid_ingest):
        _, path = mid_ingest
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["dynamic"]["delta_count"] = 99
        persistence.stamp_manifest_checksum(manifest)
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(IndexError_, match="corrupt"):
            DynamicIndex.load(path)

    def test_compacted_dynamic_save_has_no_pending_writes(self, tmp_path):
        dynamic = MessiIndex(word_length=8, alphabet_size=16, leaf_size=8
                             ).build(random_walk(20, 32, seed=22)).dynamic()
        dynamic.insert_batch(random_walk(4, 32, seed=23))
        dynamic.compact()
        path = tmp_path / "compacted"
        dynamic.save(path)
        manifest = persistence.read_manifest(path)
        assert manifest["dynamic"] == {"delta_count": 0, "base_dead": 0,
                                       "delta_dead": 0}
        # No pending writes, so the static loader accepts it too.
        static = MessiIndex.load(path)
        assert static.is_built
