"""Tests for per-root-child summary buffers."""

import numpy as np
import pytest

from repro.index.buffers import fill_buffers


class TestFillBuffers:
    def test_groups_by_top_bit(self):
        # 2-bit symbols, word length 2: top bits are (1,0), (0,1), (1,0).
        words = np.array([[2, 1], [1, 3], [3, 0]])
        buffers = fill_buffers(words, bits=2)
        keys = {buffer.key for buffer in buffers}
        assert keys == {(1, 0), (0, 1)}

    def test_every_row_lands_in_exactly_one_buffer(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 256, size=(200, 8))
        buffers = fill_buffers(words, bits=8)
        all_indices = np.concatenate([buffer.indices for buffer in buffers])
        assert np.array_equal(np.sort(all_indices), np.arange(200))

    def test_buffer_words_match_their_rows(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 16, size=(50, 4))
        for buffer in fill_buffers(words, bits=4):
            assert np.array_equal(buffer.words, words[buffer.indices])

    def test_buffers_sorted_by_size_descending(self):
        words = np.array([[0, 0]] * 5 + [[3, 3]] * 2 + [[0, 3]] * 8)
        buffers = fill_buffers(words, bits=2)
        sizes = [buffer.size for buffer in buffers]
        assert sizes == sorted(sizes, reverse=True)

    def test_key_matches_top_bits_of_members(self):
        rng = np.random.default_rng(2)
        words = rng.integers(0, 4, size=(30, 3))
        for buffer in fill_buffers(words, bits=2):
            top_bits = buffer.words >> 1
            assert np.all(top_bits == np.asarray(buffer.key))

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            fill_buffers(np.zeros(5, dtype=np.int64), bits=2)

    def test_single_row(self):
        buffers = fill_buffers(np.array([[7, 0, 3]]), bits=3)
        assert len(buffers) == 1
        assert buffers[0].size == 1
