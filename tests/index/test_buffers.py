"""Tests for per-root-child summary buffers."""

import numpy as np
import pytest

from repro.index.buffers import fill_buffers


class TestFillBuffers:
    def test_groups_by_top_bit(self):
        # 2-bit symbols, word length 2: top bits are (1,0), (0,1), (1,0).
        words = np.array([[2, 1], [1, 3], [3, 0]])
        buffers = fill_buffers(words, bits=2)
        keys = {buffer.key for buffer in buffers}
        assert keys == {(1, 0), (0, 1)}

    def test_every_row_lands_in_exactly_one_buffer(self):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 256, size=(200, 8))
        buffers = fill_buffers(words, bits=8)
        all_indices = np.concatenate([buffer.indices for buffer in buffers])
        assert np.array_equal(np.sort(all_indices), np.arange(200))

    def test_buffer_words_match_their_rows(self):
        rng = np.random.default_rng(1)
        words = rng.integers(0, 16, size=(50, 4))
        for buffer in fill_buffers(words, bits=4):
            assert np.array_equal(buffer.words, words[buffer.indices])

    def test_buffers_sorted_by_size_descending(self):
        words = np.array([[0, 0]] * 5 + [[3, 3]] * 2 + [[0, 3]] * 8)
        buffers = fill_buffers(words, bits=2)
        sizes = [buffer.size for buffer in buffers]
        assert sizes == sorted(sizes, reverse=True)

    def test_key_matches_top_bits_of_members(self):
        rng = np.random.default_rng(2)
        words = rng.integers(0, 4, size=(30, 3))
        for buffer in fill_buffers(words, bits=2):
            top_bits = buffer.words >> 1
            assert np.all(top_bits == np.asarray(buffer.key))

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            fill_buffers(np.zeros(5, dtype=np.int64), bits=2)

    def test_single_row(self):
        buffers = fill_buffers(np.array([[7, 0, 3]]), bits=3)
        assert len(buffers) == 1
        assert buffers[0].size == 1


class TestWideWords:
    """Regression: packing one bit per dimension into a single int64 silently
    corrupted grouping for word lengths beyond 63 (the leading dimensions'
    bits were shifted out of the integer)."""

    @pytest.mark.parametrize("word_length", [64, 70, 128])
    def test_rows_differing_only_in_leading_dimension_are_separated(self, word_length):
        words = np.zeros((2, word_length), dtype=np.int64)
        words[1, 0] = 2  # only the top bit of dimension 0 differs (bits=2)
        buffers = fill_buffers(words, bits=2)
        assert len(buffers) == 2
        assert {buffer.key[0] for buffer in buffers} == {0, 1}

    @pytest.mark.parametrize("word_length", [63, 64, 65, 100])
    def test_wide_grouping_invariants(self, word_length):
        rng = np.random.default_rng(word_length)
        words = rng.integers(0, 4, size=(80, word_length))
        buffers = fill_buffers(words, bits=2)
        all_indices = np.concatenate([buffer.indices for buffer in buffers])
        assert np.array_equal(np.sort(all_indices), np.arange(80))
        sizes = [buffer.size for buffer in buffers]
        assert sizes == sorted(sizes, reverse=True)
        for buffer in buffers:
            assert np.array_equal(buffer.words, words[buffer.indices])
            assert np.all((buffer.words >> 1) == np.asarray(buffer.key))

    def test_wide_and_narrow_paths_group_identically(self):
        """Duplicate the narrow words into padded wide ones: group membership
        must match the int64 fast path exactly."""
        rng = np.random.default_rng(7)
        narrow = rng.integers(0, 4, size=(60, 8))
        wide = np.concatenate([narrow, np.zeros((60, 60), dtype=np.int64)], axis=1)
        narrow_groups = {buffer.key: buffer.indices.tolist()
                        for buffer in fill_buffers(narrow, bits=2)}
        wide_groups = {buffer.key[:8]: buffer.indices.tolist()
                      for buffer in fill_buffers(wide, bits=2)}
        assert narrow_groups == wide_groups
